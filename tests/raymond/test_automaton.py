"""Unit tests for Raymond's static-tree baseline."""

from __future__ import annotations

from collections import deque

import pytest

from repro.errors import ConfigurationError, LockUsageError, ProtocolError
from repro.raymond.automaton import RaymondAutomaton
from repro.raymond.messages import RaymondPrivilegeMessage
from repro.raymond.topology import balanced_binary_tree, chain, star, validate


class RaymondPump:
    """Synchronous delivery fabric over a static tree topology."""

    def __init__(self, topology) -> None:
        self.grants = []
        self.queue = deque()
        self.messages_delivered = 0
        self.automata = {
            node: RaymondAutomaton(
                node_id=node,
                lock_id="L",
                holder=parent,
                listener=self._listener(node),
            )
            for node, parent in topology.items()
        }

    def _listener(self, node):
        def listener(lock_id, ctx):
            self.grants.append((node, ctx))

        return listener

    def request(self, node, ctx=None):
        self.send(self.automata[node].request(ctx))
        self.drain()

    def release(self, node):
        self.send(self.automata[node].release())
        self.drain()

    def send(self, envelopes):
        self.queue.extend(envelopes)

    def drain(self):
        steps = 0
        while self.queue:
            envelope = self.queue.popleft()
            self.messages_delivered += 1
            self.send(self.automata[envelope.dest].handle(envelope.message))
            steps += 1
            assert steps < 10_000

    def privileged(self):
        nodes = [n for n, a in self.automata.items() if a.has_privilege]
        assert len(nodes) == 1
        return nodes[0]


class TestTopologies:
    def test_balanced_tree_shape(self):
        topology = balanced_binary_tree(7)
        assert topology[0] is None
        assert topology[1] == 0 and topology[2] == 0
        assert topology[3] == 1 and topology[6] == 2
        validate(topology)

    def test_balanced_tree_with_relabelled_root(self):
        topology = balanced_binary_tree(7, root=3)
        assert topology[3] is None
        validate(topology)

    def test_chain_and_star(self):
        validate(chain(5))
        validate(star(5, center=2))
        assert star(5, center=2)[2] is None

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            balanced_binary_tree(0)
        with pytest.raises(ConfigurationError):
            star(3, center=9)
        with pytest.raises(ConfigurationError):
            validate({0: 1, 1: 0})  # two nodes, no root


class TestProtocol:
    def test_root_enters_immediately(self):
        pump = RaymondPump(chain(3))
        pump.request(0, ctx="go")
        assert pump.grants == [(0, "go")]
        assert pump.automata[0].in_critical_section

    def test_privilege_walks_the_chain(self):
        pump = RaymondPump(chain(4))
        pump.request(3)
        assert pump.grants == [(3, None)]
        assert pump.privileged() == 3
        # Request + privilege on each of 3 edges.
        assert pump.messages_delivered == 6

    def test_static_tree_does_not_adapt(self):
        """After node 3 is served, node 0's request still pays the full
        chain — the non-adaptivity §5 contrasts with Naimi."""

        pump = RaymondPump(chain(4))
        pump.request(3)
        pump.release(3)
        pump.messages_delivered = 0
        pump.request(0)
        assert pump.messages_delivered == 6  # no path compression

    def test_fifo_per_edge_and_mutual_exclusion(self):
        pump = RaymondPump(balanced_binary_tree(7))
        pump.request(3)
        pump.request(4)
        pump.request(5)
        granted = [n for n, _ in pump.grants]
        assert granted == [3]  # others queued along the tree
        pump.release(3)
        pump.release(4) if pump.automata[4].in_critical_section else None
        while any(a.in_critical_section for a in pump.automata.values()):
            holder = next(
                n for n, a in pump.automata.items() if a.in_critical_section
            )
            pump.release(holder)
        assert sorted(n for n, _ in pump.grants) == [3, 4, 5]
        pump.privileged()
        assert all(a.is_idle() for a in pump.automata.values())

    def test_double_request_rejected(self):
        pump = RaymondPump(chain(2))
        pump.automata[1].request()
        with pytest.raises(LockUsageError):
            pump.automata[1].request()

    def test_release_without_cs_rejected(self):
        pump = RaymondPump(chain(2))
        with pytest.raises(LockUsageError):
            pump.automata[1].release()

    def test_unexpected_privilege_rejected(self):
        pump = RaymondPump(chain(2))
        with pytest.raises(ProtocolError):
            pump.automata[0].handle(
                RaymondPrivilegeMessage(lock_id="L", sender=1)
            )

    def test_asked_flag_suppresses_duplicate_requests(self):
        pump = RaymondPump(chain(3))
        # Two requests from the subtree of node 1 → only one REQUEST
        # should cross the 1→0 edge.
        out1 = pump.automata[2].request()
        assert len(out1) == 1
        replies = pump.automata[1].handle(out1[0].message)
        assert len(replies) == 1  # forwarded once
        out2 = pump.automata[1].request()
        assert out2 == []  # already asked toward the holder
        pump.send(replies)
        pump.drain()
        assert (2, None) in pump.grants

"""Package-level tests: public API surface, errors, CLI."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    LockUsageError,
    ProtocolError,
    ReproError,
    SimulationError,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_alls_resolve(self):
        import repro.core
        import repro.experiments
        import repro.metrics
        import repro.naimi
        import repro.runtime
        import repro.services
        import repro.sim
        import repro.verification
        import repro.workload

        for module in (
            repro.core, repro.experiments, repro.metrics, repro.naimi,
            repro.runtime, repro.services, repro.sim, repro.verification,
            repro.workload,
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    f"{module.__name__}.{name}"
                )


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_cls",
        [
            ProtocolError,
            LockUsageError,
            InvariantViolation,
            SimulationError,
            ConfigurationError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, error_cls):
        assert issubclass(error_cls, ReproError)
        with pytest.raises(ReproError):
            raise error_cls("x")


class TestCli:
    def test_tables_command(self, capsys):
        from repro.__main__ import main

        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1(a)" in out
        assert out.count("[PASS]") >= 4

    def test_fig5_with_explicit_nodes(self, capsys):
        from repro.__main__ import main

        assert main(["fig5", "--nodes", "4", "--ops", "8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_headline_quick(self, capsys):
        from repro.__main__ import main

        assert main(["headline", "--nodes", "6", "--ops", "8"]) == 0
        assert "paper" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])

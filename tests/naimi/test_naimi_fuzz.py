"""Property-based fuzzing of the Naimi-Tréhel baseline.

Random request sets under random (per-pair-FIFO) delivery orders: mutual
exclusion must hold on every path, every request must complete, and the
token must be unique at quiescence.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.naimi.automaton import NaimiAutomaton


class _Fuzz:
    def __init__(self, num_nodes: int) -> None:
        self.grants: List[int] = []
        self.queue: List[Tuple[int, object]] = []
        self.automata = {
            node: NaimiAutomaton(
                node_id=node,
                lock_id="L",
                last=None if node == 0 else 0,
                listener=self._listener(node),
            )
            for node in range(num_nodes)
        }

    def _listener(self, node):
        def listener(lock_id, ctx):
            self.grants.append(node)

        return listener

    def send(self, sender, envelopes):
        for envelope in envelopes:
            self.queue.append((sender, envelope))

    def deliver(self, choice: int) -> bool:
        if not self.queue:
            return False
        heads: Dict[Tuple[int, int], int] = {}
        for index, (sender, envelope) in enumerate(self.queue):
            key = (sender, envelope.dest)
            if key not in heads:
                heads[key] = index
        indices = sorted(heads.values())
        index = indices[choice % len(indices)]
        sender, envelope = self.queue.pop(index)
        replies = self.automata[envelope.dest].handle(envelope.message)
        self.send(envelope.dest, replies)
        return True

    def holder(self):
        inside = [
            node for node, a in self.automata.items() if a.in_critical_section
        ]
        assert len(inside) <= 1, f"mutual exclusion violated: {inside}"
        return inside[0] if inside else None


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    num_nodes=st.integers(min_value=2, max_value=6),
    requesters=st.lists(
        st.integers(min_value=0, max_value=5), min_size=1, max_size=8
    ),
    schedule=st.lists(st.integers(min_value=0, max_value=99), max_size=50),
)
def test_mutual_exclusion_under_random_interleavings(
    num_nodes, requesters, schedule
):
    fuzz = _Fuzz(num_nodes)
    pending = deque(r % num_nodes for r in requesters)
    outstanding: Dict[int, int] = {}

    def try_issue() -> bool:
        if not pending:
            return False
        node = pending[0]
        automaton = fuzz.automata[node]
        if automaton.is_requesting or automaton.in_critical_section:
            return False
        pending.popleft()
        outstanding[node] = outstanding.get(node, 0) + 1
        fuzz.send(node, automaton.request())
        return True

    def try_release() -> bool:
        holder = fuzz.holder()
        if holder is None:
            return False
        fuzz.send(holder, fuzz.automata[holder].release())
        return True

    for choice in schedule:
        action = choice % 3
        if action == 0 and try_issue():
            pass
        elif action == 1 and fuzz.deliver(choice // 3):
            pass
        else:
            try_release()
        fuzz.holder()  # assert exclusion at every step

    # Drain to completion.
    steps = 0
    while pending or fuzz.queue or fuzz.holder() is not None:
        steps += 1
        assert steps < 5_000, "naimi run failed to converge"
        if try_issue():
            continue
        if fuzz.deliver(0):
            continue
        if not try_release():
            break
    assert len(fuzz.grants) == len(requesters)
    tokens = [n for n, a in fuzz.automata.items() if a.has_token]
    assert len(tokens) == 1

"""Unit tests for the Naimi-Tréhel baseline automaton."""

from __future__ import annotations

from collections import deque

import pytest

from repro.errors import LockUsageError, ProtocolError
from repro.naimi.automaton import NaimiAutomaton
from repro.naimi.messages import NaimiRequestMessage, NaimiTokenMessage


class NaimiPump:
    """Synchronous delivery fabric for Naimi automata (FIFO, instant)."""

    def __init__(self, num_nodes: int, root: int = 0) -> None:
        self.grants = []
        self.automata = {}
        self.queue = deque()
        self.messages_delivered = 0
        for node in range(num_nodes):
            self.automata[node] = NaimiAutomaton(
                node_id=node,
                lock_id="L",
                last=None if node == root else root,
                listener=self._listener(node),
            )

    def _listener(self, node):
        def listener(lock_id, ctx):
            self.grants.append((node, ctx))

        return listener

    def request(self, node, ctx=None):
        self.send(node, self.automata[node].request(ctx))
        self.drain()

    def release(self, node):
        self.send(node, self.automata[node].release())
        self.drain()

    def send(self, sender, envelopes):
        for envelope in envelopes:
            self.queue.append(envelope)

    def drain(self):
        steps = 0
        while self.queue:
            envelope = self.queue.popleft()
            self.messages_delivered += 1
            replies = self.automata[envelope.dest].handle(envelope.message)
            self.send(envelope.dest, replies)
            steps += 1
            assert steps < 10_000


class TestSingleNode:
    def test_root_enters_immediately(self):
        pump = NaimiPump(1)
        pump.request(0, ctx="go")
        assert pump.grants == [(0, "go")]
        assert pump.automata[0].in_critical_section

    def test_release_keeps_token_when_no_successor(self):
        pump = NaimiPump(1)
        pump.request(0)
        pump.release(0)
        assert pump.automata[0].has_token
        assert pump.automata[0].is_idle()

    def test_release_without_cs_rejected(self):
        pump = NaimiPump(1)
        with pytest.raises(LockUsageError):
            pump.automata[0].release()

    def test_double_request_rejected(self):
        pump = NaimiPump(1)
        pump.request(0)
        with pytest.raises(LockUsageError):
            pump.automata[0].request()

    def test_unrequested_token_rejected(self):
        pump = NaimiPump(2)
        with pytest.raises(ProtocolError):
            pump.automata[1].handle(NaimiTokenMessage(lock_id="L", sender=0))


class TestTwoNodes:
    def test_idle_root_hands_token_directly(self):
        pump = NaimiPump(2)
        pump.request(1)
        assert pump.grants == [(1, None)]
        assert pump.automata[1].has_token
        assert not pump.automata[0].has_token
        # Path reversal: the old root now points at the requester.
        assert pump.automata[0].last == 1

    def test_busy_root_chains_successor(self):
        pump = NaimiPump(2)
        pump.request(0)
        pump.request(1)
        assert [n for n, _ in pump.grants] == [0]
        assert pump.automata[0].next_node == 1
        pump.release(0)
        assert [n for n, _ in pump.grants] == [0, 1]
        assert pump.automata[1].has_token

    def test_token_round_trip(self):
        pump = NaimiPump(2)
        for _round in range(3):
            pump.request(1)
            pump.release(1)
            pump.request(0)
            pump.release(0)
        assert len(pump.grants) == 6


class TestManyNodes:
    def test_fifo_through_next_chain(self):
        pump = NaimiPump(4)
        pump.request(0)
        pump.request(1)
        pump.request(2)
        pump.request(3)
        for node in (0, 1, 2, 3):
            pump.release(node) if pump.automata[node].in_critical_section else None
        # Grants happened in request order.
        granted = [n for n, _ in pump.grants]
        assert granted == [0, 1, 2, 3]

    def test_mutual_exclusion_always(self):
        pump = NaimiPump(5)
        pump.request(2)
        pump.request(3)
        pump.request(4)
        in_cs = [n for n, a in pump.automata.items() if a.in_critical_section]
        assert len(in_cs) == 1
        while any(a.in_critical_section for a in pump.automata.values()):
            holder = next(
                n for n, a in pump.automata.items() if a.in_critical_section
            )
            pump.release(holder)
            in_cs = [
                n for n, a in pump.automata.items() if a.in_critical_section
            ]
            assert len(in_cs) <= 1

    def test_path_reversal_compresses_paths(self):
        """After node k is served, later requests route toward k directly."""

        pump = NaimiPump(4)
        pump.request(3)
        pump.release(3)
        # Everyone on the path now points at 3 (the new root).
        assert pump.automata[0].last == 3
        pump.messages_delivered = 0
        pump.request(0)
        # 0 → 3 directly: one request plus one token message.
        assert pump.messages_delivered == 2

    def test_exactly_one_token_at_quiescence(self):
        pump = NaimiPump(6)
        for node in (5, 2, 4, 1):
            pump.request(node)
            pump.release(node) if pump.automata[node].in_critical_section else None
        while any(a.in_critical_section for a in pump.automata.values()):
            holder = next(
                n for n, a in pump.automata.items() if a.in_critical_section
            )
            pump.release(holder)
        tokens = [n for n, a in pump.automata.items() if a.has_token]
        assert len(tokens) == 1


class TestMessages:
    def test_request_forwarding_preserves_origin(self):
        automaton = NaimiAutomaton(node_id=1, lock_id="L", last=2)
        out = automaton.handle(
            NaimiRequestMessage(lock_id="L", sender=0, origin=0)
        )
        assert len(out) == 1
        assert out[0].dest == 2
        assert out[0].message.origin == 0
        # Path reversal happened.
        assert automaton.last == 0

    def test_wrong_lock_rejected(self):
        automaton = NaimiAutomaton(node_id=1, lock_id="L", last=2)
        with pytest.raises(ProtocolError):
            automaton.handle(
                NaimiRequestMessage(lock_id="OTHER", sender=0, origin=0)
            )

"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import (
    AllOf,
    Process,
    SimEvent,
    Simulator,
    Timeout,
    run_processes,
)


class TestSimulatorScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.3, lambda: fired.append("late"))
        sim.schedule(0.1, lambda: fired.append("early"))
        sim.schedule(0.2, lambda: fired.append("middle"))
        sim.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for index in range(10):
            sim.schedule(0.5, lambda i=index: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_now_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=1.5)
        assert fired == [1]
        assert sim.now == 1.5
        sim.run()
        assert fired == [1, 2]

    def test_event_budget_raises_on_livelock(self):
        sim = Simulator()

        def reschedule():
            sim.schedule(0.0, reschedule)

        sim.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_nested_scheduling_from_callbacks(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.1, lambda: sim.schedule(0.1, lambda: fired.append("x")))
        sim.run()
        assert fired == ["x"]
        assert sim.now == pytest.approx(0.2)


class TestSimEvent:
    def test_trigger_wakes_existing_waiters(self):
        sim = Simulator()
        event = SimEvent(sim)
        values = []
        event.add_callback(values.append)
        event.trigger("payload")
        sim.run()
        assert values == ["payload"]

    def test_trigger_wakes_late_waiters(self):
        sim = Simulator()
        event = SimEvent(sim)
        event.trigger(42)
        values = []
        event.add_callback(values.append)
        sim.run()
        assert values == [42]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = SimEvent(sim)
        event.trigger()
        with pytest.raises(SimulationError):
            event.trigger()

    def test_timeout_triggers_at_deadline(self):
        sim = Simulator()
        timeout = Timeout(sim, 0.7)
        sim.run()
        assert timeout.triggered
        assert sim.now == pytest.approx(0.7)

    def test_allof_waits_for_every_event(self):
        sim = Simulator()
        first, second = Timeout(sim, 0.1), Timeout(sim, 0.5)
        both = AllOf(sim, [first, second])
        done_at = []
        both.add_callback(lambda _v: done_at.append(sim.now))
        sim.run()
        assert done_at == [pytest.approx(0.5)]

    def test_allof_of_nothing_triggers_immediately(self):
        sim = Simulator()
        assert AllOf(sim, []).triggered


class TestProcess:
    def test_generator_runs_to_completion(self):
        sim = Simulator()
        steps = []

        def body():
            steps.append(("start", sim.now))
            yield Timeout(sim, 0.2)
            steps.append(("middle", sim.now))
            yield Timeout(sim, 0.3)
            steps.append(("end", sim.now))

        run_processes(sim, [body()])
        assert steps == [
            ("start", 0.0),
            ("middle", pytest.approx(0.2)),
            ("end", pytest.approx(0.5)),
        ]

    def test_yielded_event_value_is_sent_back(self):
        sim = Simulator()
        received = []

        def body():
            event = SimEvent(sim)
            sim.schedule(0.1, lambda: event.trigger("hello"))
            value = yield event
            received.append(value)

        run_processes(sim, [body()])
        assert received == ["hello"]

    def test_two_processes_interleave(self):
        sim = Simulator()
        order = []

        def worker(name, delay):
            yield Timeout(sim, delay)
            order.append(name)
            yield Timeout(sim, delay)
            order.append(name)

        run_processes(sim, [worker("a", 0.1), worker("b", 0.15)])
        assert order == ["a", "b", "a", "b"]

    def test_yielding_non_event_rejected(self):
        sim = Simulator()

        def body():
            yield "not an event"

        with pytest.raises(SimulationError, match="expected SimEvent"):
            run_processes(sim, [body()])

    def test_yielding_non_event_captured_on_process(self):
        sim = Simulator()

        def body():
            yield "not an event"

        process = Process(sim, body())
        sim.run()
        assert isinstance(process.error, SimulationError)
        assert process.done.triggered

    def test_blocked_process_detected(self):
        sim = Simulator()

        def body():
            yield SimEvent(sim)  # never triggered

        with pytest.raises(SimulationError):
            run_processes(sim, [body()])

    def test_process_exception_captured_not_reraised(self):
        # A crashing process must not unwind Simulator.run mid-drain:
        # other processes keep running and the crash lands on `error`.
        sim = Simulator()
        survivor_done = []

        def crasher():
            yield Timeout(sim, 0.1)
            raise ValueError("boom")

        def survivor():
            yield Timeout(sim, 0.5)
            survivor_done.append(True)

        crash_proc = Process(sim, crasher())
        Process(sim, survivor())
        sim.run()
        assert isinstance(crash_proc.error, ValueError)
        assert crash_proc.done.triggered
        assert survivor_done == [True]

    def test_process_exception_surfaced_by_run_processes(self):
        sim = Simulator()

        def body():
            yield Timeout(sim, 0.1)
            raise ValueError("boom")

        with pytest.raises(SimulationError, match="crashed"):
            run_processes(sim, [body()])

    def test_events_processed_accurate_after_callback_raise(self):
        sim = Simulator()

        def explode():
            raise RuntimeError("raw callback failure")

        sim.schedule(0.0, explode)
        with pytest.raises(RuntimeError):
            sim.run()
        # The dequeued event is counted even though its callback raised.
        assert sim.events_processed == 1

    def test_determinism_across_runs(self):
        def trace_run():
            sim = Simulator()
            trace = []

            def worker(name):
                for _ in range(3):
                    yield Timeout(sim, 0.1)
                    trace.append((name, round(sim.now, 6)))

            run_processes(sim, [worker("a"), worker("b"), worker("c")])
            return trace

        assert trace_run() == trace_run()

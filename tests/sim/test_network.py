"""Tests for the simulated point-to-point network."""

from __future__ import annotations

import pytest

from repro.core.messages import Envelope, ReleaseMessage
from repro.core.modes import LockMode
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.rng import Exponential, Fixed, derive_rng


def _release(lock_id="L", sender=0, mode=LockMode.NONE):
    return ReleaseMessage(lock_id=lock_id, sender=sender, new_mode=mode)


class TestDelivery:
    def test_message_reaches_handler(self):
        sim = Simulator()
        network = Network(sim, latency=Fixed(0.1))
        received = []
        network.register(0, lambda msg: [])
        network.register(1, lambda msg: received.append(msg) or [])
        network.send(0, [Envelope(1, _release())])
        sim.run()
        assert len(received) == 1
        assert sim.now == pytest.approx(0.1)

    def test_replies_are_transmitted(self):
        sim = Simulator()
        network = Network(sim, latency=Fixed(0.1))
        received_at_zero = []
        network.register(
            0, lambda msg: received_at_zero.append(msg) or []
        )
        network.register(1, lambda msg: [Envelope(0, _release(sender=1))])
        network.send(0, [Envelope(1, _release())])
        sim.run()
        assert len(received_at_zero) == 1
        assert sim.now == pytest.approx(0.2)

    def test_unregistered_destination_rejected(self):
        sim = Simulator()
        network = Network(sim)
        network.register(0, lambda msg: [])
        with pytest.raises(SimulationError):
            network.send(0, [Envelope(9, _release())])

    def test_duplicate_registration_rejected(self):
        sim = Simulator()
        network = Network(sim)
        network.register(0, lambda msg: [])
        with pytest.raises(SimulationError):
            network.register(0, lambda msg: [])

    def test_self_messages_bypass_the_wire(self):
        sim = Simulator()
        network = Network(sim, latency=Fixed(5.0))
        received = []
        network.register(0, lambda msg: received.append(sim.now) or [])
        network.send(0, [Envelope(0, _release())])
        sim.run()
        assert received == [0.0]
        assert network.messages_sent == 0


class TestFifoPerPair:
    def test_order_preserved_despite_random_latency(self):
        sim = Simulator()
        network = Network(
            sim, latency=Exponential(0.150), rng=derive_rng(3, "net")
        )
        received = []
        network.register(0, lambda msg: [])
        network.register(
            1, lambda msg: received.append(msg.sender) or []
        )
        for index in range(50):
            network.send(
                0, [Envelope(1, _release(sender=index))]
            )
        sim.run()
        assert received == list(range(50))

    def test_different_pairs_are_independent(self):
        sim = Simulator()
        network = Network(sim, latency=Fixed(0.1))
        received = []
        network.register(0, lambda msg: [])
        network.register(2, lambda msg: [])
        network.register(
            1, lambda msg: received.append(msg.sender) or []
        )
        network.send(0, [Envelope(1, _release(sender=100))])
        network.send(2, [Envelope(1, _release(sender=200))])
        sim.run()
        assert sorted(received) == [100, 200]


class TestObservation:
    def test_observer_sees_every_wire_message(self):
        sim = Simulator()
        observed = []
        network = Network(
            sim,
            latency=Fixed(0.01),
            observer=lambda s, d, m: observed.append((s, d)),
        )
        network.register(0, lambda msg: [])
        network.register(1, lambda msg: [])
        network.send(0, [Envelope(1, _release()), Envelope(1, _release())])
        network.send(0, [Envelope(0, _release())])  # local: not observed
        sim.run()
        assert observed == [(0, 1), (0, 1)]
        assert network.messages_sent == 2

    def test_mean_latency_exposed(self):
        network = Network(Simulator(), latency=Exponential(0.150))
        assert network.mean_latency == pytest.approx(0.150)

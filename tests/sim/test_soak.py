"""Randomized soak tests: many seeds × cluster sizes × protocol options.

Each case runs the full airline workload on the simulator with the
compatibility monitor attached and quiescence verified — a broad random
search for protocol races beyond what the scenario-based explorer covers.
The seeds are fixed, so failures reproduce exactly.
"""

from __future__ import annotations

import pytest

from repro.core.automaton import FULL_PROTOCOL, ProtocolOptions
from repro.core.lockspace import hashed_token_home
from repro.core.modes import LockMode
from repro.experiments.ablations import run_with_options
from repro.experiments.common import run_hierarchical, run_naimi_same_work
from repro.workload.spec import WorkloadSpec

#: Write-heavy mix that stresses token transfers, freezing and upgrades.
STRESS_MIX = (
    (LockMode.IR, 0.30),
    (LockMode.R, 0.15),
    (LockMode.U, 0.15),
    (LockMode.IW, 0.25),
    (LockMode.W, 0.15),
)


class TestHierarchicalSoak:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("nodes", [3, 7])
    def test_paper_mix_random_seeds(self, seed, nodes):
        spec = WorkloadSpec(ops_per_node=15, seed=1000 + seed)
        result = run_hierarchical(nodes, spec)
        assert result.metrics.operations == nodes * 15

    @pytest.mark.parametrize("seed", range(8))
    def test_stress_mix_random_seeds(self, seed):
        spec = WorkloadSpec(
            ops_per_node=15, seed=2000 + seed, mode_mix=STRESS_MIX,
            locality=0.3,
        )
        result = run_hierarchical(6, spec)
        assert result.metrics.operations == 6 * 15

    @pytest.mark.parametrize(
        "options",
        [
            ProtocolOptions(freezing=False),
            ProtocolOptions(local_queues=False),
            ProtocolOptions(child_grants=False),
            ProtocolOptions(local_reentry=False),
            ProtocolOptions(
                freezing=False, local_queues=False,
                child_grants=False, local_reentry=False,
            ),
        ],
        ids=["no-freeze", "no-queues", "no-child-grants", "no-reentry", "bare"],
    )
    @pytest.mark.parametrize("seed", [3001, 3002, 3003])
    def test_every_ablation_stays_safe(self, options, seed):
        spec = WorkloadSpec(
            ops_per_node=12, seed=seed, mode_mix=STRESS_MIX, locality=0.3
        )
        result = run_with_options(6, spec, options)
        assert result.metrics.operations == 6 * 12

    @pytest.mark.parametrize("entries", [1, 2, 13])
    def test_entry_count_variations(self, entries):
        spec = WorkloadSpec(ops_per_node=12, seed=4000, entries=entries)
        result = run_hierarchical(5, spec)
        assert result.metrics.operations == 5 * 12

    def test_single_node_cluster_degenerates_cleanly(self):
        spec = WorkloadSpec(ops_per_node=20, seed=4100)
        result = run_hierarchical(1, spec)
        # Everything resolves locally at the token node: zero messages.
        assert result.metrics.total_messages == 0

    def test_upgrade_heavy_mix(self):
        spec = WorkloadSpec(
            ops_per_node=10, seed=4200,
            mode_mix=((LockMode.U, 0.6), (LockMode.IR, 0.4)),
        )
        result = run_hierarchical(5, spec)
        upgrades = [r for r in result.metrics.requests if r.kind == "U->W"]
        assert upgrades  # Rule 7 exercised under contention


class TestNaimiSoak:
    @pytest.mark.parametrize("seed", range(4))
    def test_same_work_random_seeds(self, seed):
        spec = WorkloadSpec(ops_per_node=10, seed=5000 + seed)
        result = run_naimi_same_work(5, spec)
        assert result.metrics.operations == 5 * 10

"""Fault injection: demonstrating the protocol's delivery assumptions.

The paper's protocol (like its TCP/LAN testbed) assumes reliable,
per-pair-FIFO delivery; there is no retransmission or token-regeneration
machinery in the plain clusters.  These tests *demonstrate* that boundary
instead of leaving it implicit: dropping a protocol message visibly wedges
the affected request and the harness's deadlock detection reports it,
while unaffected traffic keeps flowing.  (The resilient clusters in
:mod:`repro.faults` are the ones that survive this — see tests/faults/.)
"""

from __future__ import annotations

import pytest

from repro.core.messages import GrantMessage, TokenMessage
from repro.core.modes import LockMode
from repro.errors import SimulationError
from repro.faults.plan import FaultPlan, plan_from_loss_filter
from repro.sim.cluster import SimHierarchicalCluster
from repro.sim.engine import Process, Simulator, Timeout, run_processes
from repro.sim.network import Network
from repro.sim.rng import Fixed


def _cluster_with_loss(num_nodes: int, loss_filter) -> SimHierarchicalCluster:
    sim = Simulator()
    cluster = SimHierarchicalCluster(num_nodes, sim=sim, latency=Fixed(0.01))
    # Swap in a lossy network wired to the same handlers.
    lossy = Network(
        sim, latency=Fixed(0.01), faults=plan_from_loss_filter(loss_filter)
    )
    for node_id, lockspace in cluster.lockspaces.items():
        lossy.register(node_id, lockspace.handle)
    cluster.network = lossy
    return cluster


class TestMessageLoss:
    def test_lost_grant_wedges_the_request(self):
        dropped = {"count": 0}

        def drop_first_grant(sender, dest, message):
            if isinstance(message, GrantMessage) and dropped["count"] == 0:
                dropped["count"] += 1
                return True
            return False

        cluster = _cluster_with_loss(3, drop_first_grant)
        sim = cluster.sim
        cluster.client(0).acquire("t", LockMode.R)  # anchor the token

        def requester():
            yield cluster.client(1).acquire("t", LockMode.R)

        with pytest.raises(SimulationError, match="blocked"):
            run_processes(sim, [requester()])
        assert dropped["count"] == 1
        assert cluster.network.messages_dropped == 1

    def test_lost_token_wedges_the_system(self):
        def drop_tokens(sender, dest, message):
            return isinstance(message, TokenMessage)

        cluster = _cluster_with_loss(2, drop_tokens)
        sim = cluster.sim

        def writer():
            yield cluster.client(1).acquire("t", LockMode.W)

        with pytest.raises(SimulationError, match="blocked"):
            run_processes(sim, [writer()])
        # The token is gone: no automaton has it any more.
        holders = [
            n
            for n, space in cluster.lockspaces.items()
            if space.automaton("t").has_token
        ]
        assert holders == []

    def test_unrelated_locks_unaffected_by_the_loss(self):
        def drop_grants_for_t(sender, dest, message):
            return (
                isinstance(message, (GrantMessage, TokenMessage))
                and message.lock_id == "t"
            )

        cluster = _cluster_with_loss(3, drop_grants_for_t)
        sim = cluster.sim
        completed = []

        def doomed():
            yield cluster.client(1).acquire("t", LockMode.W)

        def healthy():
            yield cluster.client(2).acquire("other", LockMode.W)
            completed.append("other")
            yield Timeout(sim, 0.01)
            cluster.client(2).release("other", LockMode.W)

        Process(sim, doomed())
        Process(sim, healthy())
        sim.run()
        assert completed == ["other"]

    def test_no_loss_filter_means_no_drops(self):
        cluster = _cluster_with_loss(2, lambda s, d, m: False)

        def writer():
            yield cluster.client(1).acquire("t", LockMode.W)
            cluster.client(1).release("t", LockMode.W)

        run_processes(cluster.sim, [writer()])
        assert cluster.network.messages_dropped == 0


class TestLossFilterDeprecation:
    def test_constructor_argument_warns_but_still_works(self):
        sim = Simulator()
        with pytest.deprecated_call(match="loss_filter"):
            lossy = Network(
                sim,
                latency=Fixed(0.01),
                loss_filter=lambda s, d, m: isinstance(m, TokenMessage),
            )
        # The shim rides the fault injector: same drop behavior as before.
        cluster = SimHierarchicalCluster(2, sim=sim, latency=Fixed(0.01))
        for node_id, lockspace in cluster.lockspaces.items():
            lossy.register(node_id, lockspace.handle)
        cluster.network = lossy

        def writer():
            yield cluster.client(1).acquire("t", LockMode.W)

        with pytest.raises(SimulationError, match="blocked"):
            run_processes(sim, [writer()])
        assert cluster.network.messages_dropped == 1

    def test_faults_plan_is_the_replacement(self):
        sim = Simulator()
        # No warning with the first-class API.
        Network(sim, latency=Fixed(0.01), faults=FaultPlan())

"""Tests for the simulated clusters (hierarchical and Naimi)."""

from __future__ import annotations

import pytest

from repro.core.modes import LockMode
from repro.errors import ConfigurationError, InvariantViolation
from repro.metrics import MetricsCollector
from repro.sim.cluster import SimHierarchicalCluster, SimNaimiCluster
from repro.sim.engine import Simulator, Timeout, run_processes
from repro.verification.invariants import (
    CompatibilityMonitor,
    FifoObserver,
    MonitorSet,
    MutualExclusionMonitor,
)


class TestHierarchicalCluster:
    def test_needs_at_least_one_node(self):
        with pytest.raises(ConfigurationError):
            SimHierarchicalCluster(0)

    def test_single_acquire_release_cycle(self):
        sim = Simulator()
        monitor = CompatibilityMonitor()
        cluster = SimHierarchicalCluster(3, sim=sim, monitor=monitor)
        client = cluster.client(1)

        def body():
            yield client.acquire("t", LockMode.W)
            yield Timeout(sim, 0.01)
            client.release("t", LockMode.W)

        run_processes(sim, [body()])
        monitor.assert_all_released()
        cluster.assert_quiescent_invariants()
        assert monitor.grants == 1

    def test_concurrent_readers_share(self):
        sim = Simulator()
        monitor = CompatibilityMonitor()
        cluster = SimHierarchicalCluster(4, sim=sim, monitor=monitor)

        def reader(node):
            client = cluster.client(node)
            yield client.acquire("t", LockMode.R)
            yield Timeout(sim, 0.5)
            client.release("t", LockMode.R)

        run_processes(sim, [reader(n) for n in range(4)])
        # All four readers overlapped at some point.
        assert monitor.max_concurrency["t"] >= 2
        cluster.assert_quiescent_invariants()

    def test_writers_serialize(self):
        sim = Simulator()
        monitor = CompatibilityMonitor()
        cluster = SimHierarchicalCluster(3, sim=sim, monitor=monitor)

        def writer(node):
            client = cluster.client(node)
            yield client.acquire("t", LockMode.W)
            yield Timeout(sim, 0.05)
            client.release("t", LockMode.W)

        run_processes(sim, [writer(n) for n in range(3)])
        assert monitor.max_concurrency["t"] == 1
        assert monitor.grants == 3

    def test_upgrade_records_release_of_u(self):
        sim = Simulator()
        monitor = CompatibilityMonitor()
        cluster = SimHierarchicalCluster(2, sim=sim, monitor=monitor)
        client = cluster.client(1)

        def body():
            yield client.acquire("t", LockMode.U)
            yield client.upgrade("t")
            client.release("t", LockMode.W)

        run_processes(sim, [body()])
        monitor.assert_all_released()

    def test_metrics_count_wire_messages_by_type(self):
        sim = Simulator()
        metrics = MetricsCollector()
        cluster = SimHierarchicalCluster(3, sim=sim, metrics=metrics)

        def body(node):
            client = cluster.client(node)
            yield client.acquire("t", LockMode.R)
            client.release("t", LockMode.R)

        run_processes(sim, [body(n) for n in (1, 2)])
        assert metrics.total_messages > 0
        assert set(metrics.message_counts) <= {
            "request", "grant", "token", "release", "freeze"
        }

    def test_quiescence_check_catches_leaked_hold(self):
        sim = Simulator()
        cluster = SimHierarchicalCluster(2, sim=sim)
        client = cluster.client(1)

        def body():
            yield client.acquire("t", LockMode.W)
            # never released

        run_processes(sim, [body()])
        # The tree is consistent, but a pending-free leaked hold is fine
        # structurally; a *pending* request is not. Here we check the
        # positive path instead: structure is consistent.
        cluster.assert_quiescent_invariants()

    def test_fifo_observer_sees_grant_order(self):
        sim = Simulator()
        fifo = FifoObserver()
        cluster = SimHierarchicalCluster(
            3, sim=sim, monitor=MonitorSet([fifo])
        )

        def body(node, delay):
            client = cluster.client(node)
            yield Timeout(sim, delay)
            yield client.acquire("t", LockMode.W)
            client.release("t", LockMode.W)

        run_processes(sim, [body(1, 0.0), body(2, 2.0)])
        order = [event.node for event in fifo.grants_for("t")]
        assert order == [1, 2]


class TestNaimiCluster:
    def test_mutual_exclusion_enforced(self):
        sim = Simulator()
        monitor = MutualExclusionMonitor()
        cluster = SimNaimiCluster(4, sim=sim, monitor=monitor)

        def body(node):
            client = cluster.client(node)
            yield client.acquire("global")
            yield Timeout(sim, 0.02)
            client.release("global")

        run_processes(sim, [body(n) for n in range(4)])
        monitor.assert_all_released()
        cluster.assert_quiescent_invariants()
        assert monitor.grants == 4

    def test_metrics_labels_are_naimi_types(self):
        sim = Simulator()
        metrics = MetricsCollector()
        cluster = SimNaimiCluster(3, sim=sim, metrics=metrics)

        def body(node):
            client = cluster.client(node)
            yield client.acquire("g")
            client.release("g")

        run_processes(sim, [body(1), body(2)])
        assert set(metrics.message_counts) <= {"request", "token"}

    def test_multiple_independent_locks(self):
        sim = Simulator()
        monitor = MutualExclusionMonitor()
        cluster = SimNaimiCluster(3, sim=sim, monitor=monitor)

        def body(node, lock):
            client = cluster.client(node)
            yield client.acquire(lock)
            yield Timeout(sim, 0.5)
            client.release(lock)

        run_processes(sim, [body(1, "a"), body(2, "b")])
        # Disjoint locks proceed in parallel within the same virtual time.
        assert sim.now < 1.5
        cluster.assert_quiescent_invariants()

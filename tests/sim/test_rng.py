"""Tests for the seeded randomness helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rng import (
    Exponential,
    Fixed,
    Uniform,
    derive_rng,
    weighted_choice,
)


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(7, "latency", 3)
        b = derive_rng(7, "latency", 3)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_different_streams(self):
        a = derive_rng(7, "latency", 3)
        b = derive_rng(7, "latency", 4)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_different_streams(self):
        a = derive_rng(7, "x")
        b = derive_rng(8, "x")
        assert a.random() != b.random()


class TestDistributions:
    def test_fixed_returns_mean(self):
        dist = Fixed(0.15)
        rng = derive_rng(1)
        assert all(dist.sample(rng) == 0.15 for _ in range(10))

    def test_exponential_mean_converges(self):
        dist = Exponential(0.150)
        rng = derive_rng(2)
        samples = [dist.sample(rng) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(0.150, rel=0.05)

    def test_exponential_zero_mean_is_zero(self):
        dist = Exponential(0.0)
        assert dist.sample(derive_rng(3)) == 0.0

    def test_uniform_bounds_and_mean(self):
        dist = Uniform(0.1, 0.3)
        rng = derive_rng(4)
        samples = [dist.sample(rng) for _ in range(5_000)]
        assert all(0.1 <= s <= 0.3 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(0.2, rel=0.05)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            Uniform(0.3, 0.1)
        with pytest.raises(ValueError):
            Uniform(-1.0, 1.0)

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            Exponential(-0.1)


class TestWeightedChoice:
    def test_single_item(self):
        rng = derive_rng(5)
        assert weighted_choice(rng, [("only", 1.0)]) == "only"

    def test_zero_total_weight_rejected(self):
        rng = derive_rng(6)
        with pytest.raises(ValueError):
            weighted_choice(rng, [("a", 0.0)])

    def test_frequencies_match_weights(self):
        rng = derive_rng(7)
        items = [("a", 0.8), ("b", 0.15), ("c", 0.05)]
        counts = {"a": 0, "b": 0, "c": 0}
        for _ in range(20_000):
            counts[weighted_choice(rng, items)] += 1
        assert counts["a"] / 20_000 == pytest.approx(0.8, abs=0.02)
        assert counts["b"] / 20_000 == pytest.approx(0.15, abs=0.02)
        assert counts["c"] / 20_000 == pytest.approx(0.05, abs=0.01)

    @given(weights=st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=6
    ))
    def test_always_returns_an_item(self, weights):
        rng = derive_rng(8)
        items = [(i, w) for i, w in enumerate(weights)]
        assert weighted_choice(rng, items) in [i for i, _w in items]

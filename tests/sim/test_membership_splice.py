"""God-view membership splices on the plain sim clusters.

The plain clusters run the bare protocols (no recovery stack), so
membership changes are applied as atomic god-view splices between
workload phases: :meth:`add_node` admits a node online and
:meth:`remove_node` retires a quiescent one, transplanting token
custody, re-homing copyset children and re-routing everyone's pointers
so no waiter is stranded.  Every scenario here re-checks the cluster's
own quiescent invariants (single token, acyclic copyset, consistent
attachment) after each change, on all three protocols.
"""

from __future__ import annotations

import random

import pytest

from repro.core.lockspace import hashed_token_home
from repro.core.modes import LockMode
from repro.errors import ConfigurationError
from repro.sim.cluster import (
    SimHierarchicalCluster,
    SimNaimiCluster,
    SimRaymondCluster,
)
from repro.sim.engine import Process, Timeout

LOCKS = ["db", "db.t1", "db.t2"]


def _drive_phase(cluster, protocol, rng, ops):
    """One workload phase over the current members; raises on any error."""

    sim = cluster.sim

    def workload(node):
        client = cluster.clients[node]
        for _ in range(ops):
            lock = rng.choice(LOCKS)
            if protocol == "hierarchical":
                mode = rng.choice(
                    [LockMode.R, LockMode.W, LockMode.IR, LockMode.IW]
                )
                yield client.acquire(lock, mode)
            else:
                yield client.acquire(lock)
            yield Timeout(sim, rng.uniform(0.01, 0.1))
            if protocol == "hierarchical":
                client.release(lock, mode)
            else:
                client.release(lock)
            yield Timeout(sim, rng.uniform(0.01, 0.05))

    processes = [
        Process(sim, workload(node)) for node in list(cluster.members)
    ]
    sim.run()
    for process in processes:
        if process.error is not None:
            raise process.error


def _build(protocol, seed=0):
    if protocol == "hierarchical":
        return SimHierarchicalCluster(
            4, seed=seed + 1, token_home=hashed_token_home(4)
        )
    if protocol == "naimi":
        return SimNaimiCluster(4, seed=seed + 2)
    return SimRaymondCluster(5, seed=seed + 3)


PROTOCOLS = ("hierarchical", "naimi", "raymond")


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_join_then_remove_interior_and_token_home(protocol):
    """The acceptance sweep: join mid-sequence, then remove a member and
    the original token home / topology root, invariants clean after each."""

    cluster = _build(protocol)
    rng = random.Random(11)
    _drive_phase(cluster, protocol, rng, 5)
    joined = cluster.add_node()
    assert joined in cluster.members
    _drive_phase(cluster, protocol, rng, 4)
    cluster.remove_node(1)
    assert 1 not in cluster.members
    _drive_phase(cluster, protocol, rng, 4)
    cluster.assert_quiescent_invariants()
    # Node 0 is the hashed token home for some locks (hierarchical /
    # Naimi) and the topology root (Raymond): the hardest removal.
    cluster.remove_node(0)
    _drive_phase(cluster, protocol, rng, 4)
    cluster.assert_quiescent_invariants()
    events = [entry["event"] for entry in cluster.membership_log]
    assert events == ["join", "removed", "removed"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_removed_node_client_is_refused(protocol):
    cluster = _build(protocol)
    rng = random.Random(5)
    _drive_phase(cluster, protocol, rng, 2)
    cluster.remove_node(1)
    client = cluster.clients[1]
    with pytest.raises(ConfigurationError, match="left the cluster"):
        if protocol == "hierarchical":
            client.acquire("db", LockMode.R)
        else:
            client.acquire("db")


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_remove_refuses_a_busy_node(protocol):
    """A node still holding (or waiting) cannot be spliced out."""

    cluster = _build(protocol)
    sim = cluster.sim

    def holder():
        client = cluster.clients[1]
        if protocol == "hierarchical":
            yield client.acquire("db", LockMode.W)
        else:
            yield client.acquire("db")
        # Never releases inside this phase: node 1 is busy.

    Process(sim, holder())
    sim.run()
    with pytest.raises(ConfigurationError):
        cluster.remove_node(1)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_token_remains_unique_after_removals(protocol):
    """No lock ends up with zero or two custodians after splicing."""

    cluster = _build(protocol)
    rng = random.Random(23)
    _drive_phase(cluster, protocol, rng, 5)
    cluster.remove_node(1)
    cluster.remove_node(0)
    _drive_phase(cluster, protocol, rng, 3)
    for lock_id in LOCKS:
        holders = []
        for member in cluster.members:
            space = cluster.lockspaces[member]
            automaton = space.automaton(lock_id)
            has = (
                automaton.has_privilege
                if protocol == "raymond"
                else automaton.has_token
            )
            if has:
                holders.append(member)
        assert len(holders) == 1, (
            f"{protocol} {lock_id}: custodians {holders}"
        )


def test_join_allocates_fresh_ids_and_logs_sponsor_data():
    cluster = _build("hierarchical")
    first = cluster.add_node()
    second = cluster.add_node()
    assert first == 4 and second == 5
    assert cluster.members == [0, 1, 2, 3, 4, 5]
    joins = [e for e in cluster.membership_log if e["event"] == "join"]
    assert [e["node"] for e in joins] == [4, 5]


def test_double_remove_is_refused():
    cluster = _build("naimi")
    cluster.remove_node(2)
    with pytest.raises(ConfigurationError):
        cluster.remove_node(2)


def test_remove_down_to_one_member_keeps_working():
    """Shrink a Naimi cluster to a single member; it still self-grants."""

    cluster = SimNaimiCluster(3, seed=9)
    rng = random.Random(3)
    _drive_phase(cluster, "naimi", rng, 3)
    cluster.remove_node(1)
    cluster.remove_node(2)
    assert cluster.members == [0]
    _drive_phase(cluster, "naimi", rng, 3)
    cluster.assert_quiescent_invariants()

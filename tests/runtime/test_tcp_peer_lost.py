"""TCP reader-death reporting: bad frames must not die silently.

Before the fault work, a corrupt or oversized frame killed the reader
thread with nothing but a lost connection to show for it.  Now the
transport closes the stream, reports ``peer_lost`` to both the observer
callback and the observability sink, and the peer's next send transparently
reconnects.
"""

from __future__ import annotations

import socket
import struct
import time

from repro.core.messages import Envelope
from repro.core.modes import LockMode
from repro.faults.messages import HeartbeatMessage
from repro.obs.sink import ObsSink
from repro.runtime.tcp import MAX_FRAME, TcpTransport


class _RecordingSink(ObsSink):
    def __init__(self) -> None:
        self.lost = []

    def peer_lost(self, node, reason):
        self.lost.append((node, reason))


def _wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def _transport():
    sink = _RecordingSink()
    lost = []
    transport = TcpTransport(obs=sink)
    transport.on_peer_lost = lambda peer, reason: lost.append((peer, reason))
    transport.register(0, lambda m: [])
    transport.register(1, lambda m: [])
    transport.start()
    return transport, sink, lost


class TestReaderDeathReporting:
    def test_oversized_frame_reports_peer_lost(self):
        transport, sink, lost = _transport()
        try:
            with socket.create_connection(transport.address_of(1)) as sock:
                sock.sendall(struct.pack(">I", MAX_FRAME + 1))
                assert _wait_for(lambda: transport.peers_lost == 1)
            assert lost and "oversized" in lost[0][1]
            assert sink.lost == lost
            # No good frame ever arrived, so the peer is unknown.
            assert lost[0][0] == -1
        finally:
            transport.stop()

    def test_corrupt_frame_reports_peer_lost(self):
        transport, sink, lost = _transport()
        try:
            with socket.create_connection(transport.address_of(1)) as sock:
                garbage = b"\x00not pickle"
                sock.sendall(struct.pack(">I", len(garbage)) + garbage)
                assert _wait_for(lambda: transport.peers_lost == 1)
            assert lost and "corrupt frame" in lost[0][1]
        finally:
            transport.stop()

    def test_disconnect_reports_peer_lost_with_sender(self):
        transport, sink, lost = _transport()
        try:
            beat = HeartbeatMessage(lock_id="", sender=0)
            transport.send(0, [Envelope(1, beat)])
            assert _wait_for(lambda: transport.messages_sent == 1)
            # Tear down node 0's cached outbound connection abruptly.
            transport._drop_connection(
                0, 1, transport._outbound.get((0, 1))
                or socket.socket()
            )
            assert _wait_for(lambda: transport.peers_lost == 1)
            # The reader knew who was talking: the last good frame's sender.
            assert lost == [(0, "peer disconnected")]
        finally:
            transport.stop()

    def test_send_after_reader_death_reconnects(self):
        transport, sink, lost = _transport()
        try:
            with socket.create_connection(transport.address_of(1)) as sock:
                sock.sendall(struct.pack(">I", MAX_FRAME + 1))
                assert _wait_for(lambda: transport.peers_lost == 1)
            # Legit traffic still flows: a fresh reader serves the pair.
            received = []
            transport._handlers[1] = lambda m: received.append(m) or []
            beat = HeartbeatMessage(lock_id="", sender=0)
            transport.send(0, [Envelope(1, beat)])
            assert _wait_for(lambda: received == [beat])
        finally:
            transport.stop()

    def test_orderly_shutdown_is_not_a_failure(self):
        transport, sink, lost = _transport()
        beat = HeartbeatMessage(lock_id="", sender=0)
        transport.send(0, [Envelope(1, beat)])
        transport.stop()
        assert lost == []
        assert transport.peers_lost == 0

"""Tests for the TCP loopback transport and a cluster running over it."""

from __future__ import annotations

import threading

import pytest

from repro.core.messages import Envelope, ReleaseMessage
from repro.core.modes import LockMode
from repro.errors import SimulationError
from repro.runtime.cluster import ThreadedHierarchicalCluster
from repro.runtime.tcp import TcpTransport
from repro.verification.invariants import CompatibilityMonitor

TIMEOUT = 30.0


def _release(sender=0):
    return ReleaseMessage(lock_id="L", sender=sender, new_mode=LockMode.NONE)


class TestTcpTransport:
    def test_frame_round_trip(self):
        transport = TcpTransport()
        received = threading.Event()
        seen = []
        transport.register(0, lambda msg: [])
        transport.register(
            1, lambda msg: (seen.append(msg), received.set(), [])[-1]
        )
        transport.start()
        try:
            transport.send(0, [Envelope(1, _release())])
            assert received.wait(timeout=10.0)
            assert isinstance(seen[0], ReleaseMessage)
            assert transport.messages_sent == 1
        finally:
            transport.stop()

    def test_fifo_per_connection(self):
        transport = TcpTransport()
        received = []
        done = threading.Event()

        def handler(msg):
            received.append(msg.sender)
            if len(received) == 50:
                done.set()
            return []

        transport.register(0, lambda msg: [])
        transport.register(1, handler)
        transport.start()
        try:
            for index in range(50):
                transport.send(
                    0,
                    [Envelope(1, ReleaseMessage(
                        lock_id="L", sender=index, new_mode=LockMode.NONE
                    ))],
                )
            assert done.wait(timeout=10.0)
            assert received == list(range(50))
        finally:
            transport.stop()

    def test_replies_flow_back_over_tcp(self):
        transport = TcpTransport()
        round_trip = threading.Event()
        transport.register(0, lambda msg: round_trip.set() or [])
        transport.register(1, lambda msg: [Envelope(0, _release(sender=1))])
        transport.start()
        try:
            transport.send(0, [Envelope(1, _release())])
            assert round_trip.wait(timeout=10.0)
        finally:
            transport.stop()

    def test_unregistered_destination_rejected(self):
        transport = TcpTransport()
        transport.register(0, lambda msg: [])
        transport.start()
        try:
            with pytest.raises(SimulationError):
                transport.send(0, [Envelope(9, _release())])
        finally:
            transport.stop()

    def test_each_node_gets_distinct_port(self):
        transport = TcpTransport()
        transport.register(0, lambda msg: [])
        transport.register(1, lambda msg: [])
        assert transport.address_of(0) != transport.address_of(1)
        transport.stop()


class TestClusterOverTcp:
    def test_full_protocol_over_sockets(self):
        monitor = CompatibilityMonitor()
        with ThreadedHierarchicalCluster(
            3, monitor=monitor, transport=TcpTransport()
        ) as cluster:
            client = cluster.client(1)
            client.acquire("db/t", LockMode.IW, timeout=TIMEOUT)
            client.acquire("db/t/0", LockMode.W, timeout=TIMEOUT)
            client.release("db/t/0", LockMode.W)
            client.release("db/t", LockMode.IW)
            monitor.assert_all_released()

    def test_writers_serialize_over_sockets(self):
        monitor = CompatibilityMonitor()
        with ThreadedHierarchicalCluster(
            3, monitor=monitor, transport=TcpTransport()
        ) as cluster:
            inside = {"count": 0, "max": 0}
            guard = threading.Lock()

            def writer(node):
                client = cluster.client(node)
                for _ in range(5):
                    client.acquire("t", LockMode.W, timeout=TIMEOUT)
                    with guard:
                        inside["count"] += 1
                        inside["max"] = max(inside["max"], inside["count"])
                        inside["count"] -= 1
                    client.release("t", LockMode.W)

            threads = [
                threading.Thread(target=writer, args=(n,)) for n in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert inside["max"] == 1
            monitor.assert_all_released()

    def test_upgrade_over_sockets(self):
        monitor = CompatibilityMonitor()
        with ThreadedHierarchicalCluster(
            2, monitor=monitor, transport=TcpTransport()
        ) as cluster:
            client = cluster.client(1)
            client.acquire("t", LockMode.U, timeout=TIMEOUT)
            client.upgrade("t", timeout=TIMEOUT)
            client.release("t", LockMode.W)
            monitor.assert_all_released()

"""Tests for the threaded cluster: the protocol under real concurrency."""

from __future__ import annotations

import threading

import pytest

from repro.core.modes import LockMode
from repro.runtime.cluster import ThreadedHierarchicalCluster
from repro.verification.invariants import CompatibilityMonitor

TIMEOUT = 20.0


class TestBlockingClient:
    def test_acquire_release_round_trip(self):
        monitor = CompatibilityMonitor()
        with ThreadedHierarchicalCluster(2, monitor=monitor) as cluster:
            client = cluster.client(1)
            client.acquire("t", LockMode.W, timeout=TIMEOUT)
            client.release("t", LockMode.W)
            monitor.assert_all_released()

    def test_writers_from_all_nodes_serialize(self):
        monitor = CompatibilityMonitor()
        with ThreadedHierarchicalCluster(4, monitor=monitor) as cluster:
            counter = {"value": 0, "max_seen": 0}
            gate = threading.Lock()

            def writer(node):
                client = cluster.client(node)
                for _ in range(10):
                    client.acquire("t", LockMode.W, timeout=TIMEOUT)
                    with gate:
                        counter["value"] += 1
                        counter["max_seen"] = max(
                            counter["max_seen"], counter["value"]
                        )
                    with gate:
                        counter["value"] -= 1
                    client.release("t", LockMode.W)

            threads = [
                threading.Thread(target=writer, args=(n,)) for n in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert counter["max_seen"] == 1
            monitor.assert_all_released()

    def test_readers_overlap_writers_exclude(self):
        monitor = CompatibilityMonitor()
        with ThreadedHierarchicalCluster(4, monitor=monitor) as cluster:
            barrier = threading.Barrier(3, timeout=TIMEOUT)

            def reader(node):
                client = cluster.client(node)
                client.acquire("t", LockMode.R, timeout=TIMEOUT)
                barrier.wait()  # all three readers inside simultaneously
                client.release("t", LockMode.R)

            threads = [
                threading.Thread(target=reader, args=(n,)) for n in (1, 2, 3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert monitor.max_concurrency["t"] == 3

    def test_hierarchical_entry_writes_proceed_in_parallel(self):
        monitor = CompatibilityMonitor()
        with ThreadedHierarchicalCluster(3, monitor=monitor) as cluster:
            barrier = threading.Barrier(2, timeout=TIMEOUT)

            def entry_writer(node, entry):
                client = cluster.client(node)
                client.acquire("db/t", LockMode.IW, timeout=TIMEOUT)
                client.acquire(f"db/t/{entry}", LockMode.W, timeout=TIMEOUT)
                barrier.wait()  # both writers inside at once
                client.release(f"db/t/{entry}", LockMode.W)
                client.release("db/t", LockMode.IW)

            threads = [
                threading.Thread(target=entry_writer, args=(1, 0)),
                threading.Thread(target=entry_writer, args=(2, 1)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            monitor.assert_all_released()

    def test_upgrade_under_contention(self):
        monitor = CompatibilityMonitor()
        with ThreadedHierarchicalCluster(3, monitor=monitor) as cluster:
            client = cluster.client(1)
            client.acquire("t", LockMode.U, timeout=TIMEOUT)
            reader_done = threading.Event()

            def reader():
                other = cluster.client(2)
                other.acquire("t", LockMode.R, timeout=TIMEOUT)
                other.release("t", LockMode.R)
                reader_done.set()

            thread = threading.Thread(target=reader)
            thread.start()
            assert reader_done.wait(timeout=TIMEOUT)  # R coexists with U
            client.upgrade("t", timeout=TIMEOUT)
            client.release("t", LockMode.W)
            thread.join(timeout=10)
            monitor.assert_all_released()

    def test_attempt_succeeds_only_locally(self):
        with ThreadedHierarchicalCluster(2) as cluster:
            token_client = cluster.client(0)   # node 0 holds the token
            remote_client = cluster.client(1)
            assert token_client.attempt("t", LockMode.R)       # token-local
            assert not remote_client.attempt("t", LockMode.R)  # no ownership
            token_client.release("t", LockMode.R)

    def test_attempt_after_ownership_established(self):
        with ThreadedHierarchicalCluster(2) as cluster:
            client = cluster.client(1)
            client.acquire("t", LockMode.R, timeout=TIMEOUT)
            # Owning R, an IR attempt is locally grantable (Rule 2).
            assert client.attempt("t", LockMode.IR)
            client.release("t", LockMode.IR)
            client.release("t", LockMode.R)

    def test_timeout_raises(self):
        with ThreadedHierarchicalCluster(2) as cluster:
            cluster.client(0).acquire("t", LockMode.W, timeout=TIMEOUT)
            with pytest.raises(TimeoutError):
                cluster.client(1).acquire("t", LockMode.W, timeout=0.2)
            # Cleanup: release the W so the pending request drains.
            cluster.client(0).release("t", LockMode.W)

    def test_downgrade_lets_reader_in(self):
        monitor = CompatibilityMonitor()
        with ThreadedHierarchicalCluster(2, monitor=monitor) as cluster:
            writer = cluster.client(0)
            reader = cluster.client(1)
            writer.acquire("t", LockMode.W, timeout=TIMEOUT)
            done = threading.Event()

            def read():
                reader.acquire("t", LockMode.R, timeout=TIMEOUT)
                reader.release("t", LockMode.R)
                done.set()

            thread = threading.Thread(target=read)
            thread.start()
            assert not done.wait(timeout=0.3)  # blocked by the W
            writer.downgrade("t", LockMode.W, LockMode.R)
            assert done.wait(timeout=TIMEOUT)
            writer.release("t", LockMode.R)
            thread.join(timeout=10)

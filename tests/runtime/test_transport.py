"""Tests for the threaded in-process transport."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.messages import Envelope, ReleaseMessage
from repro.core.modes import LockMode
from repro.errors import SimulationError
from repro.runtime.transport import ThreadedTransport


def _release(sender=0):
    return ReleaseMessage(lock_id="L", sender=sender, new_mode=LockMode.NONE)


class TestThreadedTransport:
    def test_delivery_to_handler(self):
        transport = ThreadedTransport()
        received = threading.Event()
        transport.register(0, lambda msg: [])
        transport.register(1, lambda msg: received.set() or [])
        transport.start()
        try:
            transport.send(0, [Envelope(1, _release())])
            assert received.wait(timeout=5.0)
        finally:
            transport.stop()

    def test_replies_flow_back(self):
        transport = ThreadedTransport()
        round_trip = threading.Event()
        transport.register(0, lambda msg: round_trip.set() or [])
        transport.register(1, lambda msg: [Envelope(0, _release(sender=1))])
        transport.start()
        try:
            transport.send(0, [Envelope(1, _release())])
            assert round_trip.wait(timeout=5.0)
        finally:
            transport.stop()

    def test_fifo_order_per_pair(self):
        transport = ThreadedTransport()
        received = []
        done = threading.Event()

        def handler(msg):
            received.append(msg.sender)
            if len(received) == 20:
                done.set()
            return []

        transport.register(0, lambda msg: [])
        transport.register(1, handler)
        transport.start()
        try:
            for index in range(20):
                transport.send(
                    0,
                    [Envelope(1, ReleaseMessage(
                        lock_id="L", sender=index, new_mode=LockMode.NONE
                    ))],
                )
            assert done.wait(timeout=5.0)
            assert received == list(range(20))
        finally:
            transport.stop()

    def test_message_counter_excludes_self_sends(self):
        transport = ThreadedTransport()
        transport.register(0, lambda msg: [])
        transport.register(1, lambda msg: [])
        transport.start()
        try:
            transport.send(0, [Envelope(1, _release()), Envelope(0, _release())])
            transport.drain()
            assert transport.messages_sent == 1
        finally:
            transport.stop()

    def test_unregistered_destination_rejected(self):
        transport = ThreadedTransport()
        transport.register(0, lambda msg: [])
        transport.start()
        try:
            with pytest.raises(SimulationError):
                transport.send(0, [Envelope(7, _release())])
        finally:
            transport.stop()

    def test_registration_after_start_rejected(self):
        transport = ThreadedTransport()
        transport.register(0, lambda msg: [])
        transport.start()
        try:
            with pytest.raises(SimulationError):
                transport.register(1, lambda msg: [])
        finally:
            transport.stop()

    def test_stop_is_idempotent(self):
        transport = ThreadedTransport()
        transport.register(0, lambda msg: [])
        transport.start()
        transport.stop()
        transport.stop()

    def test_observer_invoked_off_the_hot_path(self):
        observed = []
        transport = ThreadedTransport(
            observer=lambda s, d, m: observed.append((s, d))
        )
        transport.register(0, lambda msg: [])
        transport.register(1, lambda msg: [])
        transport.start()
        try:
            transport.send(0, [Envelope(1, _release())])
            transport.drain()
            assert observed == [(0, 1)]
        finally:
            transport.stop()

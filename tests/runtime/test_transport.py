"""Tests for the threaded in-process transport."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.messages import Envelope, ReleaseMessage
from repro.core.modes import LockMode
from repro.errors import SimulationError
from repro.runtime.transport import ThreadedTransport


def _release(sender=0):
    return ReleaseMessage(lock_id="L", sender=sender, new_mode=LockMode.NONE)


class TestThreadedTransport:
    def test_delivery_to_handler(self):
        transport = ThreadedTransport()
        received = threading.Event()
        transport.register(0, lambda msg: [])
        transport.register(1, lambda msg: received.set() or [])
        transport.start()
        try:
            transport.send(0, [Envelope(1, _release())])
            assert received.wait(timeout=5.0)
        finally:
            transport.stop()

    def test_replies_flow_back(self):
        transport = ThreadedTransport()
        round_trip = threading.Event()
        transport.register(0, lambda msg: round_trip.set() or [])
        transport.register(1, lambda msg: [Envelope(0, _release(sender=1))])
        transport.start()
        try:
            transport.send(0, [Envelope(1, _release())])
            assert round_trip.wait(timeout=5.0)
        finally:
            transport.stop()

    def test_fifo_order_per_pair(self):
        transport = ThreadedTransport()
        received = []
        done = threading.Event()

        def handler(msg):
            received.append(msg.sender)
            if len(received) == 20:
                done.set()
            return []

        transport.register(0, lambda msg: [])
        transport.register(1, handler)
        transport.start()
        try:
            for index in range(20):
                transport.send(
                    0,
                    [Envelope(1, ReleaseMessage(
                        lock_id="L", sender=index, new_mode=LockMode.NONE
                    ))],
                )
            assert done.wait(timeout=5.0)
            assert received == list(range(20))
        finally:
            transport.stop()

    def test_message_counter_excludes_self_sends(self):
        transport = ThreadedTransport()
        transport.register(0, lambda msg: [])
        transport.register(1, lambda msg: [])
        transport.start()
        try:
            transport.send(0, [Envelope(1, _release()), Envelope(0, _release())])
            transport.drain()
            assert transport.messages_sent == 1
        finally:
            transport.stop()

    def test_unregistered_destination_rejected(self):
        transport = ThreadedTransport()
        transport.register(0, lambda msg: [])
        transport.start()
        try:
            with pytest.raises(SimulationError):
                transport.send(0, [Envelope(7, _release())])
        finally:
            transport.stop()

    def test_registration_after_start_serves_the_new_node(self):
        """A membership join registers on a running transport; the late
        node's dispatcher spins up immediately."""

        transport = ThreadedTransport()
        transport.register(0, lambda msg: [])
        transport.start()
        try:
            received = threading.Event()
            transport.register(1, lambda msg: received.set() or [])
            transport.send(0, [Envelope(1, _release())])
            assert received.wait(timeout=5.0)
        finally:
            transport.stop()

    def test_double_registration_rejected(self):
        transport = ThreadedTransport()
        transport.register(0, lambda msg: [])
        with pytest.raises(SimulationError):
            transport.register(0, lambda msg: [])

    def test_stop_is_idempotent(self):
        transport = ThreadedTransport()
        transport.register(0, lambda msg: [])
        transport.start()
        transport.stop()
        transport.stop()

    def test_drain_waits_for_mid_flight_handler(self):
        """drain() must not declare idle while a handler is mid-flight.

        Node 0's handler sleeps long enough for every inbox to look empty
        across many polls before it finally sends to node 1 — the exact
        race the old inbox-emptiness heuristic lost.  With the in-flight
        counter, drain() returns only after node 1 has been reached.
        """

        transport = ThreadedTransport()
        reached = threading.Event()

        def slow_then_forward(msg):
            # Far longer than drain's poll * settle_rounds window.
            time.sleep(0.1)
            return [Envelope(1, _release())]

        transport.register(0, slow_then_forward)
        transport.register(1, lambda msg: reached.set() or [])
        transport.start()
        try:
            transport.send(1, [Envelope(0, _release(sender=1))])
            transport.drain(poll=0.001, settle_rounds=3)
            assert reached.is_set(), (
                "drain() returned while a handler was still mid-flight"
            )
        finally:
            transport.stop()

    def test_drain_confirm_pass_restarts_on_late_arrivals(self):
        """A send racing the settle loop restarts the drain, not idles."""

        transport = ThreadedTransport()
        hops = []

        def chain(msg):
            hops.append(msg.sender)
            if len(hops) < 5:
                time.sleep(0.02)
                return [Envelope(1, _release(sender=len(hops)))]
            return []

        transport.register(0, lambda msg: [])
        transport.register(1, chain)
        transport.start()
        try:
            transport.send(0, [Envelope(1, _release())])
            transport.drain(poll=0.001, settle_rounds=2)
            assert len(hops) == 5
        finally:
            transport.stop()

    def test_observer_invoked_off_the_hot_path(self):
        observed = []
        transport = ThreadedTransport(
            observer=lambda s, d, m: observed.append((s, d))
        )
        transport.register(0, lambda msg: [])
        transport.register(1, lambda msg: [])
        transport.start()
        try:
            transport.send(0, [Envelope(1, _release())])
            transport.drain()
            assert observed == [(0, 1)]
        finally:
            transport.stop()

"""Shared test utilities: a synchronous message pump for automata.

The pump drives a set of transport-agnostic automata with instant,
per-pair-FIFO delivery — protocol unit tests exercise exact message
exchanges without the simulator, and can also hold messages back to build
specific race interleavings.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.automaton import (
    FULL_PROTOCOL,
    HierarchicalLockAutomaton,
    ProtocolOptions,
)
from repro.core.clock import LamportClock
from repro.core.messages import Envelope, NodeId
from repro.core.modes import LockMode

LOCK = "L"


class Pump:
    """Synchronous delivery fabric for a set of hierarchical automata."""

    def __init__(
        self,
        num_nodes: int,
        token_node: NodeId = 0,
        options: ProtocolOptions = FULL_PROTOCOL,
        lock_id: str = LOCK,
        parents: Optional[Dict[NodeId, NodeId]] = None,
    ) -> None:
        self.lock_id = lock_id
        self.grants: List[Tuple[NodeId, LockMode, object]] = []
        self.automata: Dict[NodeId, HierarchicalLockAutomaton] = {}
        self.queue: Deque[Tuple[NodeId, Envelope]] = deque()
        parents = parents or {}
        for node in range(num_nodes):
            parent = parents.get(node, token_node)
            self.automata[node] = HierarchicalLockAutomaton(
                node_id=node,
                lock_id=lock_id,
                clock=LamportClock(),
                parent=None if node == token_node else parent,
                has_token=node == token_node,
                listener=self._listener(node),
                options=options,
            )

    def _listener(self, node: NodeId):
        def listener(lock_id, mode, ctx):
            self.grants.append((node, mode, ctx))

        return listener

    # -- driving ----------------------------------------------------------

    def request(self, node: NodeId, mode: LockMode, ctx: object = None) -> None:
        """Issue a request and deliver all resulting traffic."""

        self.send(node, self.automata[node].request(mode, ctx))
        self.drain()

    def release(self, node: NodeId, mode: LockMode) -> None:
        """Release a hold and deliver all resulting traffic."""

        self.send(node, self.automata[node].release(mode))
        self.drain()

    def upgrade(self, node: NodeId, ctx: object = None) -> None:
        """Issue a U→W upgrade and deliver all resulting traffic."""

        self.send(node, self.automata[node].upgrade(ctx))
        self.drain()

    def send(self, sender: NodeId, envelopes: List[Envelope]) -> None:
        """Enqueue envelopes without delivering them yet."""

        for envelope in envelopes:
            self.queue.append((sender, envelope))

    def step(self) -> bool:
        """Deliver exactly one message; False when nothing is queued."""

        if not self.queue:
            return False
        sender, envelope = self.queue.popleft()
        replies = self.automata[envelope.dest].handle(envelope.message)
        self.send(envelope.dest, replies)
        return True

    def drain(self, limit: int = 10_000) -> None:
        """Deliver until quiescent (bounded, to catch livelock)."""

        steps = 0
        while self.step():
            steps += 1
            assert steps < limit, "message livelock in pump"

    # -- assertions --------------------------------------------------------

    def granted_modes(self, node: NodeId) -> List[LockMode]:
        """Modes granted to *node*, in grant order."""

        return [mode for n, mode, _ctx in self.grants if n == node]

    def token_holder(self) -> NodeId:
        """The unique token node (asserts uniqueness)."""

        holders = [n for n, a in self.automata.items() if a.has_token]
        assert len(holders) == 1, f"token holders: {holders}"
        return holders[0]

    def assert_quiescent_tree(self) -> None:
        """Parent/child records are mutually consistent at quiescence."""

        assert not self.queue
        for node, automaton in self.automata.items():
            for child, recorded in automaton.children.items():
                actual = self.automata[child].owned_mode()
                assert actual is recorded, (
                    f"node {node} records child {child} as {recorded}, "
                    f"actual owned mode is {actual}"
                )
                assert self.automata[child].parent == node

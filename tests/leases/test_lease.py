"""Lease table semantics: deadlines, fencing tokens, hostile clocks.

The lease layer never reads a clock — every mutator takes an explicit
``now`` — so these tests drive it with deliberately broken timelines
(frozen clocks, skewed clocks, time travelling backwards) and check the
two properties revocation safety rests on: deadlines are monotonic
(renewal never shortens a lease) and fencing tokens are strictly
ordered (a later epoch dominates every earlier token).
"""

from __future__ import annotations

import pytest

from repro.leases import (
    Lease,
    LeaseConfig,
    LeaseTable,
    fencing_epoch,
    mint_fencing_token,
)

CFG = LeaseConfig(duration=6.0, revoke_margin=1.5)


class TestFencingTokens:
    def test_tokens_strictly_increase_within_an_epoch(self):
        tokens = [mint_fencing_token(0) for _ in range(5)]
        assert tokens == sorted(tokens)
        assert len(set(tokens)) == 5

    def test_later_epoch_dominates_every_earlier_token(self):
        # Mint many epoch-0 tokens first: the serial counter alone must
        # never climb past a single later-epoch token.
        old = [mint_fencing_token(0) for _ in range(100)]
        newer = mint_fencing_token(1)
        assert all(newer > token for token in old)

    def test_epoch_recoverable_from_token(self):
        for epoch in (0, 1, 7, 123):
            assert fencing_epoch(mint_fencing_token(epoch)) == epoch

    def test_zero_is_never_minted(self):
        # 0 is the "unfenced" sentinel in messages; a real token must
        # always clear it.
        assert mint_fencing_token(0) > 0


class TestLeaseConfig:
    def test_session_ttl_spans_duration_plus_margin(self):
        assert CFG.session_ttl == pytest.approx(7.5)

    def test_lease_active_until_deadline_expired_after_margin(self):
        lease = Lease(lock="L", mode="W", holder=1, token=5, deadline=10.0)
        assert lease.active(9.999)
        assert not lease.active(10.0)
        assert not lease.expired(10.0, margin=1.5)
        assert lease.expired(11.5, margin=1.5)


class TestRenewalMonotonicity:
    def test_renew_extends_the_deadline(self):
        table = LeaseTable(CFG)
        lease = table.grant("L", "W", holder=1, token=7, now=0.0)
        assert lease.deadline == pytest.approx(6.0)
        table.renew("L", holder=1, now=4.0)
        assert lease.deadline == pytest.approx(10.0)

    def test_frozen_clock_renewal_is_a_noop(self):
        # A holder whose clock stopped keeps renewing with the same
        # stamp; the deadline must stay put, never regress.
        table = LeaseTable(CFG)
        lease = table.grant("L", "W", holder=1, token=7, now=5.0)
        deadline = lease.deadline
        for _ in range(10):
            table.renew("L", holder=1, now=5.0)
        assert lease.deadline == deadline

    def test_backwards_clock_renewal_never_shrinks_the_lease(self):
        table = LeaseTable(CFG)
        lease = table.grant("L", "W", holder=1, token=7, now=10.0)
        table.renew("L", holder=1, now=12.0)
        extended = lease.deadline
        # Skewed stamp from the past: must not pull the deadline back.
        table.renew("L", holder=1, now=3.0)
        assert lease.deadline == extended

    def test_renew_unknown_lease_returns_none(self):
        table = LeaseTable(CFG)
        assert table.renew("L", holder=9, now=0.0) is None

    def test_regrant_keeps_newest_token_and_latest_deadline(self):
        table = LeaseTable(CFG)
        first = table.grant("L", "R", holder=1, token=10, now=10.0)
        again = table.grant("L", "W", holder=1, token=8, now=2.0)
        assert again is first
        assert first.token == 10  # An older token never replaces a newer.
        assert first.deadline == pytest.approx(16.0)  # Never backwards.
        assert first.mode == "W"


class TestObserveMirrors:
    def test_observe_grants_then_renews(self):
        table = LeaseTable(CFG)
        row = ["L", "W", 1, 42]
        assert table.observe(1, [row], now=0.0) == 1
        lease = table.get("L", 1)
        assert lease is not None and lease.token == 42
        table.observe(1, [row], now=3.0)
        assert lease.deadline == pytest.approx(9.0)

    def test_unadvertised_leases_are_dropped(self):
        # A released hold disappearing from the heartbeat must not
        # linger and later fire a spurious revocation against a
        # re-acquired hold.
        table = LeaseTable(CFG)
        table.observe(1, [["A", "W", 1, 5], ["B", "R", 1, 6]], now=0.0)
        assert len(table) == 2
        table.observe(1, [["B", "R", 1, 6]], now=1.0)
        assert table.get("A", 1) is None
        assert table.get("B", 1) is not None

    def test_observe_only_touches_that_holder(self):
        table = LeaseTable(CFG)
        table.observe(1, [["A", "W", 1, 5]], now=0.0)
        table.observe(2, [["B", "R", 2, 6]], now=0.0)
        table.observe(1, [], now=1.0)  # Holder 1 released everything.
        assert table.get("A", 1) is None
        assert table.get("B", 2) is not None


class TestExpiryAndRevocation:
    def test_holder_active_spans_the_revoke_margin(self):
        # Until deadline + margin the holder may still be self-fencing;
        # its hold must keep pinning the copyset.
        table = LeaseTable(CFG)
        table.grant("L", "W", holder=1, token=7, now=0.0)
        assert table.holder_active("L", 1, now=6.5)
        assert table.holder_active("L", 1, now=7.4)
        assert not table.holder_active("L", 1, now=7.5)

    def test_expired_listing_respects_the_margin(self):
        table = LeaseTable(CFG)
        table.grant("L", "W", holder=1, token=7, now=0.0)
        table.grant("M", "R", holder=2, token=8, now=3.0)
        assert table.expired(now=7.4) == []
        ripe = table.expired(now=7.5)
        assert [lease.lock for lease in ripe] == ["L"]

    def test_drop_holder_clears_all_their_leases(self):
        table = LeaseTable(CFG)
        table.grant("A", "W", holder=1, token=5, now=0.0)
        table.grant("B", "R", holder=1, token=6, now=0.0)
        table.grant("A", "R", holder=2, token=7, now=0.0)
        dropped = table.drop_holder(1)
        assert sorted(lease.lock for lease in dropped) == ["A", "B"]
        assert len(table) == 1

    def test_export_roundtrips_through_observe(self):
        table = LeaseTable(CFG)
        table.grant("A", "W", holder=1, token=5, now=0.0)
        table.grant("B", "IR", holder=1, token=6, now=0.0)
        mirror = LeaseTable(CFG)
        mirror.observe(1, table.export(), now=0.0)
        assert [l.to_payload() for l in mirror.leases()] == [
            l.to_payload() for l in table.leases()
        ]

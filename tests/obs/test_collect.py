"""Tests for the RunObserver collector and the null sink contract."""

from __future__ import annotations

from repro.obs.collect import RunObserver
from repro.obs.sink import (
    ENQUEUED,
    FROZEN,
    GRANTED,
    ISSUED,
    NULL_SINK,
    RELEASED,
    ObsSink,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _observer():
    clock = FakeClock()
    return RunObserver(clock=clock), clock


class TestNullSink:
    def test_every_hook_is_a_noop(self):
        sink = ObsSink()
        sink.phase(0, "L", "k", ISSUED)
        sink.phase(0, "L", None, RELEASED, "R")
        sink.queue_depth(0, "L", 3)
        sink.copyset_size(0, "L", 2)
        sink.freeze_size(0, "L", 1)
        sink.message(0, 1, "request")
        sink.wire_sent(0, 1, 64, 0.001)
        sink.wire_received(1, 64)
        sink.engine_tick(1.0, 10)

    def test_shared_null_singleton(self):
        assert isinstance(NULL_SINK, ObsSink)


class TestSpanCollection:
    def test_full_lifecycle_with_freeze_is_monotonic(self):
        observer, clock = _observer()
        key = ("req", 1)
        observer.phase(1, "db/t", key, ISSUED, "IW")
        clock.now = 0.2
        observer.phase(1, "db/t", key, ENQUEUED, "IW")
        observer.phase(1, "db/t", key, FROZEN, "IW")
        clock.now = 1.0
        observer.phase(1, "db/t", key, GRANTED, "IW")
        clock.now = 1.4
        observer.phase(1, "db/t", None, RELEASED, "IW")
        (span,) = observer.spans
        assert span.is_monotonic()
        assert [name for name, _t in span.phases] == [
            ISSUED, ENQUEUED, FROZEN, GRANTED, RELEASED,
        ]
        assert span.latency == 1.0
        assert observer.completed_spans() == [span]

    def test_release_matches_oldest_granted_span(self):
        observer, clock = _observer()
        for index, key in enumerate(("a", "b")):
            clock.now = float(index)
            observer.phase(0, "L", key, ISSUED, "R")
            observer.phase(0, "L", key, GRANTED, "R")
        clock.now = 5.0
        observer.phase(0, "L", None, RELEASED, "R")
        first, second = observer.spans
        assert first.released_at == 5.0
        assert second.released_at is None

    def test_release_requires_matching_mode(self):
        observer, clock = _observer()
        observer.phase(0, "L", "k", ISSUED, "R")
        observer.phase(0, "L", "k", GRANTED, "R")
        clock.now = 1.0
        observer.phase(0, "L", None, RELEASED, "W")  # wrong mode: no match
        assert observer.spans[0].released_at is None

    def test_unknown_key_opens_span_lazily(self):
        observer, _clock = _observer()
        observer.phase(2, "L", "late", GRANTED, "U")
        (span,) = observer.spans
        assert span.kind == "U"
        assert span.granted_at is not None


class TestSeriesCollection:
    def test_messages_and_peers(self):
        observer, clock = _observer()
        observer.message(0, 1, "request")
        clock.now = 0.4
        observer.message(1, 0, "grant")
        assert observer.messages.totals() == {"request": 1, "grant": 1}
        assert observer.peer_messages.totals() == {"0->1": 1, "1->0": 1}
        assert "messages" in observer.counters()

    def test_gauges_sampled_under_canonical_names(self):
        observer, _clock = _observer()
        observer.queue_depth(0, "L", 4)
        observer.copyset_size(0, "L", 2)
        observer.freeze_size(0, "L", 1)
        gauges = observer.gauges()
        assert gauges["queue_depth"].peak() == 4
        assert gauges["copyset_size"].peak() == 2
        assert gauges["freeze_size"].peak() == 1

    def test_engine_tick_records_deltas(self):
        observer, _clock = _observer()
        observer.engine_tick(0.5, 10)
        observer.engine_tick(1.5, 25)
        assert observer.engine_events.total("events") == 25

    def test_wire_metrics(self):
        observer, _clock = _observer()
        observer.wire_sent(0, 1, 128, 0.002)
        observer.wire_received(1, 128)
        assert observer.wire_bytes.totals() == {"sent": 128, "received": 128}
        assert observer.send_latency.count == 1
        assert "send_latency" in observer.histograms()

    def test_empty_series_omitted_from_accessors(self):
        observer, _clock = _observer()
        assert observer.counters() == {}
        assert observer.gauges() == {}
        assert observer.histograms() == {}

    def test_ring_caps_bound_memory_without_losing_totals(self):
        # Long chaos runs use bounded sinks: spans become a ring, series
        # buckets age out, but whole-run totals stay exact.
        clock = FakeClock()
        observer = RunObserver(clock=clock, max_buckets=2, max_spans=3)
        for index in range(10):
            clock.now = float(index)
            observer.message(0, 1, "request")
            observer.phase(0, "L", ("req", index), ISSUED, "R")
        assert len(observer.spans) == 3  # ring kept only the newest
        assert observer.messages.total() == 10
        assert len(observer.messages.items()) <= 2
        assert observer.messages.evicted_buckets == 8

    def test_default_construction_is_unbounded(self):
        observer, _clock = _observer()
        assert isinstance(observer.spans, list)
        assert observer.messages.evicted_buckets == 0

"""Live snapshots, the online invariant audit, and their zero-cost
contract: capturing a view never perturbs a run."""

from __future__ import annotations

import json

from repro.core.modes import LockMode
from repro.metrics import MetricsCollector
from repro.obs.live import (
    AuditReport,
    ClusterView,
    LiveMonitor,
    LockSnapshot,
    NodeSnapshot,
    QueueEntry,
    RecoveryHealth,
    audit_view,
)
from repro.sim.cluster import (
    SimHierarchicalCluster,
    SimNaimiCluster,
    SimRaymondCluster,
)
from repro.sim.engine import Timeout, run_processes
from repro.sim.rng import derive_rng
from repro.verification.invariants import FifoObserver

from tests.helpers import Pump

MODES = (LockMode.IR, LockMode.R, LockMode.IW, LockMode.W)


# ---------------------------------------------------------------------------
# Automaton snapshots.
# ---------------------------------------------------------------------------


class TestHierarchicalSnapshot:
    def test_token_node_and_copyset_child(self):
        pump = Pump(3)
        # Rule 2: the token moves to the first requester (node 1); a
        # second compatible R joins its copyset as a child.
        pump.request(1, LockMode.R)
        pump.request(2, LockMode.R)
        root = pump.automata[1].snapshot()
        assert root.believes_token
        assert root.parent is None
        assert root.children == ((2, "R"),)
        assert root.held == (("R", 1),)
        child = pump.automata[2].snapshot()
        assert child.parent == 1
        assert child.held == (("R", 1),)
        assert child.pending is None
        assert child.queue == ()

    def test_queued_and_pending_requests_visible(self):
        pump = Pump(3)
        pump.request(1, LockMode.W)
        pump.request(2, LockMode.W)  # conflicts: queues behind node 1
        queued = [
            entry
            for automaton in pump.automata.values()
            for entry in automaton.snapshot().queue
        ]
        assert [e.origin for e in queued] == [2]
        assert queued[0].mode == "W"
        assert pump.automata[2].snapshot().pending == "W"

    def test_snapshot_is_a_pure_read(self):
        pump = Pump(2)
        pump.request(1, LockMode.W)
        before = pump.automata[1].snapshot()
        for automaton in pump.automata.values():
            automaton.snapshot()
        assert pump.automata[1].snapshot() == before
        pump.release(1, LockMode.W)  # still releasable: state untouched


class TestBaselineSnapshots:
    def test_naimi_fault_free_run_audits_healthy(self):
        cluster = SimNaimiCluster(5, seed=3)

        def body(node):
            client = cluster.client(node)
            for _ in range(4):
                yield client.acquire("m")
                yield Timeout(cluster.sim, 0.01)
                client.release("m")

        run_processes(cluster.sim, [body(n) for n in range(5)])
        view = cluster.cluster_view()
        assert view.protocol == "naimi"
        assert len(view.token_believers("m")) == 1
        report = audit_view(view, quiescent=True)
        assert report.ok, report.verdict()
        assert report.findings == ()

    def test_raymond_fault_free_run_audits_healthy(self):
        cluster = SimRaymondCluster(5, seed=3)

        def body(node):
            client = cluster.client(node)
            for _ in range(4):
                yield client.acquire("m")
                yield Timeout(cluster.sim, 0.01)
                client.release("m")

        run_processes(cluster.sim, [body(n) for n in range(5)])
        view = cluster.cluster_view()
        assert view.protocol == "raymond"
        assert len(view.token_believers("m")) == 1
        report = audit_view(view, quiescent=True)
        assert report.ok, report.verdict()
        assert report.findings == ()


# ---------------------------------------------------------------------------
# The audit, over synthetic views.
# ---------------------------------------------------------------------------


def _view(*nodes, protocol="hierarchical", t=0.0):
    return ClusterView(protocol=protocol, captured_at=t, nodes=tuple(nodes))


def _node(node_id, *locks, alive=True):
    return NodeSnapshot(node=node_id, alive=alive, locks=tuple(locks))


class TestAuditRules:
    def test_healthy_view_has_no_findings(self):
        view = _view(
            _node(0, LockSnapshot("L", believes_token=True, parent=None)),
            _node(1, LockSnapshot("L", believes_token=False, parent=0)),
        )
        report = audit_view(view, quiescent=True)
        assert report.ok
        assert report.findings == ()
        assert report.locks_checked == 1
        assert report.nodes_checked == 2

    def test_token_split_is_always_a_violation(self):
        view = _view(
            _node(0, LockSnapshot("L", believes_token=True, parent=None)),
            _node(1, LockSnapshot("L", believes_token=True, parent=None)),
        )
        report = audit_view(view)  # not even quiescent
        assert not report.ok
        (finding,) = report.violations()
        assert finding.rule == "token-split"
        assert finding.nodes == (0, 1)

    def test_token_missing_escalates_when_quiescent(self):
        snap = LockSnapshot("L", believes_token=False, parent=None)
        view = _view(_node(0, snap))
        live = audit_view(view, quiescent=False)
        assert live.ok  # in flight: a transfer message may carry it
        assert [f.rule for f in live.warnings()] == ["token-missing"]
        drained = audit_view(view, quiescent=True)
        assert not drained.ok
        assert [f.rule for f in drained.violations()] == ["token-missing"]

    def test_active_copyset_cycle_is_reported_once(self):
        view = _view(
            _node(
                0,
                LockSnapshot(
                    "L", believes_token=False, parent=1, held=(("R", 1),)
                ),
            ),
            _node(1, LockSnapshot("L", believes_token=False, parent=0)),
            # A third node chaining into the cycle must not duplicate it.
            _node(2, LockSnapshot("L", believes_token=False, parent=1)),
            _node(3, LockSnapshot("L", believes_token=True, parent=None)),
        )
        report = audit_view(view, quiescent=True)
        cycles = [f for f in report.findings if f.rule == "copyset-cycle"]
        assert len(cycles) == 1
        assert cycles[0].severity == "violation"
        assert set(cycles[0].nodes) == {0, 1}

    def test_fully_idle_cycle_is_stale_residue_not_a_violation(self):
        # Post-partition-heal residue: idle nodes keep pre-heal parent
        # edges after the token was regenerated elsewhere.  Reported,
        # but as a warning even at quiescence.
        view = _view(
            _node(0, LockSnapshot("L", believes_token=False, parent=1)),
            _node(1, LockSnapshot("L", believes_token=False, parent=0)),
            _node(2, LockSnapshot("L", believes_token=True, parent=None)),
        )
        report = audit_view(view, quiescent=True)
        (cycle,) = [f for f in report.findings if f.rule == "copyset-cycle"]
        assert cycle.severity == "warning"
        assert "stale routing residue" in cycle.detail
        assert report.ok

    def test_dead_references_flagged(self):
        view = _view(
            _node(
                0,
                LockSnapshot(
                    "L",
                    believes_token=True,
                    parent=None,
                    children=((1, "R"),),
                    queue=(QueueEntry(origin=1, mode="W", key="L:1"),),
                ),
            ),
            _node(1, alive=False),
        )
        report = audit_view(view, quiescent=True)
        rules = [f.rule for f in report.findings]
        assert rules.count("dead-reference") == 2  # child edge + queue entry

    def test_rule1_incompatible_holds_is_a_violation(self):
        view = _view(
            _node(
                0,
                LockSnapshot(
                    "L", believes_token=True, parent=None, held=(("W", 1),),
                    children=((1, "W"),),
                ),
            ),
            _node(
                1,
                LockSnapshot(
                    "L", believes_token=False, parent=0, held=(("W", 1),)
                ),
            ),
        )
        report = audit_view(view)
        assert [f.rule for f in report.violations()] == ["rule1"]

    def test_one_node_may_stack_incompatible_holds(self):
        view = _view(
            _node(
                0,
                LockSnapshot(
                    "L",
                    believes_token=True,
                    parent=None,
                    held=(("R", 1), ("W", 1)),
                ),
            ),
        )
        assert audit_view(view).ok

    def test_starvation_watch_uses_latency_baseline(self):
        stale = QueueEntry(origin=1, mode="W", key="L:1", age=5.0)
        fresh = QueueEntry(origin=2, mode="W", key="L:2", age=0.2)
        view = _view(
            _node(
                0,
                LockSnapshot(
                    "L",
                    believes_token=True,
                    parent=None,
                    held=(("W", 1),),
                    queue=(stale, fresh),
                ),
            ),
            _node(1, LockSnapshot("L", believes_token=False, parent=0)),
            _node(2, LockSnapshot("L", believes_token=False, parent=0)),
        )
        report = audit_view(view, mean_grant_latency=0.1)
        starving = [f for f in report.findings if f.rule == "starvation"]
        assert len(starving) == 1
        assert starving[0].severity == "warning"
        assert "L:1" in starving[0].detail
        # No baseline, no watch.
        assert audit_view(view).findings == ()

    def test_confirmed_deadlocks_surface_as_violation(self):
        view = _view(
            _node(0, LockSnapshot("L", believes_token=True, parent=None)),
        )
        report = audit_view(view, deadlocks=2)
        (finding,) = report.violations()
        assert finding.rule == "deadlock"
        assert "2" in finding.detail


class TestPayloadRoundTrip:
    def test_view_and_report_survive_json(self):
        view = _view(
            _node(
                0,
                LockSnapshot(
                    "L",
                    believes_token=True,
                    parent=None,
                    children=((1, "R"),),
                    held=(("IW", 2),),
                    queue=(QueueEntry(origin=1, mode="W", key="0.3"),),
                    frozen=("W",),
                    token_epoch=2,
                ),
            ),
            NodeSnapshot(
                node=1,
                alive=True,
                locks=(LockSnapshot("L", believes_token=False, parent=0),),
                recovery=RecoveryHealth(
                    boot=1,
                    suspected=(2,),
                    live_peers=(0,),
                    channel_backlog=3,
                    channel_retransmits=4,
                    app_retransmits=5,
                    token_hints=(("L", 0, 2),),
                ),
            ),
            _node(2, alive=False),
            t=12.5,
        )
        decoded = ClusterView.from_payload(
            json.loads(json.dumps(view.to_payload()))
        )
        assert decoded == view
        report = audit_view(view, quiescent=True)
        decoded_report = AuditReport.from_payload(
            json.loads(json.dumps(report.to_payload()))
        )
        assert decoded_report == report


# ---------------------------------------------------------------------------
# The poller: queue ages across polls.
# ---------------------------------------------------------------------------


class TestLiveMonitorAges:
    def _source(self, state):
        def capture():
            return _view(
                _node(
                    0,
                    LockSnapshot(
                        "L",
                        believes_token=True,
                        parent=None,
                        held=(("W", 1),),
                        queue=tuple(state["queue"]),
                    ),
                ),
                t=state["now"],
            )

        return capture

    def test_entries_age_across_polls_and_prune_on_grant(self):
        entry = QueueEntry(origin=1, mode="W", key="L:1")
        state = {"now": 0.0, "queue": [entry]}
        monitor = LiveMonitor(self._source(state))
        view, _ = monitor.poll()
        assert view.nodes[0].locks[0].queue[0].age == 0.0
        state["now"] = 5.0
        view, _ = monitor.poll()
        assert view.nodes[0].locks[0].queue[0].age == 5.0
        # Granted: the entry vanishes and its first-seen slot is pruned,
        # so a later identical key starts aging from zero again.
        state["queue"] = []
        monitor.poll()
        state["now"] = 10.0
        state["queue"] = [entry]
        view, _ = monitor.poll()
        assert view.nodes[0].locks[0].queue[0].age == 0.0


# ---------------------------------------------------------------------------
# The zero-cost contract: monitoring never changes a run.
# ---------------------------------------------------------------------------


def _seeded_run(seed, monitored):
    metrics = MetricsCollector()
    fifo = FifoObserver()
    cluster = SimHierarchicalCluster(
        4, seed=seed, monitor=fifo, metrics=metrics
    )
    sim = cluster.sim
    reports = []
    if monitored:
        live = LiveMonitor(cluster.cluster_view)
        for tick in range(1, 30):
            sim.schedule(tick * 0.25, lambda: reports.append(live.poll()))

    def body(node):
        rng = derive_rng(seed, "live-bitident", node)
        client = cluster.client(node)
        for _ in range(6):
            lock_id = f"lock-{rng.randrange(2)}"
            mode = MODES[rng.randrange(len(MODES))]
            yield client.acquire(lock_id, mode)
            yield Timeout(sim, rng.uniform(0.01, 0.10))
            client.release(lock_id, mode)
            yield Timeout(sim, rng.uniform(0.01, 0.10))

    run_processes(sim, [body(n) for n in range(4)])
    grants = {
        lock_id: [(e.node, str(e.mode)) for e in events]
        for lock_id, events in fifo.grant_log.items()
    }
    return dict(metrics.message_counts), grants, reports, cluster


class TestMonitoringIsFree:
    def test_message_counts_and_grant_order_bit_identical(self):
        bare_counts, bare_grants, _, _ = _seeded_run(2003, monitored=False)
        counts, grants, reports, cluster = _seeded_run(2003, monitored=True)
        assert reports, "the monitored run polled nothing"
        assert counts == bare_counts
        assert grants == bare_grants
        # And the run it watched ends healthy.
        final = audit_view(cluster.cluster_view(), quiescent=True)
        assert final.ok, final.verdict()

    def test_hierarchical_fault_free_run_audits_healthy(self):
        _, _, _, cluster = _seeded_run(7, monitored=False)
        report = audit_view(cluster.cluster_view(), quiescent=True)
        assert report.ok, report.verdict()
        assert report.findings == ()

"""Tests for the observability JSONL export/reload round trip."""

from __future__ import annotations

import io
import json

from repro.obs.collect import RunObserver
from repro.obs.export import RunTrace, load_runs, write_run
from repro.obs.sink import GRANTED, ISSUED, RELEASED


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _observed():
    clock = FakeClock()
    observer = RunObserver(clock=clock)
    observer.phase(0, "L", "k1", ISSUED, "R")
    clock.now = 0.3
    observer.phase(0, "L", "k1", GRANTED, "R")
    observer.message(0, 1, "request")
    observer.message(1, 0, "token")
    observer.queue_depth(0, "L", 2)
    clock.now = 0.6
    observer.phase(0, "L", None, RELEASED, "R")
    return observer


class TestRoundTrip:
    def test_write_then_load(self):
        observer = _observed()
        buffer = io.StringIO()
        meta = {"protocol": "hierarchical", "nodes": 4, "requests": 1}
        lines = write_run(buffer, observer, meta)
        assert lines == buffer.getvalue().count("\n")
        buffer.seek(0)
        (run,) = load_runs(buffer)
        assert run.meta == meta
        assert run.spans == observer.spans
        assert run.message_totals() == {"request": 1, "token": 1}
        assert run.gauges["queue_depth"].peak() == 2
        assert run.requests == 1
        assert run.label == "hierarchical (4 nodes)"

    def test_multiple_run_sections(self):
        buffer = io.StringIO()
        write_run(buffer, _observed(), {"label": "first"})
        write_run(buffer, _observed(), {"label": "second"})
        buffer.seek(0)
        runs = load_runs(buffer)
        assert [run.label for run in runs] == ["first", "second"]
        assert all(len(run.spans) == 1 for run in runs)

    def test_requests_falls_back_to_granted_spans(self):
        buffer = io.StringIO()
        write_run(buffer, _observed(), {"label": "bare"})
        buffer.seek(0)
        (run,) = load_runs(buffer)
        assert run.requests == 1

    def test_classic_trace_events_interleave(self):
        # Lines in verification/trace.py's format share the file: the
        # loader must keep them without choking on the unknown cat.
        buffer = io.StringIO()
        write_run(buffer, _observed(), {"label": "mixed"})
        classic = {"t": 0.1, "cat": "grant", "node": 0, "lock": "L",
                   "mode": "R", "detail": ""}
        buffer.write(json.dumps(classic) + "\n")
        buffer.seek(0)
        (run,) = load_runs(buffer)
        assert run.events == [classic]
        assert len(run.spans) == 1

    def test_empty_stream(self):
        assert load_runs(io.StringIO("")) == []

    def test_empty_run_trace_defaults(self):
        run = RunTrace()
        assert run.requests == 0
        assert run.message_totals() == {}
        assert run.label == "run"

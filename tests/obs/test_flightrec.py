"""Unit tests for the flight recorder: ring, codec, dumps, sniffing."""

from __future__ import annotations

import os

import pytest

from repro.core.automaton import ProtocolOptions
from repro.core.modes import LockMode
from repro.obs.flightrec import (
    FlightRecorder,
    attach_recorders,
    load_dump,
    looks_like_flight_dump,
    message_from_payload,
    message_to_payload,
    run_self_test,
    write_dump,
)
from repro.sim.cluster import SimHierarchicalCluster
from repro.sim.engine import Timeout, run_processes


def _recorded_run(seed=7, nodes=3, rounds=4, checkpoint_every=8):
    cluster = SimHierarchicalCluster(
        nodes, seed=seed, options=ProtocolOptions(recovery=True)
    )
    recorders = attach_recorders(cluster, checkpoint_every=checkpoint_every)

    def body(node):
        client = cluster.client(node)
        for step in range(rounds):
            yield client.acquire("root", LockMode.IW)
            yield client.acquire(f"leaf{(node + step) % 2}", LockMode.W)
            yield Timeout(cluster.sim, 0.002)
            client.release(f"leaf{(node + step) % 2}", LockMode.W)
            client.release("root", LockMode.IW)
            yield Timeout(cluster.sim, 0.001)

    run_processes(cluster.sim, [body(n) for n in range(nodes)])
    cluster.assert_quiescent_invariants()
    return cluster, recorders


class TestRingBuffer:
    def test_capacity_must_fit_one_segment(self):
        with pytest.raises(ValueError):
            FlightRecorder(0, capacity=4, checkpoint_every=8)

    def test_eviction_keeps_checkpoint_headed_prefix(self):
        recorder = FlightRecorder(0, capacity=20, checkpoint_every=4)
        recorder.state_source = lambda: {"clock": 0, "locks": []}
        for index in range(100):
            recorder.record_op("L", "request", {"i": index})
        assert recorder.depth <= recorder.capacity
        assert recorder.dropped > 0
        events = recorder.export_events()
        # The ring head must be replayable: oldest retained event is a
        # checkpoint, and seq numbering keeps counting across evictions.
        assert events[0]["kind"] == "ckpt"
        assert events[-1]["seq"] == recorder.last_seq
        assert recorder.last_seq > recorder.depth  # history was evicted

    def test_checkpoint_reflects_prior_events_only(self):
        recorder = FlightRecorder(0, capacity=64, checkpoint_every=2)
        state = {"clock": 0, "locks": []}
        recorder.state_source = lambda: dict(state)
        recorder.record_op("L", "request", {})  # forces ckpt at seq 1
        state["clock"] = 99  # mutate after the first checkpoint
        recorder.record_op("L", "release", {})
        events = recorder.export_events()
        assert events[0]["kind"] == "ckpt"
        assert events[0]["state"]["clock"] == 0

    def test_stats_payload(self):
        recorder = FlightRecorder(3, capacity=32, checkpoint_every=4)
        stats = recorder.stats()
        assert stats["node"] == 3
        assert stats["last_seq"] == 0
        assert stats["capacity"] == 32


class TestMessageCodec:
    def test_round_trip_every_recorded_message(self):
        _cluster, recorders = _recorded_run()
        checked = 0
        for recorder in recorders.values():
            for event in recorder.export_events():
                if event["kind"] != "msg":
                    continue
                payload = event["msg"]
                message = message_from_payload(payload)
                assert message_to_payload(message) == payload
                checked += 1
        assert checked > 0

    def test_fencing_token_survives(self):
        from repro.naimi.messages import NaimiRequestMessage

        message = NaimiRequestMessage(
            lock_id="L", sender=1, origin=2, fencing_token=7
        )
        payload = message_to_payload(message)
        assert payload["fencing_token"] == 7
        assert message_from_payload(payload).fencing_token == 7

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            message_from_payload({"type": "Bogus", "lock": "L", "sender": 0})


class TestDumpFiles:
    def test_write_load_round_trip(self, tmp_path):
        _cluster, recorders = _recorded_run()
        path = os.path.join(tmp_path, "run.flight")
        write_dump(path, recorders, meta={"plan": "unit"})
        dump = load_dump(path)
        assert dump.protocol == "hierarchical"
        assert dump.meta["plan"] == "unit"
        assert dump.nodes() == sorted(recorders)
        for node_id, recorder in recorders.items():
            assert len(dump.events[node_id]) == recorder.depth
            assert dump.node_meta[node_id]["dropped"] == recorder.dropped
        assert dump.corrupt_skipped == 0 and dump.torn_bytes == 0

    def test_torn_tail_tolerated(self, tmp_path):
        _cluster, recorders = _recorded_run()
        path = os.path.join(tmp_path, "torn.flight")
        write_dump(path, recorders)
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.truncate(handle.tell() - 3)  # tear the last frame
        dump = load_dump(path)
        assert dump.torn_bytes > 0
        assert dump.nodes()  # intact prefix still loads

    def test_not_a_dump_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "nope.flight")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"cat": "span"}\n')
        with pytest.raises(ValueError):
            load_dump(path)

    def test_sniffer(self, tmp_path):
        _cluster, recorders = _recorded_run()
        dump_path = os.path.join(tmp_path, "real.flight")
        write_dump(dump_path, recorders)
        assert looks_like_flight_dump(dump_path)
        other = os.path.join(tmp_path, "trace.jsonl")
        with open(other, "w", encoding="utf-8") as handle:
            handle.write('{"kind": "meta"}\n')
        assert not looks_like_flight_dump(other)
        assert not looks_like_flight_dump(os.path.join(tmp_path, "missing"))


class TestOptionsSniffing:
    def test_attach_captures_protocol_options(self):
        cluster = SimHierarchicalCluster(
            2, seed=1, options=ProtocolOptions(recovery=True)
        )
        recorders = attach_recorders(cluster)
        assert recorders[0].meta["options"]["recovery"] is True


class TestSelfTest:
    def test_self_test_passes(self):
        lines = []
        assert run_self_test(emit=lines.append) == 0
        assert any("bit-for-bit" in line for line in lines)
        assert any("bisect pinpointed" in line for line in lines)

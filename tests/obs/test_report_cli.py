"""``python -m repro report``: rendering, waterfalls, JSON output, and
the contract that a bad trace file yields a one-line diagnostic and
exit 2 — never a traceback."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.experiments.common import run_hierarchical
from repro.obs.export import write_run
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    run = run_hierarchical(4, WorkloadSpec(ops_per_node=5, seed=11),
                           observe=True)
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    with open(path, "w", encoding="utf-8") as stream:
        write_run(stream, run.observer, run.trace_meta())
    return str(path)


class TestRenderedReport:
    def test_chain_sections_present(self, trace_path, capsys):
        assert main(["report", trace_path]) == 0
        out = capsys.readouterr().out
        assert "causal chains" in out
        assert "hops/request" in out
        assert "critical paths" in out
        for segment in ("transit", "queue", "freeze", "recovery"):
            assert segment in out

    def test_waterfalls_rendered_and_disablable(self, trace_path, capsys):
        assert main(["report", trace_path]) == 0
        with_waterfalls = capsys.readouterr().out
        assert "trace " in with_waterfalls  # per-request waterfall header
        assert main(["report", trace_path, "--waterfall", "0"]) == 0
        without = capsys.readouterr().out
        assert "trace " not in without
        assert "causal chains" in without  # aggregates stay


class TestJsonReport:
    def test_json_output_parses_and_matches_the_run(self, trace_path,
                                                    capsys):
        assert main(["report", trace_path, "--json"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        (payload,) = payloads
        assert payload["meta"]["protocol"] == "hierarchical"
        assert payload["requests"] == payload["spans"]["completed"]
        assert payload["messages"]["total"] == sum(
            payload["messages"]["by_type"].values()
        )
        assert payload["messages"]["per_request"] > 0
        assert "issued->granted" in payload["phases"]
        assert payload["phases"]["issued->granted"]["n"] > 0
        assert payload["chains"]["request_chains"] > 0
        assert payload["chains"]["hops_per_request"] > 0

    def test_json_and_text_agree_on_message_totals(self, trace_path,
                                                   capsys):
        assert main(["report", trace_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)[0]
        assert main(["report", trace_path]) == 0
        text = capsys.readouterr().out
        total_line = next(
            line for line in text.splitlines() if line.startswith("TOTAL")
        )
        assert str(payload["messages"]["total"]) in total_line
        assert f"{payload['chains']['total_hops']} hops" in text


class TestBadTraceFiles:
    def _expect_diagnostic(self, argv, capsys):
        rc = main(argv)
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_missing_file(self, tmp_path, capsys):
        self._expect_diagnostic(
            ["report", str(tmp_path / "nope.jsonl")], capsys
        )

    def test_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        self._expect_diagnostic(["report", str(path)], capsys)

    def test_truncated_jsonl(self, tmp_path, capsys):
        path = tmp_path / "cut.jsonl"
        path.write_text('{"cat": "run", "meta": {"label": "x"}}\n{"cat": "sp')
        self._expect_diagnostic(["report", str(path)], capsys)

    def test_binary_garbage(self, tmp_path, capsys):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"\x80\x02\x95\xff\x00garbage\xfe")
        self._expect_diagnostic(["report", str(path)], capsys)

    def test_flightrec_dump_redirects_to_replay(self, tmp_path, capsys):
        # A flight-recorder dump is binary CRC-framed, not JSONL; report
        # must recognize it and point at the replay subcommand.
        from repro.obs.flightrec import attach_recorders, write_dump
        from repro.sim.cluster import SimHierarchicalCluster

        cluster = SimHierarchicalCluster(2, seed=1)
        recorders = attach_recorders(cluster)
        recorders[0].record_op("L", "request", {"mode": "R"})
        path = tmp_path / "run.flight"
        write_dump(str(path), recorders)
        rc = main(["report", str(path)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "looks like a flightrec dump" in captured.err
        assert "repro replay" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_classic_trace_events_still_render(self, tmp_path, capsys):
        # Valid JSONL without run sections is the verification-trace
        # interop format: kept as raw events, rendered, exit 0.
        path = tmp_path / "other.jsonl"
        path.write_text('{"t": 0.1, "cat": "grant", "node": 0}\n')
        assert main(["report", str(path)]) == 0
        assert capsys.readouterr().err == ""


class TestChaosTraceReport:
    def test_recovery_activity_visible(self, tmp_path, capsys):
        trace = tmp_path / "chaos.jsonl"
        main([
            "chaos", "--plan", "smoke", "--seed", "0", "--nodes", "3",
            "--duration", "3", "--grace", "8", "--trace-out", str(trace),
        ])
        capsys.readouterr()  # discard the chaos summary
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "fault / recovery activity" in out
        assert "crash" in out  # the smoke plan kills a node
        assert "causal chains" in out

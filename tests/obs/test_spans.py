"""Tests for request-lifecycle spans."""

from __future__ import annotations

import pytest

from repro.obs.sink import ENQUEUED, FROZEN, GRANTED, ISSUED, RELEASED
from repro.obs.spans import RequestSpan


class TestSpanLifecycle:
    def test_full_lifecycle_phases(self):
        span = RequestSpan(node=1, lock="db/t", kind="W")
        span.mark(ISSUED, 0.0)
        span.mark(ENQUEUED, 0.1)
        span.mark(GRANTED, 0.5)
        span.mark(RELEASED, 0.7)
        assert span.issued_at == 0.0
        assert span.granted_at == 0.5
        assert span.released_at == 0.7
        assert span.latency == pytest.approx(0.5)
        assert span.wait(ENQUEUED, GRANTED) == pytest.approx(0.4)

    def test_frozen_then_granted_is_monotonic(self):
        # The ISSUE's canonical case: a request blocked by Rule 6 freezing
        # must still produce phases in lifecycle order.
        span = RequestSpan(node=2, lock="db/t", kind="IW")
        span.mark(ISSUED, 1.0)
        span.mark(ENQUEUED, 1.2)
        span.mark(FROZEN, 1.2)
        span.mark(GRANTED, 2.5)
        span.mark(RELEASED, 2.8)
        assert span.is_monotonic()
        times = [time for _phase, time in span.phases]
        assert times == sorted(times)

    def test_mark_is_idempotent_per_phase(self):
        span = RequestSpan(node=0, lock="L", kind="R")
        span.mark(ISSUED, 0.0)
        span.mark(ISSUED, 9.0)
        assert span.phases == [(ISSUED, 0.0)]

    def test_out_of_order_phases_detected(self):
        span = RequestSpan(node=0, lock="L", kind="R")
        span.mark(GRANTED, 0.5)
        span.mark(ISSUED, 0.6)
        assert not span.is_monotonic()

    def test_backwards_timestamps_detected(self):
        span = RequestSpan(node=0, lock="L", kind="R")
        span.mark(ISSUED, 1.0)
        span.mark(GRANTED, 0.5)
        assert not span.is_monotonic()

    def test_incomplete_span_has_no_latency(self):
        span = RequestSpan(node=0, lock="L", kind="R")
        span.mark(ISSUED, 0.0)
        assert span.granted_at is None
        assert span.latency is None
        assert span.released_at is None


class TestSpanSerialization:
    def test_payload_round_trip(self):
        span = RequestSpan(node=3, lock="db/t", kind="U")
        span.mark(ISSUED, 0.25)
        span.mark(GRANTED, 0.75)
        rebuilt = RequestSpan.from_payload(span.to_payload())
        assert rebuilt == span

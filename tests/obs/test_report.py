"""Tests for the `repro report` renderer, including the end-to-end
guarantee that its message breakdown matches the metrics layer."""

from __future__ import annotations

import io

import pytest

from repro.experiments.common import run_hierarchical
from repro.obs.export import load_runs, write_run
from repro.obs.report import render_report, render_run
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def observed_run():
    spec = WorkloadSpec(ops_per_node=5, seed=11)
    return run_hierarchical(4, spec, observe=True)


@pytest.fixture(scope="module")
def loaded(observed_run):
    buffer = io.StringIO()
    write_run(buffer, observed_run.observer, observed_run.trace_meta())
    buffer.seek(0)
    (run,) = load_runs(buffer)
    return run


class TestReportRendering:
    def test_sections_present(self, loaded):
        text = render_run(loaded)
        assert "request phases" in text
        assert "message breakdown" in text
        assert "issued->granted" in text
        assert "queue depth timeline" in text

    def test_message_totals_match_metrics(self, observed_run, loaded):
        # The acceptance criterion: per-type counts reloaded from the
        # trace equal MetricsCollector's counters for the same run.
        assert loaded.message_totals() == dict(
            observed_run.metrics.message_counts
        )
        per_request = observed_run.metrics.message_overhead_by_type()
        assert loaded.requests == observed_run.metrics.total_requests
        for label, total in loaded.message_totals().items():
            assert total / loaded.requests == pytest.approx(
                per_request[label]
            )

    def test_spans_reload_monotonic(self, loaded):
        assert loaded.spans
        assert all(span.is_monotonic() for span in loaded.spans)

    def test_render_report_joins_runs(self, loaded):
        text = render_report([loaded, loaded])
        assert text.count("hierarchical (4 nodes)") == 2

    def test_empty_report(self):
        assert "empty trace" in render_report([])

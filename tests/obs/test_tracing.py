"""Unit tests for the causal tracer: hop bookkeeping, chain resolution,
critical-path decomposition, payload round-trips."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.messages import (
    Envelope,
    GrantMessage,
    ReleaseMessage,
    RequestId,
    RequestMessage,
    TraceContext,
)
from repro.core.modes import LockMode
from repro.obs.tracing import (
    Hop,
    MessageTracer,
    TraceChain,
    canonical_span_key,
    critical_path,
    message_label,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _request(origin=0, dest=1, serial=1, lock="L"):
    rid = RequestId(timestamp=0, origin=origin, serial=serial)
    return Envelope(dest, RequestMessage(
        lock_id=lock, sender=origin, origin=origin,
        mode=LockMode.R, request_id=rid,
    ))


def _grant(trace, sender=1, dest=0, serial=1, lock="L"):
    rid = RequestId(timestamp=0, origin=dest, serial=serial)
    return Envelope(dest, GrantMessage(
        lock_id=lock, sender=sender, mode=LockMode.R,
        request_id=rid, trace=trace,
    ))


class TestLabelsAndKeys:
    def test_message_label(self):
        msg = _request().message
        assert message_label(msg) == "request"

    def test_canonical_span_key_forms(self):
        assert canonical_span_key((3, 7)) == "3.7"
        assert canonical_span_key(("L", 2)) == "L:2"
        rid = RequestId(timestamp=0, origin=4, serial=9)
        assert canonical_span_key(rid) == "4.9"

    def test_chain_span_key_strips_serial_suffix(self):
        chain = TraceChain(trace_id="L:2#5", origin=2, lock="L",
                           issued_at=0.0)
        assert chain.span_key == "L:2"
        chain = TraceChain(trace_id="3.7", origin=3, lock="L", issued_at=0.0)
        assert chain.span_key == "3.7"


class TestTracerBasics:
    def test_request_mints_chain_and_grant_finalizes(self):
        clock = FakeClock()
        tracer = MessageTracer(clock=clock)
        out = tracer.outbound(0, _request())
        ctx = out.message.trace
        assert ctx is not None
        assert ctx.trace_id == "0.1"
        assert ctx.hop == 1 and ctx.parent == 0

        clock.now = 0.2
        tracer.delivered(1, out.message)
        # A grant carrying the request's hint joins the chain and, on
        # delivery at the origin, finalizes it.
        granted = tracer.outbound(1, _grant(out.message.trace))
        clock.now = 0.5
        tracer.delivered(0, granted.message)

        (chain,) = tracer.chains()
        assert chain.kind == "request"
        assert chain.hop_count == 2
        assert chain.granted_hop == 2
        assert chain.granted_at == 0.5
        assert tracer.total_hops() == 2

    def test_request_key_attaches_hintless_grant(self):
        # No hint copied (e.g. a replayed grant built from stored state):
        # the RequestId still routes it to the in-flight chain.
        tracer = MessageTracer(clock=FakeClock())
        tracer.outbound(0, _request())
        granted = tracer.outbound(1, _grant(None))
        assert granted.message.trace.trace_id == "0.1"
        (chain,) = tracer.chains()
        assert chain.hop_count == 2

    def test_delivery_scope_adopts_hintless_replies(self):
        clock = FakeClock()
        tracer = MessageTracer(clock=clock)
        out = tracer.outbound(0, _request())
        tracer.delivered(1, out.message)
        tracer.begin_delivery(1, out.message)
        try:
            # A message with no hint and no request identity, sent from
            # inside the handler, inherits the open scope.
            reply = tracer.outbound(1, Envelope(2, ReleaseMessage(
                lock_id="L", sender=1, new_mode=LockMode.NONE,
            )))
        finally:
            tracer.end_delivery(1)
        assert reply.message.trace.trace_id == "0.1"
        assert reply.message.trace.parent == 1

    def test_release_joins_last_granted_chain(self):
        clock = FakeClock()
        tracer = MessageTracer(clock=clock)
        out = tracer.outbound(0, _request())
        granted = tracer.outbound(1, _grant(out.message.trace))
        tracer.delivered(0, granted.message)
        release = tracer.outbound(0, Envelope(1, ReleaseMessage(
            lock_id="L", sender=0, new_mode=LockMode.NONE,
        )))
        assert release.message.trace.trace_id == "0.1"
        assert release.message.trace.parent == granted.message.trace.hop

    def test_heartbeats_are_untraced(self):
        tracer = MessageTracer(clock=FakeClock())

        @dataclasses.dataclass(frozen=True)
        class HeartbeatMessage:
            sender: int

        env = Envelope(1, HeartbeatMessage(sender=0))
        assert tracer.outbound(0, env) is env
        assert tracer.chains() == []

    def test_verbatim_resend_becomes_retransmit_hop(self):
        clock = FakeClock()
        tracer = MessageTracer(clock=clock)
        out = tracer.outbound(0, _request())
        clock.now = 1.0
        again = tracer.outbound(0, out)  # same stamped envelope re-sent
        assert again.message.trace == out.message.trace  # not restamped
        (chain,) = tracer.chains()
        assert [h.kind for h in chain.hops] == ["send", "retransmit"]
        retrans = chain.hops[1]
        assert retrans.parent == chain.hops[0].parent
        assert retrans.sent_at == 1.0

    def test_duplicate_delivery_counts_not_new_hop(self):
        clock = FakeClock()
        tracer = MessageTracer(clock=clock)
        out = tracer.outbound(0, _request())
        clock.now = 0.2
        tracer.delivered(1, out.message)
        clock.now = 0.4
        tracer.delivered(1, out.message)
        (chain,) = tracer.chains()
        assert chain.hop_count == 1
        assert chain.hops[0].recv_at == 0.2
        assert chain.hops[0].duplicates == 1

    def test_annotated_scope_sets_hop_kind(self):
        tracer = MessageTracer(clock=FakeClock())
        with tracer.annotated(0, "regen"):
            out = tracer.outbound(0, _request())
        (chain,) = tracer.chains()
        assert chain.hops[0].kind == "regen"
        assert out.message.trace.kind == "regen"

    def test_aux_chain_for_recovery_labels(self):
        from repro.faults.messages import TokenProbe

        tracer = MessageTracer(clock=FakeClock())
        tracer.outbound(0, Envelope(1, TokenProbe(lock_id="L", sender=0)))
        (chain,) = tracer.chains()
        assert chain.kind == "recovery"
        assert chain.trace_id.endswith("#aux")


class TestStampFrame:
    def test_channel_stamp_then_wire_crossing(self):
        clock = FakeClock()
        tracer = MessageTracer(clock=clock)

        @dataclasses.dataclass(frozen=True)
        class Frame:
            seq: int
            payload: object
            trace: object = None

        frame = Frame(seq=1, payload=_request().message)
        stamped = tracer.stamp_frame(0, 1, frame)
        assert stamped.trace is not None
        assert stamped.payload.trace is stamped.trace
        (chain,) = tracer.chains()
        assert chain.hops[0].sent_at is None  # stamped, not yet on wire

        clock.now = 0.3
        first = tracer.outbound(0, Envelope(1, stamped))
        assert first.message is stamped  # not restamped
        assert chain.hops[0].sent_at == 0.3
        assert chain.hop_count == 1

        clock.now = 0.9  # channel retransmission of the same frame
        tracer.outbound(0, Envelope(1, stamped))
        assert chain.hop_count == 2
        assert chain.hops[1].kind == "retransmit"


class TestCriticalPath:
    def _chain(self):
        # issue 0.0 -> hop1 sent 0.5 (queue 0.5) recv 0.8 (transit 0.3)
        # -> hop2 sent 1.0 (queue 0.2) recv 1.4 (transit 0.4), granted.
        return TraceChain(
            trace_id="0.1", origin=0, lock="L", issued_at=0.0,
            hops=[
                Hop(hop=1, parent=0, sender=0, dest=1, label="request",
                    sent_at=0.5, recv_at=0.8),
                Hop(hop=2, parent=1, sender=1, dest=0, label="grant",
                    sent_at=1.0, recv_at=1.4),
            ],
            granted_hop=2, granted_at=1.4,
        )

    def test_segments_sum_to_latency(self):
        result = critical_path(self._chain())
        segments = result["segments"]
        assert segments["transit"] == pytest.approx(0.7)
        assert segments["queue"] == pytest.approx(0.7)
        assert segments["freeze"] == 0.0
        assert segments["recovery"] == 0.0
        assert sum(segments.values()) == pytest.approx(result["total"])
        assert result["path"] == [1, 2]

    def test_freeze_splits_final_wait(self):
        result = critical_path(self._chain(), frozen_at=0.9)
        segments = result["segments"]
        # Final wait [0.8, 1.0] splits at frozen_at=0.9.
        assert segments["freeze"] == pytest.approx(0.1)
        assert segments["queue"] == pytest.approx(0.5 + 0.1)
        assert sum(segments.values()) == pytest.approx(result["total"])

    def test_retransmit_makes_wait_recovery(self):
        chain = self._chain()
        chain.hops.append(Hop(
            hop=3, parent=1, sender=0, dest=1, label="request",
            kind="retransmit", sent_at=0.9,
        ))
        result = critical_path(chain)
        segments = result["segments"]
        # The wait [0.8, 1.0] overlaps the retransmit send at 0.9.
        assert segments["recovery"] == pytest.approx(0.2)
        assert segments["queue"] == pytest.approx(0.5)
        assert sum(segments.values()) == pytest.approx(result["total"])

    def test_ungranted_chain_has_no_path(self):
        chain = self._chain()
        chain.granted_hop = chain.granted_at = None
        assert critical_path(chain) is None


class TestPayloadRoundTrip:
    def test_hop_round_trip(self):
        hop = Hop(hop=3, parent=1, sender=2, dest=0, label="grant",
                  kind="retransmit", sent_at=1.5, recv_at=2.0, duplicates=2)
        assert Hop.from_payload(hop.to_payload()) == hop

    def test_hop_payload_omits_defaults(self):
        payload = Hop(hop=1, parent=0, sender=0, dest=1,
                      label="request").to_payload()
        assert "kind" not in payload
        assert "sent" not in payload and "recv" not in payload
        assert "dup" not in payload

    def test_chain_round_trip(self):
        chain = TraceChain(
            trace_id="0.1", origin=0, lock="L", issued_at=0.25,
            hops=[Hop(hop=1, parent=0, sender=0, dest=1, label="request",
                      sent_at=0.25, recv_at=0.5)],
            granted_hop=1, granted_at=0.5,
        )
        assert TraceChain.from_payload(chain.to_payload()) == chain


class TestContextPlumbing:
    def test_trace_field_ignored_by_equality_and_repr(self):
        plain = _request().message
        traced = dataclasses.replace(plain, trace=TraceContext(
            trace_id="0.1", hop=1, parent=0, origin=0,
        ))
        assert plain == traced
        assert "trace" not in repr(traced)

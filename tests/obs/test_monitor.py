"""The Prometheus/JSON monitor endpoint and the ``repro monitor`` CLI."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.__main__ import main
from repro.core.modes import LockMode
from repro.obs.collect import RunObserver
from repro.obs.live import (
    AuditReport,
    ClusterView,
    LiveMonitor,
    LockSnapshot,
    NodeSnapshot,
    audit_view,
)
from repro.obs.monitor import (
    MonitorServer,
    render_health_table,
    render_prometheus,
)
from repro.runtime.cluster import ThreadedHierarchicalCluster

TIMEOUT = 30.0


def _synthetic():
    view = ClusterView(
        protocol="hierarchical",
        captured_at=1.5,
        nodes=(
            NodeSnapshot(
                node=0,
                locks=(
                    LockSnapshot("db", believes_token=True, parent=None),
                ),
            ),
            NodeSnapshot(node=1, alive=False),
        ),
    )
    return view, audit_view(view)


class TestPrometheusRendering:
    def test_view_metrics_present(self):
        view, report = _synthetic()
        text = render_prometheus(view, report)
        assert 'repro_cluster_nodes{state="alive"} 1' in text
        assert 'repro_cluster_nodes{state="crashed"} 1' in text
        assert 'repro_token_believers{lock="db"} 1' in text
        assert "repro_audit_ok 1" in text
        assert "repro_snapshot_timestamp_seconds 1.5" in text
        assert text.endswith("\n")

    def test_audit_failure_flips_gauge(self):
        view, _ = _synthetic()
        split = ClusterView(
            protocol=view.protocol,
            captured_at=view.captured_at,
            nodes=view.nodes
            + (
                NodeSnapshot(
                    node=2,
                    locks=(
                        LockSnapshot(
                            "db", believes_token=True, parent=None
                        ),
                    ),
                ),
            ),
        )
        report = audit_view(split)
        text = render_prometheus(split, report)
        assert "repro_audit_ok 0" in text
        assert 'repro_audit_findings{severity="violation"} 1' in text

    def test_observer_series_exported(self):
        observer = RunObserver()
        observer.message(0, 1, "request")
        observer.message(0, 1, "grant")
        view, report = _synthetic()
        text = render_prometheus(view, report, observer=observer)
        assert 'repro_messages_total{label="request"} 1' in text
        assert 'repro_messages_total{label="grant"} 1' in text

    def test_health_table_mentions_every_node(self):
        view, report = _synthetic()
        table = render_health_table(view, report)
        assert "protocol=hierarchical" in table
        assert "DOWN" in table  # the crashed node
        assert "HEALTHY" in table


@pytest.fixture(scope="module")
def served():
    """A threaded cluster behind a live MonitorServer, post-workload."""

    observer = RunObserver()
    with ThreadedHierarchicalCluster(3) as cluster:
        for lockspace in cluster.lockspaces.values():
            lockspace.obs = observer
        cluster.transport.obs = observer
        cluster.transport.tracer = observer.tracer

        def worker(node: int) -> None:
            client = cluster.client(node)
            for step in range(3):
                mode = LockMode.W if (node + step) % 2 else LockMode.R
                client.acquire("t", mode, timeout=TIMEOUT)
                client.release("t", mode)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        cluster.transport.drain()
        monitor = LiveMonitor(cluster.cluster_view, observer=observer)
        with MonitorServer(monitor, observer=observer) as server:
            yield server


class TestMonitorServer:
    def test_cluster_endpoint_serves_view_and_audit(self, served):
        with urllib.request.urlopen(
            f"{served.url}/cluster", timeout=10
        ) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith(
                "application/json"
            )
            payload = json.loads(resp.read().decode("utf-8"))
        view = ClusterView.from_payload(payload["view"])
        report = AuditReport.from_payload(payload["audit"])
        assert view.protocol == "hierarchical"
        assert len(view.nodes) == 3
        assert view.token_believers("t")
        assert report.ok, report.verdict()

    def test_metrics_endpoint_speaks_prometheus(self, served):
        with urllib.request.urlopen(
            f"{served.url}/metrics", timeout=10
        ) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = resp.read().decode("utf-8")
        assert "# TYPE repro_audit_ok gauge" in text
        assert "repro_audit_ok 1" in text
        assert "repro_messages_total" in text  # observer counters flow in

    def test_healthz_and_404(self, served):
        assert (
            urllib.request.urlopen(
                f"{served.url}/healthz", timeout=10
            ).status
            == 200
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{served.url}/nope", timeout=10)
        assert err.value.code == 404


class TestThreadedClusterAudit:
    def test_quiescent_threaded_cluster_audits_healthy(self):
        with ThreadedHierarchicalCluster(2) as cluster:
            client = cluster.client(1)
            client.acquire("x", LockMode.W, timeout=TIMEOUT)
            client.release("x", LockMode.W)
            cluster.transport.drain()
            report = audit_view(cluster.cluster_view(), quiescent=True)
        assert report.ok, report.verdict()


class TestMonitorCli:
    def test_self_test_passes(self, capsys):
        assert main(["monitor", "--self-test", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "self-test: PASS" in out
        assert "audit:" in out

    def test_url_mode_polls_once(self, served, capsys):
        assert main(["monitor", "--url", served.url, "--once"]) == 0
        out = capsys.readouterr().out
        assert "protocol=hierarchical" in out
        assert "HEALTHY" in out

    def test_unreachable_endpoint_is_a_diagnostic(self, capsys):
        rc = main([
            "monitor", "--url", "http://127.0.0.1:1", "--once",
        ])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")

    def test_url_required_without_self_test(self):
        with pytest.raises(SystemExit):
            main(["monitor"])

"""Replay-determinism acceptance tests.

For each of the three protocols, a seeded sim run and a threaded run are
recorded and replayed: every recorded checkpoint must be reproduced
bit-for-bit from the previous one (the paper's automata are deterministic
functions of their input sequence, and the recorder captures that
sequence completely — including serial draws).
"""

from __future__ import annotations

import os
import threading

from repro.core.automaton import ProtocolOptions
from repro.core.modes import LockMode
from repro.obs.flightrec import (
    NodeReplayer,
    attach_recorders,
    bisect_timeline,
    build_timeline,
    load_dump,
    write_dump,
)
from repro.sim.cluster import (
    SimHierarchicalCluster,
    SimNaimiCluster,
    SimRaymondCluster,
)
from repro.sim.engine import Timeout, run_processes


def _verify_dump(recorders, tmp_path, name):
    """Dump, reload, replay every node; return (dump, findings)."""

    path = os.path.join(tmp_path, name)
    write_dump(path, recorders)
    dump = load_dump(path)
    findings = []
    for node_id in dump.nodes():
        findings.extend(NodeReplayer.from_dump(dump, node_id).verify())
    return dump, findings


def _assert_meaningful(recorders):
    """The run must actually exercise checkpoint comparison."""

    assert sum(r.checkpoints_taken for r in recorders.values()) >= 2
    assert any(r.checkpoints_taken >= 2 for r in recorders.values())


class TestSimReplayDeterminism:
    def test_hierarchical(self, tmp_path):
        cluster = SimHierarchicalCluster(
            4, seed=21, options=ProtocolOptions(recovery=True)
        )
        recorders = attach_recorders(cluster, checkpoint_every=8)

        def body(node):
            client = cluster.client(node)
            for step in range(6):
                yield client.acquire("table", LockMode.IR)
                yield client.acquire(
                    f"row{(node + step) % 3}", LockMode.W
                )
                yield Timeout(cluster.sim, 0.002)
                client.release(f"row{(node + step) % 3}", LockMode.W)
                client.release("table", LockMode.IR)
                yield Timeout(cluster.sim, 0.001)

        run_processes(cluster.sim, [body(n) for n in range(4)])
        cluster.assert_quiescent_invariants()
        _assert_meaningful(recorders)
        _dump, findings = _verify_dump(recorders, tmp_path, "hier.flight")
        assert findings == []

    def test_naimi(self, tmp_path):
        cluster = SimNaimiCluster(4, seed=22)
        recorders = attach_recorders(cluster, checkpoint_every=4)
        assert recorders[0].protocol == "naimi"

        def body(node):
            client = cluster.client(node)
            for step in range(8):
                yield client.acquire(f"lock{(node + step) % 2}")
                yield Timeout(cluster.sim, 0.002)
                client.release(f"lock{(node + step) % 2}")
                yield Timeout(cluster.sim, 0.001)

        run_processes(cluster.sim, [body(n) for n in range(4)])
        _assert_meaningful(recorders)
        _dump, findings = _verify_dump(recorders, tmp_path, "naimi.flight")
        assert findings == []

    def test_raymond(self, tmp_path):
        cluster = SimRaymondCluster(4, seed=23)
        recorders = attach_recorders(cluster, checkpoint_every=4)
        assert recorders[0].protocol == "raymond"

        def body(node):
            client = cluster.client(node)
            for step in range(8):
                yield client.acquire(f"lock{(node + step) % 2}")
                yield Timeout(cluster.sim, 0.002)
                client.release(f"lock{(node + step) % 2}")
                yield Timeout(cluster.sim, 0.001)

        run_processes(cluster.sim, [body(n) for n in range(4)])
        _assert_meaningful(recorders)
        _dump, findings = _verify_dump(recorders, tmp_path, "ray.flight")
        assert findings == []


class TestThreadedReplayDeterminism:
    """Real threads + real queues: recorded history is still replayable,
    because recording happens at the automaton boundary (post-transport),
    where each node's input order is exactly what its automata saw."""

    def test_hierarchical_threaded(self, tmp_path):
        from repro.runtime.cluster import ThreadedHierarchicalCluster

        with ThreadedHierarchicalCluster(3) as cluster:
            recorders = attach_recorders(cluster, checkpoint_every=8)

            def worker(node):
                client = cluster.client(node)
                for step in range(5):
                    lock_id = f"lock-{(node + step) % 2}"
                    mode = (
                        LockMode.W if (node + step) % 3 == 0 else LockMode.R
                    )
                    client.acquire(lock_id, mode, timeout=30.0)
                    client.release(lock_id, mode)

            threads = [
                threading.Thread(target=worker, args=(n,))
                for n in range(cluster.num_nodes)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            cluster.transport.drain()
            _assert_meaningful(recorders)
            _dump, findings = _verify_dump(
                recorders, tmp_path, "hier-threaded.flight"
            )
            assert findings == []

    def _run_token_protocol_threaded(self, make_space, tmp_path, name):
        """Drive per-node lockspaces over a raw ThreadedTransport.

        There is no canned threaded cluster for the single-token
        baselines, so this harness wires the pieces directly: a per-node
        mutex serializes the dispatcher against the driving thread, the
        grant listener releases a waiting Event.
        """

        from repro.runtime.transport import ThreadedTransport

        nodes = 3
        transport = ThreadedTransport()
        guards = {n: threading.RLock() for n in range(nodes)}
        granted = {}

        def listener(lock_id, ctx):
            if isinstance(ctx, threading.Event):
                ctx.set()

        spaces = {}
        recorders = {}
        for node in range(nodes):
            space = make_space(node, listener)
            spaces[node] = space
            recorders[node] = _attach_one(space, node, name)

            def handler(message, node=node, space=space):
                with guards[node]:
                    return space.handle(message)

            transport.register(node, handler)
        transport.start()
        try:
            for step in range(8):
                node = step % nodes
                lock_id = f"lock{step % 2}"
                event = threading.Event()
                with guards[node]:
                    out = spaces[node].request(lock_id, ctx=event)
                if out:
                    transport.send(node, out)
                assert event.wait(timeout=30.0)
                with guards[node]:
                    out = spaces[node].release(lock_id)
                if out:
                    transport.send(node, out)
                transport.drain()
        finally:
            transport.stop()
        _assert_meaningful(recorders)
        _dump, findings = _verify_dump(
            recorders, tmp_path, f"{name}-threaded.flight"
        )
        assert findings == []

    def test_naimi_threaded(self, tmp_path):
        from repro.naimi.lockspace import NaimiLockSpace

        self._run_token_protocol_threaded(
            lambda node, listener: NaimiLockSpace(node, listener=listener),
            tmp_path,
            "naimi",
        )

    def test_raymond_threaded(self, tmp_path):
        from repro.raymond.lockspace import RaymondLockSpace
        from repro.raymond.topology import balanced_binary_tree

        topology = balanced_binary_tree(3)
        self._run_token_protocol_threaded(
            lambda node, listener: RaymondLockSpace(
                node, topology, listener=listener
            ),
            tmp_path,
            "raymond",
        )


def _attach_one(space, node, protocol):
    from repro.obs.flightrec import FlightRecorder

    recorder = FlightRecorder(node, protocol=protocol, checkpoint_every=4)
    recorder.attach(space)
    return recorder


class TestTamperDetection:
    def test_altered_event_reported_as_nondeterminism(self, tmp_path):
        cluster = SimHierarchicalCluster(
            3, seed=31, options=ProtocolOptions(recovery=True)
        )
        recorders = attach_recorders(cluster, checkpoint_every=4)

        def body(node):
            client = cluster.client(node)
            for step in range(6):
                yield client.acquire("L", LockMode.R)
                yield Timeout(cluster.sim, 0.002)
                client.release("L", LockMode.R)
                yield Timeout(cluster.sim, 0.001)

        run_processes(cluster.sim, [body(n) for n in range(3)])
        dump, findings = _verify_dump(recorders, tmp_path, "clean.flight")
        assert findings == []
        # Pick a node whose history spans at least two checkpoints and
        # flip one recorded request mode between them.
        for node_id in dump.nodes():
            events = dump.events[node_id]
            ckpt_seqs = [
                e["seq"] for e in events if e.get("kind") == "ckpt"
            ]
            if len(ckpt_seqs) < 2:
                continue
            target = next(
                (
                    e
                    for e in events
                    if e.get("kind") == "op"
                    and e.get("op") == "request"
                    and ckpt_seqs[0] < e["seq"] < ckpt_seqs[-1]
                ),
                None,
            )
            if target is None:
                continue
            target["args"] = dict(target["args"], mode="W")
            tampered = NodeReplayer.from_dump(dump, node_id).verify()
            assert any(
                f["kind"] in ("checkpoint-mismatch", "serial-drift")
                for f in tampered
            )
            return
        raise AssertionError("no tamperable event found in the dump")


class TestBisect:
    def test_bisect_names_first_bad_event(self, tmp_path):
        cluster = SimHierarchicalCluster(
            4, seed=41, options=ProtocolOptions(recovery=True)
        )
        recorders = attach_recorders(cluster, checkpoint_every=8)

        def body(node):
            client = cluster.client(node)
            for step in range(5):
                yield client.acquire("table", LockMode.IR)
                yield Timeout(cluster.sim, 0.002)
                client.release("table", LockMode.IR)
                yield Timeout(cluster.sim, 0.001)

        run_processes(cluster.sim, [body(n) for n in range(4)])
        path = os.path.join(tmp_path, "bisect.flight")
        write_dump(path, recorders)
        dump = load_dump(path)
        assert not bisect_timeline(dump, "token-split", lock="table")[
            "fires"
        ]
        # Forge a second token: a non-holder regenerates mid-history.
        victim = next(
            n
            for n in dump.nodes()
            if not cluster.lockspaces[n].automaton("table").has_token
        )
        events = dump.events[victim]
        last = max(e["seq"] for e in events)
        latest_t = max(
            float(e.get("t", 0.0))
            for node_events in dump.events.values()
            for e in node_events
        )
        events.append(
            {
                "seq": last + 1,
                "t": latest_t + 1.0,
                "kind": "op",
                "lock": "table",
                "op": "regenerate_token",
                "args": {"epoch": 99},
                "serials": [1 << 30],
            }
        )
        verdict = bisect_timeline(dump, "token-split", lock="table")
        assert verdict["fires"]
        assert verdict["node"] == victim
        assert verdict["seq"] == last + 1
        assert verdict["index"] == len(build_timeline(dump)) - 1

"""Trace-context round trips through the real transports.

Three guarantees the tracing layer makes beyond the simulated network:

* the context survives the TCP transport's pickle codec verbatim;
* the faults session channel stamps frames *before* buffering them, so
  a delivered payload carries the context and a retransmission is
  recognized as the same hop (annotated, not re-minted);
* a sim run and a threaded run of the same sequential workload produce
  identical causal chain shapes — same hops, same parents, same
  endpoints — even though their clocks are unrelated.
"""

from __future__ import annotations

import pickle
from typing import Callable, List, Tuple

import pytest

from repro.core.messages import (
    Envelope,
    RequestMessage,
    fresh_request_id,
)
from repro.core.modes import LockMode
from repro.faults.channel import ReliableChannel
from repro.faults.messages import SessionMessage
from repro.obs.collect import RunObserver
from repro.obs.tracing import MessageTracer
from repro.runtime.cluster import ThreadedHierarchicalCluster
from repro.runtime.transport import ThreadedTransport
from repro.sim.cluster import SimHierarchicalCluster
from repro.sim.engine import Simulator, Timeout, run_processes
from tests.faults.test_channel import ManualScheduler

TIMEOUT = 20.0


def _payload(n: int = 1, node: int = 0) -> RequestMessage:
    return RequestMessage(
        lock_id="lock",
        sender=node,
        origin=node,
        mode=LockMode.R,
        request_id=fresh_request_id(n, node),
    )


class TestPickleCodec:
    def test_stamped_message_survives_tcp_wire_format(self):
        # The TCP transport frames `pickle.dumps((sender, message))`; the
        # context is a plain field on the message dataclass, so it rides
        # the codec with no special handling.
        tracer = MessageTracer()
        out = tracer.outbound(0, Envelope(1, _payload()))
        ctx = out.message.trace
        assert ctx is not None
        blob = pickle.dumps((0, out.message))
        sender, decoded = pickle.loads(blob)
        assert sender == 0
        assert decoded == out.message
        assert decoded.trace == ctx

    def test_stamped_session_frame_survives_pickle(self):
        tracer = MessageTracer()
        frame = SessionMessage(
            lock_id="lock", sender=0, seq=1, payload=_payload(), boot=0
        )
        stamped = tracer.stamp_frame(0, 1, frame)
        decoded = pickle.loads(pickle.dumps(stamped))
        assert decoded.trace == stamped.trace
        assert decoded.payload.trace == stamped.trace


class _TracedPair:
    """Two reliable channels over a lossy fabric that runs the tracer at
    the same points the real transports do (outbound at the wire,
    delivered at the far end)."""

    def __init__(self) -> None:
        self.scheduler = ManualScheduler()
        self.tracer = MessageTracer(clock=self.scheduler.now)
        self.delivered: List[Tuple[int, object]] = []
        self.drop_next = 0

        def fabric_for(src: int) -> Callable[[int, object], None]:
            def send(dest: int, frame) -> None:
                self.tracer.outbound(src, Envelope(dest, frame))
                if self.drop_next > 0 and isinstance(frame, SessionMessage):
                    self.drop_next -= 1
                    return
                target = self.b if dest == 1 else self.a
                if isinstance(frame, SessionMessage):
                    self.tracer.delivered(dest, frame)
                target.handle(frame)

            return send

        def receiver(sender: int, payload) -> None:
            self.delivered.append((sender, payload))

        self.a = ReliableChannel(
            node_id=0, scheduler=self.scheduler, send=fabric_for(0),
            deliver=receiver, retry_base=0.1, retry_cap=0.4,
        )
        self.b = ReliableChannel(
            node_id=1, scheduler=self.scheduler, send=fabric_for(1),
            deliver=receiver, retry_base=0.1, retry_cap=0.4,
        )
        self.a.tracer = self.tracer
        self.b.tracer = self.tracer


class TestSessionChannel:
    def test_delivered_payload_carries_context(self):
        pair = _TracedPair()
        pair.a.send(1, _payload())
        ((sender, payload),) = pair.delivered
        assert sender == 0
        ctx = payload.trace
        assert ctx is not None
        (chain,) = pair.tracer.chains()
        assert chain.trace_id == ctx.trace_id
        (hop,) = chain.hops
        assert (hop.sender, hop.dest, hop.label) == (0, 1, "request")
        assert hop.sent_at is not None and hop.recv_at is not None

    def test_retransmission_is_annotated_not_reminted(self):
        pair = _TracedPair()
        pair.drop_next = 1  # lose the first wire copy
        pair.a.send(1, _payload())
        assert pair.delivered == []
        pair.scheduler.advance(0.15)  # retry timer fires
        ((_, payload),) = pair.delivered
        (chain,) = pair.tracer.chains()
        assert [h.kind for h in chain.hops] == ["send", "retransmit"]
        # The delivered payload still carries the *original* hop's id.
        assert payload.trace.hop == chain.hops[0].hop
        assert chain.hops[0].recv_at is not None

    def test_acks_are_untraced(self):
        pair = _TracedPair()
        pair.a.send(1, _payload())
        pair.scheduler.advance(1.0)  # let acks flow both ways
        assert all(c.trace_id for c in pair.tracer.chains())
        labels = {
            h.label for c in pair.tracer.chains() for h in c.hops
        }
        assert "session-ack" not in labels


def _chain_shapes(tracer) -> List[Tuple]:
    """Clock-free canonical form of every chain, in mint order.

    The trace id itself is excluded: hierarchical ids embed the request
    serial, which is derived from the Lamport clock and therefore ticks
    differently on different transports.  Everything structural — hop
    topology, endpoints, labels, kinds, the granted hop — must match.
    """

    shapes = []
    for chain in tracer.chains():
        shapes.append((
            chain.origin,
            chain.lock,
            chain.kind,
            chain.granted_hop,
            tuple(
                (h.hop, h.parent, h.sender, h.dest, h.label, h.kind)
                for h in chain.hops
            ),
        ))
    return shapes


#: (node, lock) acquire/release sequence, one operation fully settled
#: before the next starts — the message pattern is then a function of
#: protocol state alone, not of transport timing.
SEQUENCE = [(0, "t"), (1, "t"), (2, "t"), (1, "u"), (0, "t"), (2, "u")]


def _sim_shapes() -> List[Tuple]:
    sim = Simulator()
    obs = RunObserver(clock=lambda: sim.now)
    cluster = SimHierarchicalCluster(3, sim=sim, obs=obs)

    def body():
        for node, lock in SEQUENCE:
            client = cluster.client(node)
            yield client.acquire(lock, LockMode.W)
            client.release(lock, LockMode.W)
            yield Timeout(sim, 10.0)  # drain in-flight releases

    run_processes(sim, [body()])
    return _chain_shapes(obs.tracer)


def _threaded_shapes() -> List[Tuple]:
    obs = RunObserver()
    transport = ThreadedTransport(obs=obs)
    with ThreadedHierarchicalCluster(3, transport=transport) as cluster:
        for node, lock in SEQUENCE:
            client = cluster.client(node)
            client.acquire(lock, LockMode.W, timeout=TIMEOUT)
            client.release(lock, LockMode.W)
            transport.drain()
    return _chain_shapes(obs.tracer)


class TestSimVsThreaded:
    def test_same_workload_same_chain_shapes(self):
        sim_shapes = _sim_shapes()
        threaded_shapes = _threaded_shapes()
        assert sim_shapes, "sim run produced no chains"
        assert sim_shapes == threaded_shapes

"""Acceptance tests for causal tracing (docs/TRACING.md §1 invariants).

Three end-to-end guarantees on a seeded Figure-5-style quick run:

1. tracing adds no messages — total hops across all chains equals the
   metrics layer's message count, so mean chain length *is* Figure 5's
   messages-per-request;
2. for every granted request, the critical-path segments sum exactly to
   the span-measured issue→grant latency;
3. a traced run is bit-identical to an untraced one (message count and
   final simulated clock), for all three protocols.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import RUNNERS, run_hierarchical
from repro.obs.sink import FROZEN
from repro.obs.tracing import critical_path
from repro.workload.spec import WorkloadSpec

SPEC = WorkloadSpec(ops_per_node=15, seed=2003)
NODES = 8


@pytest.fixture(scope="module")
def fig5_run():
    return run_hierarchical(NODES, SPEC, observe=True)


class TestNoExtraMessages:
    def test_total_hops_equal_metrics_total(self, fig5_run):
        tracer = fig5_run.observer.tracer
        assert tracer.total_hops() == fig5_run.metrics.total_messages

    def test_mean_hops_matches_fig5_overhead(self, fig5_run):
        # The ISSUE acceptance bound is "within 1"; by construction the
        # two are the same events counted two ways, so assert exactly.
        tracer = fig5_run.observer.tracer
        requests = fig5_run.metrics.total_requests
        mean_hops = tracer.total_hops() / requests
        assert mean_hops == pytest.approx(fig5_run.message_overhead())
        assert abs(mean_hops - fig5_run.message_overhead()) < 1.0

    def test_every_chain_is_request_kind(self, fig5_run):
        # Fault-free runs have no recovery/aux chains.
        kinds = {c.kind for c in fig5_run.observer.tracer.chains()}
        assert kinds == {"request"}


class TestCriticalPathAccounting:
    def test_segments_sum_to_span_latency(self, fig5_run):
        spans = {
            span.key: span
            for span in fig5_run.observer.spans
            if span.key is not None
        }
        granted = [
            c for c in fig5_run.observer.tracer.chains()
            if c.granted_hop is not None
        ]
        assert granted, "no granted chains in the seeded run"
        checked = 0
        for chain in granted:
            span = spans.get(chain.span_key)
            if span is None or span.latency is None:
                continue
            frozen_at = span.time_of(FROZEN)
            result = critical_path(chain, frozen_at=frozen_at)
            total = sum(result["segments"].values())
            assert total == pytest.approx(span.latency, abs=1e-9), (
                f"chain {chain.trace_id}: segments {result['segments']} "
                f"sum to {total}, span latency {span.latency}"
            )
            checked += 1
        # Every granted chain must have joined a span: same key space.
        assert checked == len(granted)

    def test_granted_chains_cover_remote_grants(self, fig5_run):
        # Requests that crossed the wire and were granted show up as
        # finalized chains (locally satisfied requests send nothing and
        # have no chain — that is the design, not a gap).
        granted = [
            c for c in fig5_run.observer.tracer.chains()
            if c.granted_hop is not None
        ]
        assert len(granted) > NODES  # plenty of remote traffic at n=8


class TestZeroPerturbation:
    @pytest.mark.parametrize("protocol", sorted(RUNNERS))
    def test_traced_run_bit_identical(self, protocol):
        spec = WorkloadSpec(ops_per_node=10, seed=7)
        plain = RUNNERS[protocol](NODES, spec)
        traced = RUNNERS[protocol](NODES, spec, observe=True)
        assert traced.metrics.total_messages == \
            plain.metrics.total_messages
        assert traced.sim_time == plain.sim_time
        assert traced.observer.tracer.total_hops() == \
            plain.metrics.total_messages

"""Tests for the windowed time-series primitives."""

from __future__ import annotations

import pytest

from repro.obs.series import (
    GaugeSeries,
    Histogram,
    WindowedCounter,
    series_from_payload,
)


class TestWindowedCounter:
    def test_buckets_by_window(self):
        counter = WindowedCounter(window=1.0)
        counter.add(0.2, "request")
        counter.add(0.9, "request")
        counter.add(1.1, "grant")
        rows = counter.items()
        assert rows == [(0.0, {"request": 2}), (1.0, {"grant": 1})]

    def test_totals(self):
        counter = WindowedCounter()
        counter.add(0.0, "a", 2)
        counter.add(5.0, "a", 3)
        counter.add(5.0, "b")
        assert counter.total() == 6
        assert counter.total("a") == 5
        assert counter.totals() == {"a": 5, "b": 1}
        assert counter.labels() == ["a", "b"]

    def test_empty_is_falsy(self):
        assert not WindowedCounter()
        assert WindowedCounter(window=2.0).totals() == {}

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedCounter(window=0.0)

    def test_payload_round_trip(self):
        counter = WindowedCounter(window=0.5)
        counter.add(0.1, "x", 4)
        counter.add(2.0, "y")
        rebuilt = series_from_payload(counter.to_payload())
        assert isinstance(rebuilt, WindowedCounter)
        assert rebuilt.window == 0.5
        assert rebuilt.items() == counter.items()

    def test_ring_cap_bounds_buckets_but_keeps_totals_exact(self):
        counter = WindowedCounter(window=1.0, max_buckets=3)
        for tick in range(10):
            counter.add(float(tick), "msg")
        assert len(counter.items()) <= 3
        assert counter.evicted_buckets == 7
        # Whole-run aggregates survive eviction untouched.
        assert counter.total() == 10
        assert counter.totals() == {"msg": 10}
        assert counter.labels() == ["msg"]
        assert counter  # evicted-only state still truthy

    def test_ring_cap_payload_round_trip(self):
        counter = WindowedCounter(window=1.0, max_buckets=2)
        for tick in range(5):
            counter.add(float(tick), "x")
        rebuilt = series_from_payload(counter.to_payload())
        assert rebuilt.total() == counter.total() == 5
        assert rebuilt.items() == counter.items()

    def test_ring_cap_validated(self):
        with pytest.raises(ValueError):
            WindowedCounter(max_buckets=0)


class TestGaugeSeries:
    def test_timeline_mean_and_max(self):
        gauge = GaugeSeries(window=1.0)
        gauge.sample(0.1, 1.0)
        gauge.sample(0.5, 3.0)
        gauge.sample(1.5, 2.0)
        assert gauge.timeline() == [(0.0, 2.0, 3.0), (1.0, 2.0, 2.0)]
        assert gauge.peak() == 3.0

    def test_empty_peak_is_zero(self):
        assert GaugeSeries().peak() == 0.0

    def test_payload_round_trip(self):
        gauge = GaugeSeries(window=2.0)
        gauge.sample(0.0, 5.0)
        gauge.sample(3.0, 1.0)
        rebuilt = series_from_payload(gauge.to_payload())
        assert isinstance(rebuilt, GaugeSeries)
        assert rebuilt.timeline() == gauge.timeline()

    def test_ring_cap_bounds_timeline_but_keeps_peak_exact(self):
        gauge = GaugeSeries(window=1.0, max_buckets=2)
        gauge.sample(0.0, 9.0)  # the whole-run peak, in a bucket that
        for tick in range(1, 8):  # will be evicted
            gauge.sample(float(tick), 1.0)
        assert len(gauge.timeline()) <= 2
        assert gauge.evicted_buckets == 6
        assert gauge.peak() == 9.0
        assert gauge


class TestHistogram:
    def test_mean_and_max(self):
        histogram = Histogram()
        for value in (0.001, 0.002, 0.003):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(0.002)
        assert histogram.maximum == pytest.approx(0.003)

    def test_quantile_brackets_sample(self):
        histogram = Histogram(resolution=1e-6)
        histogram.record(0.010)
        # log2 buckets: the quantile returns the holding bucket's upper
        # edge, which must bracket the sample within a factor of two.
        edge = histogram.quantile(0.5)
        assert 0.010 <= edge <= 0.020 * 2

    def test_quantile_validates_fraction(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_empty_quantile_is_zero(self):
        assert Histogram().quantile(0.95) == 0.0

    def test_negative_samples_clamped(self):
        histogram = Histogram()
        histogram.record(-1.0)
        assert histogram.count == 1
        assert histogram.maximum == 0.0

    def test_payload_round_trip(self):
        histogram = Histogram(resolution=1e-3)
        for value in (0.004, 0.1, 7.0):
            histogram.record(value)
        rebuilt = series_from_payload(histogram.to_payload())
        assert isinstance(rebuilt, Histogram)
        assert rebuilt.count == 3
        assert rebuilt.mean == pytest.approx(histogram.mean)
        assert rebuilt.quantile(0.95) == histogram.quantile(0.95)


def test_unknown_series_type_rejected():
    with pytest.raises(ValueError):
        series_from_payload({"type": "sparkline"})

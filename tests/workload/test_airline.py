"""Tests for the airline clients under all three protocols."""

from __future__ import annotations

import pytest

from repro.core.lockspace import hashed_token_home
from repro.core.modes import LockMode
from repro.metrics import MetricsCollector
from repro.sim.cluster import SimHierarchicalCluster, SimNaimiCluster
from repro.sim.engine import Process, Simulator
from repro.sim.rng import derive_rng
from repro.verification.invariants import (
    CompatibilityMonitor,
    MutualExclusionMonitor,
)
from repro.workload.airline import (
    GLOBAL_LOCK_ID,
    hierarchical_client,
    naimi_pure_client,
    naimi_same_work_client,
)
from repro.workload.generator import entry_lock_id, table_lock_id
from repro.workload.spec import WorkloadSpec


def _run(sim, bodies):
    processes = [Process(sim, body) for body in bodies]
    sim.run(max_events=5_000_000)
    assert all(p.done.triggered for p in processes)


class TestLockIdHelpers:
    def test_table_lock_id(self):
        assert table_lock_id() == "db/tickets"
        assert table_lock_id("db/x") == "db/x"

    def test_entry_lock_id(self):
        assert entry_lock_id(7) == "db/tickets/7"
        assert entry_lock_id(0, "db/x") == "db/x/0"


class TestHierarchicalClient:
    def _run_cluster(self, num_nodes, spec):
        sim = Simulator()
        metrics = MetricsCollector()
        monitor = CompatibilityMonitor()
        cluster = SimHierarchicalCluster(
            num_nodes, sim=sim,
            token_home=hashed_token_home(num_nodes),
            monitor=monitor, metrics=metrics,
        )
        bodies = [
            hierarchical_client(
                sim, cluster.client(n), spec, spec.entry_count(num_nodes),
                derive_rng(spec.seed, "t", n), metrics=metrics,
            )
            for n in range(num_nodes)
        ]
        _run(sim, bodies)
        return metrics, monitor, cluster

    def test_all_operations_complete(self):
        spec = WorkloadSpec(ops_per_node=12, seed=5)
        metrics, monitor, cluster = self._run_cluster(4, spec)
        assert metrics.operations == 4 * 12
        monitor.assert_all_released()
        cluster.assert_quiescent_invariants()

    def test_entry_ops_issue_two_lock_requests(self):
        """An IR-only mix: every op = table intent + entry leaf."""

        spec = WorkloadSpec(
            ops_per_node=10, seed=6, mode_mix=((LockMode.IR, 1.0),)
        )
        metrics, _monitor, _cluster = self._run_cluster(3, spec)
        assert metrics.total_requests == 2 * metrics.operations
        kinds = {record.kind for record in metrics.requests}
        assert kinds == {"IR", "R"}

    def test_table_ops_issue_one_lock_request(self):
        spec = WorkloadSpec(
            ops_per_node=10, seed=7, mode_mix=((LockMode.R, 1.0),)
        )
        metrics, _monitor, _cluster = self._run_cluster(3, spec)
        assert metrics.total_requests == metrics.operations
        assert {r.kind for r in metrics.requests} == {"R"}

    def test_upgrade_ops_record_u_and_upgrade(self):
        spec = WorkloadSpec(
            ops_per_node=4, seed=8, mode_mix=((LockMode.U, 1.0),)
        )
        metrics, monitor, _cluster = self._run_cluster(3, spec)
        kinds = [r.kind for r in metrics.requests]
        assert kinds.count("U") == metrics.operations
        assert kinds.count("U->W") == metrics.operations
        monitor.assert_all_released()

    def test_latencies_are_nonnegative_and_ordered(self):
        spec = WorkloadSpec(ops_per_node=8, seed=9)
        metrics, _monitor, _cluster = self._run_cluster(4, spec)
        for record in metrics.requests:
            assert record.granted_at >= record.issued_at


class TestNaimiClients:
    def _run_naimi(self, client_factory, num_nodes, spec):
        sim = Simulator()
        metrics = MetricsCollector()
        monitor = MutualExclusionMonitor()
        cluster = SimNaimiCluster(
            num_nodes, sim=sim,
            token_home=hashed_token_home(num_nodes),
            monitor=monitor, metrics=metrics,
        )
        bodies = [
            client_factory(
                sim, cluster.client(n), spec, spec.entry_count(num_nodes),
                derive_rng(spec.seed, "n", n), metrics=metrics,
            )
            for n in range(num_nodes)
        ]
        _run(sim, bodies)
        return metrics, monitor, cluster

    def test_pure_uses_single_global_lock(self):
        spec = WorkloadSpec(ops_per_node=6, seed=10)
        metrics, monitor, cluster = self._run_naimi(
            naimi_pure_client, 4, spec
        )
        assert metrics.operations == 24
        assert {r.kind for r in metrics.requests} == {"pure"}
        locks = {
            a.lock_id
            for space in cluster.lockspaces.values()
            for a in space.automata()
        }
        assert locks == {GLOBAL_LOCK_ID}
        monitor.assert_all_released()

    def test_same_work_table_ops_touch_every_entry(self):
        spec = WorkloadSpec(
            ops_per_node=2, seed=11, mode_mix=((LockMode.W, 1.0),)
        )
        metrics, monitor, cluster = self._run_naimi(
            naimi_same_work_client, 3, spec
        )
        # Every op is a whole-table op: locks for all 3 entries exist.
        locks = {
            a.lock_id
            for space in cluster.lockspaces.values()
            for a in space.automata()
        }
        assert locks == {entry_lock_id(i) for i in range(3)}
        assert {r.kind for r in metrics.requests} == {"table"}
        monitor.assert_all_released()

    def test_same_work_entry_ops_touch_one_entry(self):
        spec = WorkloadSpec(
            ops_per_node=5, seed=12, mode_mix=((LockMode.IW, 1.0),),
            locality=1.0,
        )
        metrics, monitor, _cluster = self._run_naimi(
            naimi_same_work_client, 3, spec
        )
        assert {r.kind for r in metrics.requests} == {"entry"}
        monitor.assert_all_released()

    def test_same_work_costs_more_messages_than_pure_per_request(self):
        spec = WorkloadSpec(ops_per_node=10, seed=13)
        pure_metrics, _m1, _c1 = self._run_naimi(naimi_pure_client, 6, spec)
        same_metrics, _m2, _c2 = self._run_naimi(
            naimi_same_work_client, 6, spec
        )
        assert (
            same_metrics.message_overhead()
            > pure_metrics.message_overhead() * 0.5
        )

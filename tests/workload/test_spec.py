"""Tests for the workload specification and mode mix."""

from __future__ import annotations

import pytest

from repro.core.modes import LockMode
from repro.errors import ConfigurationError
from repro.sim.rng import derive_rng
from repro.workload.generator import draw_operation
from repro.workload.spec import PAPER_MODE_MIX, WorkloadSpec


class TestWorkloadSpecValidation:
    def test_defaults_are_the_paper_parameters(self):
        spec = WorkloadSpec()
        assert spec.cs_mean == pytest.approx(0.015)
        assert spec.idle_mean == pytest.approx(0.150)
        assert spec.latency_mean == pytest.approx(0.150)
        assert spec.mode_mix == PAPER_MODE_MIX

    def test_paper_mode_mix_probabilities(self):
        mix = dict(PAPER_MODE_MIX)
        assert mix[LockMode.IR] == pytest.approx(0.80)
        assert mix[LockMode.R] == pytest.approx(0.10)
        assert mix[LockMode.U] == pytest.approx(0.04)
        assert mix[LockMode.IW] == pytest.approx(0.05)
        assert mix[LockMode.W] == pytest.approx(0.01)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_entries_default_to_node_count(self):
        assert WorkloadSpec().entry_count(17) == 17
        assert WorkloadSpec(entries=5).entry_count(17) == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ops_per_node": -1},
            {"cs_mean": -0.1},
            {"latency_mean": 0.0},
            {"locality": 1.5},
            {"locality": -0.1},
            {"entries": 0},
            {"mode_mix": ((LockMode.R, 0.0),)},
            {"mode_mix": ((LockMode.NONE, 1.0),)},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)


class TestOperationDraws:
    def test_mode_frequencies_match_mix(self):
        spec = WorkloadSpec()
        rng = derive_rng(1, "mix")
        counts = {}
        for _ in range(20_000):
            op = draw_operation(rng, spec, node_id=0, num_entries=10)
            counts[op.mode] = counts.get(op.mode, 0) + 1
        assert counts[LockMode.IR] / 20_000 == pytest.approx(0.80, abs=0.02)
        assert counts[LockMode.R] / 20_000 == pytest.approx(0.10, abs=0.02)
        assert counts[LockMode.IW] / 20_000 == pytest.approx(0.05, abs=0.01)

    def test_intent_draws_have_entries(self):
        spec = WorkloadSpec()
        rng = derive_rng(2, "ops")
        for _ in range(500):
            op = draw_operation(rng, spec, node_id=3, num_entries=8)
            if op.mode in (LockMode.IR, LockMode.IW):
                assert op.is_entry_op
                assert 0 <= op.entry < 8
            else:
                assert not op.is_entry_op
                assert op.entry is None

    def test_full_locality_pins_home_entry(self):
        spec = WorkloadSpec(locality=1.0)
        rng = derive_rng(3, "local")
        for _ in range(200):
            op = draw_operation(rng, spec, node_id=5, num_entries=8)
            if op.is_entry_op:
                assert op.entry == 5

    def test_home_entry_wraps_modulo_entries(self):
        spec = WorkloadSpec(locality=1.0)
        rng = derive_rng(4, "wrap")
        for _ in range(100):
            op = draw_operation(rng, spec, node_id=11, num_entries=4)
            if op.is_entry_op:
                assert op.entry == 11 % 4

    def test_zero_locality_spreads_entries(self):
        spec = WorkloadSpec(locality=0.0)
        rng = derive_rng(5, "spread")
        entries = set()
        for _ in range(500):
            op = draw_operation(rng, spec, node_id=0, num_entries=16)
            if op.is_entry_op:
                entries.add(op.entry)
        assert len(entries) > 8

"""Unit tests for :mod:`repro.membership`: views and wire messages."""

from __future__ import annotations

import pytest

from repro.core.messages import MESSAGE_TYPE_LABELS
from repro.core.modes import LockMode
from repro.membership import (
    MEMBERSHIP_TYPES,
    ChildMigrate,
    HandoffMessage,
    JoinRequest,
    MembershipView,
    StateTransfer,
    ViewAck,
    ViewInstall,
    ViewProposal,
)


class TestMembershipView:
    def test_initial_view_is_epoch_zero_and_sorted(self):
        view = MembershipView.initial([3, 1, 2, 1])
        assert view.epoch == 0
        assert view.members == (1, 2, 3)

    def test_members_normalized_even_when_passed_unsorted(self):
        view = MembershipView(epoch=4, members=(5, 1, 3, 3))
        assert view.members == (1, 3, 5)

    @pytest.mark.parametrize(
        "size,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (6, 4)]
    )
    def test_quorum_is_a_strict_majority(self, size, expected):
        view = MembershipView.initial(range(size))
        assert view.quorum() == expected

    def test_with_joined_bumps_epoch_and_admits(self):
        view = MembershipView.initial([0, 1, 2])
        nxt = view.with_joined(7)
        assert nxt.epoch == 1
        assert nxt.members == (0, 1, 2, 7)
        assert nxt.contains(7) and not view.contains(7)

    def test_with_removed_bumps_epoch_and_excises(self):
        view = MembershipView.initial([0, 1, 2])
        nxt = view.with_removed(1)
        assert nxt.epoch == 1
        assert nxt.members == (0, 2)
        assert not nxt.contains(1)

    def test_join_then_remove_round_trip(self):
        view = MembershipView.initial([0, 1])
        grown = view.with_joined(2).with_joined(3)
        shrunk = grown.with_removed(0)
        assert shrunk.epoch == 3
        assert shrunk.members == (1, 2, 3)

    def test_payload_round_trip(self):
        view = MembershipView(epoch=9, members=(0, 2, 4))
        assert MembershipView.from_payload(view.to_payload()) == view

    def test_payload_defaults(self):
        view = MembershipView.from_payload({})
        assert view.epoch == 0
        assert view.members == ()


class TestMembershipMessages:
    def test_every_membership_type_has_a_trace_label(self):
        for message_type in MEMBERSHIP_TYPES:
            assert message_type in MESSAGE_TYPE_LABELS

    def test_view_change_messages_carry_the_delta(self):
        proposal = ViewProposal(
            lock_id="",
            sender=0,
            epoch=2,
            members=(0, 1, 2, 5),
            joined=(5,),
        )
        assert proposal.joined == (5,) and proposal.removed == ()
        assert not proposal.forced
        install = ViewInstall(
            lock_id="",
            sender=0,
            epoch=3,
            members=(0, 1, 2),
            removed=(5,),
            forced=True,
        )
        assert install.forced and install.removed == (5,)
        ack = ViewAck(lock_id="", sender=1, epoch=2)
        assert ack.epoch == 2

    def test_join_and_transfer_messages(self):
        join = JoinRequest(lock_id="", sender=5)
        assert join.sender == 5
        transfer = StateTransfer(
            lock_id="",
            sender=0,
            view_epoch=2,
            members=(0, 1, 5),
            hints=(("db", 1, 3),),
            floors=(("db", 17),),
        )
        assert transfer.hints[0] == ("db", 1, 3)
        assert transfer.floors[0] == ("db", 17)

    def test_splice_messages_name_their_lock(self):
        handoff = HandoffMessage(lock_id="db", sender=1, epoch=4)
        assert handoff.lock_id == "db" and handoff.epoch == 4
        migrate = ChildMigrate(
            lock_id="db", sender=1, child=3, mode=LockMode.IW, seq=12
        )
        assert migrate.child == 3 and migrate.seq == 12

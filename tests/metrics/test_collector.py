"""Tests for the metrics collector (the figures' y-axes)."""

from __future__ import annotations

import pytest

from repro.metrics import MetricsCollector
from repro.metrics.collector import RequestRecord
from repro.obs.sink import ENQUEUED, GRANTED, ISSUED
from repro.obs.spans import RequestSpan


class TestMessageCounting:
    def test_counts_by_label(self):
        collector = MetricsCollector()
        for label in ("request", "grant", "request", "release"):
            collector.count_message(label)
        assert collector.message_counts["request"] == 2
        assert collector.total_messages == 4

    def test_overhead_divides_by_requests(self):
        collector = MetricsCollector()
        for _ in range(6):
            collector.count_message("request")
        collector.record_request(0, "R", 0.0, 1.0)
        collector.record_request(1, "R", 0.0, 2.0)
        assert collector.message_overhead() == pytest.approx(3.0)

    def test_overhead_zero_without_requests(self):
        collector = MetricsCollector()
        collector.count_message("request")
        assert collector.message_overhead() == 0.0

    def test_breakdown_by_type(self):
        collector = MetricsCollector()
        collector.count_message("grant")
        collector.count_message("grant")
        collector.count_message("token")
        for _ in range(4):
            collector.record_request(0, "R", 0.0, 0.1)
        breakdown = collector.message_overhead_by_type()
        assert breakdown["grant"] == pytest.approx(0.5)
        assert breakdown["token"] == pytest.approx(0.25)


class TestLatency:
    def test_record_latency(self):
        collector = MetricsCollector()
        collector.record_request(3, "W", issued_at=1.0, granted_at=2.5)
        record = collector.requests[0]
        assert record.latency == pytest.approx(1.5)
        assert record.node == 3
        assert record.kind == "W"

    def test_latency_factor_normalizes(self):
        collector = MetricsCollector()
        collector.record_request(0, "R", 0.0, 0.30)
        collector.record_request(0, "R", 0.0, 0.60)
        assert collector.latency_factor(0.150) == pytest.approx(3.0)

    def test_latency_factor_empty_is_zero(self):
        assert MetricsCollector().latency_factor(0.150) == 0.0

    def test_latency_factor_rejects_zero_baseline(self):
        # A zero baseline used to silently produce a flat-zero curve;
        # now it flags the misconfiguration loudly.
        collector = MetricsCollector()
        collector.record_request(0, "R", 0.0, 0.30)
        with pytest.raises(ValueError, match="base_latency"):
            collector.latency_factor(0.0)

    def test_latency_factor_rejects_negative_baseline(self):
        with pytest.raises(ValueError, match="base_latency"):
            MetricsCollector().latency_factor(-0.1)

    def test_latency_summary_filters_by_kind(self):
        collector = MetricsCollector()
        collector.record_request(0, "R", 0.0, 1.0)
        collector.record_request(0, "W", 0.0, 9.0)
        assert collector.latency_summary("R").mean == pytest.approx(1.0)
        assert collector.latency_summary("W").mean == pytest.approx(9.0)
        assert collector.latency_summary().count == 2

    def test_operation_counter(self):
        collector = MetricsCollector()
        collector.record_operation()
        collector.record_operation()
        assert collector.operations == 2


class TestSpanBackedRecords:
    def test_legacy_constructor_builds_two_phase_record(self):
        record = RequestRecord(0, "R", issued_at=1.0, granted_at=3.0)
        assert record.phases == ((ISSUED, 1.0), (GRANTED, 3.0))
        assert record.latency == pytest.approx(2.0)

    def test_constructor_requires_times_or_phases(self):
        with pytest.raises(ValueError):
            RequestRecord(0, "R")

    def test_record_preserves_intermediate_phases(self):
        record = RequestRecord(
            2, "W", lock="db/t",
            phases=[(ISSUED, 0.0), (ENQUEUED, 0.1), (GRANTED, 0.4)],
        )
        assert record.time_of(ENQUEUED) == pytest.approx(0.1)
        assert record.latency == pytest.approx(0.4)

    def test_record_span_feeds_latency_summary(self):
        span = RequestSpan(node=1, lock="db/t", kind="IW")
        span.mark(ISSUED, 0.0)
        span.mark(ENQUEUED, 0.2)
        span.mark(GRANTED, 0.6)
        collector = MetricsCollector()
        collector.record_span(span)
        assert collector.total_requests == 1
        assert collector.latency_summary("IW").mean == pytest.approx(0.6)

    def test_record_span_rejects_ungranted_span(self):
        span = RequestSpan(node=1, lock="db/t", kind="R")
        span.mark(ISSUED, 0.0)
        with pytest.raises(ValueError, match="granted"):
            MetricsCollector().record_span(span)

"""Tests for the statistics helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.stats import (
    Summary,
    mean_confidence_halfwidth,
    percentile,
    summarize,
)

_samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1,
    max_size=100,
)


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_extremes(self):
        values = list(range(10))
        assert percentile(values, 0.0) == 0
        assert percentile(values, 1.0) == 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    @given(values=_samples, fraction=st.floats(min_value=0, max_value=1))
    def test_result_is_a_sample_element(self, values, fraction):
        ordered = sorted(values)
        assert percentile(ordered, fraction) in ordered


class TestSummarize:
    def test_empty_sample_is_all_zero(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_known_values(self):
        summary = summarize([2.0, 4.0, 6.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(4.0)
        assert summary.minimum == 2.0
        assert summary.maximum == 6.0
        assert summary.p50 == 4.0

    @given(values=_samples)
    def test_bounds_and_ordering(self, values):
        summary = summarize(values)
        # The mean comparison allows one ULP of float summation error.
        slack = 1e-9 * max(abs(summary.minimum), abs(summary.maximum), 1e-12)
        assert summary.minimum <= summary.p50 <= summary.maximum
        assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
        assert summary.p50 <= summary.p95 <= summary.maximum
        assert summary.stdev >= 0.0

    @given(value=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_single_sample_degenerate(self, value):
        summary = summarize([value])
        assert summary.mean == value
        assert summary.stdev == 0.0
        assert summary.p95 == value

    def test_str_contains_key_fields(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean=" in text and "p95=" in text


class TestConfidenceHalfwidth:
    def test_tiny_samples_give_zero(self):
        assert mean_confidence_halfwidth([]) == 0.0
        assert mean_confidence_halfwidth([1.0]) == 0.0

    def test_constant_sample_gives_zero(self):
        assert mean_confidence_halfwidth([5.0] * 10) == 0.0

    def test_shrinks_with_sample_size(self):
        wide = mean_confidence_halfwidth([0.0, 1.0] * 5)
        narrow = mean_confidence_halfwidth([0.0, 1.0] * 500)
        assert narrow < wide

    def test_known_value(self):
        # sample variance of [0,1]*50 is 0.2525... use direct formula
        values = [0.0, 1.0] * 50
        n = len(values)
        mean = 0.5
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        expected = 1.96 * math.sqrt(var / n)
        assert mean_confidence_halfwidth(values) == pytest.approx(expected)

"""Tests for the runtime safety monitors."""

from __future__ import annotations

import pytest

from repro.core.modes import LockMode
from repro.errors import InvariantViolation
from repro.verification.invariants import (
    CompatibilityMonitor,
    FifoObserver,
    MonitorSet,
    MutualExclusionMonitor,
)


class TestCompatibilityMonitor:
    def test_compatible_holds_accepted(self):
        monitor = CompatibilityMonitor()
        monitor.on_grant(0.0, 0, "t", LockMode.IR)
        monitor.on_grant(0.1, 1, "t", LockMode.R)
        monitor.on_grant(0.2, 2, "t", LockMode.U)
        assert monitor.grants == 3

    def test_conflicting_grant_raises(self):
        monitor = CompatibilityMonitor()
        monitor.on_grant(0.0, 0, "t", LockMode.R)
        with pytest.raises(InvariantViolation):
            monitor.on_grant(0.1, 1, "t", LockMode.W)

    def test_release_unblocks_conflicts(self):
        monitor = CompatibilityMonitor()
        monitor.on_grant(0.0, 0, "t", LockMode.R)
        monitor.on_release(0.1, 0, "t", LockMode.R)
        monitor.on_grant(0.2, 1, "t", LockMode.W)  # fine now

    def test_unmatched_release_raises(self):
        monitor = CompatibilityMonitor()
        with pytest.raises(InvariantViolation):
            monitor.on_release(0.0, 0, "t", LockMode.R)

    def test_locks_are_independent(self):
        monitor = CompatibilityMonitor()
        monitor.on_grant(0.0, 0, "a", LockMode.W)
        monitor.on_grant(0.1, 1, "b", LockMode.W)  # different lock: fine

    def test_same_node_duplicate_holds_tracked(self):
        monitor = CompatibilityMonitor()
        monitor.on_grant(0.0, 0, "t", LockMode.IR)
        monitor.on_grant(0.1, 0, "t", LockMode.IR)
        monitor.on_release(0.2, 0, "t", LockMode.IR)
        assert monitor.current_holds("t") == [(0, LockMode.IR)]

    def test_assert_all_released(self):
        monitor = CompatibilityMonitor()
        monitor.on_grant(0.0, 0, "t", LockMode.R)
        with pytest.raises(InvariantViolation):
            monitor.assert_all_released()
        monitor.on_release(0.1, 0, "t", LockMode.R)
        monitor.assert_all_released()

    def test_max_concurrency_tracked(self):
        monitor = CompatibilityMonitor()
        monitor.on_grant(0.0, 0, "t", LockMode.IR)
        monitor.on_grant(0.1, 1, "t", LockMode.IR)
        monitor.on_release(0.2, 0, "t", LockMode.IR)
        monitor.on_grant(0.3, 2, "t", LockMode.IR)
        assert monitor.max_concurrency["t"] == 2


class TestMutualExclusionMonitor:
    def test_single_holder_ok(self):
        monitor = MutualExclusionMonitor()
        monitor.on_grant(0.0, 0, "g", LockMode.W)
        monitor.on_release(0.1, 0, "g", LockMode.W)
        monitor.on_grant(0.2, 1, "g", LockMode.W)
        assert monitor.grants == 2

    def test_second_holder_raises(self):
        monitor = MutualExclusionMonitor()
        monitor.on_grant(0.0, 0, "g", LockMode.W)
        with pytest.raises(InvariantViolation):
            monitor.on_grant(0.1, 1, "g", LockMode.W)

    def test_wrong_releaser_raises(self):
        monitor = MutualExclusionMonitor()
        monitor.on_grant(0.0, 0, "g", LockMode.W)
        with pytest.raises(InvariantViolation):
            monitor.on_release(0.1, 1, "g", LockMode.W)

    def test_assert_all_released(self):
        monitor = MutualExclusionMonitor()
        monitor.on_grant(0.0, 0, "g", LockMode.W)
        with pytest.raises(InvariantViolation):
            monitor.assert_all_released()


class TestFifoObserver:
    def test_records_grant_sequence(self):
        observer = FifoObserver()
        observer.on_grant(0.0, 2, "t", LockMode.R)
        observer.on_grant(1.0, 5, "t", LockMode.W)
        events = observer.grants_for("t")
        assert [(e.node, e.mode) for e in events] == [
            (2, LockMode.R),
            (5, LockMode.W),
        ]

    def test_locks_tracked_separately(self):
        observer = FifoObserver()
        observer.on_grant(0.0, 0, "a", LockMode.R)
        observer.on_grant(0.1, 1, "b", LockMode.R)
        assert len(observer.grants_for("a")) == 1
        assert len(observer.grants_for("b")) == 1


class TestMonitorSet:
    def test_fans_out_to_all(self):
        compat = CompatibilityMonitor()
        fifo = FifoObserver()
        monitor_set = MonitorSet([compat, fifo])
        monitor_set.on_grant(0.0, 0, "t", LockMode.R)
        monitor_set.on_release(0.1, 0, "t", LockMode.R)
        assert compat.grants == 1
        assert len(fifo.grants_for("t")) == 1

    def test_violation_from_any_member_propagates(self):
        monitor_set = MonitorSet([CompatibilityMonitor()])
        monitor_set.on_grant(0.0, 0, "t", LockMode.W)
        with pytest.raises(InvariantViolation):
            monitor_set.on_grant(0.1, 1, "t", LockMode.R)

"""Tests for wait-for-graph deadlock detection."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.modes import LockMode
from repro.runtime.cluster import ThreadedHierarchicalCluster
from repro.verification.deadlock import (
    Deadlock,
    DeadlockWatchdog,
    WaitForGraphMonitor,
)

TIMEOUT = 20.0


class TestWaitForGraph:
    def test_no_waits_no_deadlock(self):
        monitor = WaitForGraphMonitor()
        monitor.on_grant(0.0, 0, "a", LockMode.W)
        assert monitor.find_deadlock() is None

    def test_simple_wait_is_not_a_deadlock(self):
        monitor = WaitForGraphMonitor()
        monitor.on_grant(0.0, 0, "a", LockMode.W)
        monitor.on_request(0.1, 1, "a", LockMode.W)
        assert monitor.find_deadlock() is None
        assert monitor.waiting_nodes() == [1]

    def test_ab_ba_cycle_detected(self):
        monitor = WaitForGraphMonitor()
        monitor.on_grant(0.0, 0, "a", LockMode.W)
        monitor.on_grant(0.0, 1, "b", LockMode.W)
        monitor.on_request(0.1, 0, "b", LockMode.W)
        monitor.on_request(0.1, 1, "a", LockMode.W)
        deadlock = monitor.find_deadlock()
        assert deadlock is not None
        assert set(deadlock.nodes) == {0, 1}
        assert set(deadlock.locks) == {"a", "b"}
        assert "deadlock cycle" in str(deadlock)

    def test_compatible_wait_makes_no_edge(self):
        monitor = WaitForGraphMonitor()
        monitor.on_grant(0.0, 0, "a", LockMode.IR)
        monitor.on_request(0.1, 1, "a", LockMode.R)  # compatible: no edge
        assert monitor.find_deadlock() is None

    def test_grant_clears_the_wait(self):
        monitor = WaitForGraphMonitor()
        monitor.on_grant(0.0, 0, "a", LockMode.W)
        monitor.on_request(0.1, 1, "a", LockMode.W)
        monitor.on_release(0.2, 0, "a", LockMode.W)
        monitor.on_grant(0.3, 1, "a", LockMode.W)
        assert monitor.waiting_nodes() == []
        assert monitor.find_deadlock() is None

    def test_three_party_cycle(self):
        monitor = WaitForGraphMonitor()
        for node, lock in ((0, "a"), (1, "b"), (2, "c")):
            monitor.on_grant(0.0, node, lock, LockMode.W)
        monitor.on_request(0.1, 0, "b", LockMode.W)
        monitor.on_request(0.1, 1, "c", LockMode.W)
        monitor.on_request(0.1, 2, "a", LockMode.W)
        deadlock = monitor.find_deadlock()
        assert deadlock is not None
        assert set(deadlock.nodes) == {0, 1, 2}

    def test_self_wait_excluded(self):
        """A node waiting on a lock it also holds (e.g. another of its
        threads) is not a wait-for edge to itself."""

        monitor = WaitForGraphMonitor()
        monitor.on_grant(0.0, 0, "a", LockMode.R)
        monitor.on_request(0.1, 0, "a", LockMode.W)
        assert monitor.find_deadlock() is None


class TestWatchdogOnRealCluster:
    def test_detects_real_ab_ba_deadlock(self):
        """Two clients acquire two W locks in opposite orders — the classic
        application deadlock the hierarchy ordering is meant to prevent —
        and the watchdog reports the cycle."""

        monitor = WaitForGraphMonitor()
        detected = threading.Event()
        found: list = []

        def on_deadlock(deadlock: Deadlock) -> None:
            found.append(deadlock)
            detected.set()

        with ThreadedHierarchicalCluster(3, monitor=monitor) as cluster:
            watchdog = DeadlockWatchdog(monitor, on_deadlock, poll_interval=0.02)
            watchdog.start()
            barrier = threading.Barrier(2, timeout=TIMEOUT)

            def worker(node: int, first: str, second: str) -> None:
                client = cluster.client(node)
                client.acquire(first, LockMode.W, timeout=TIMEOUT)
                barrier.wait()  # both hold their first lock
                try:
                    client.acquire(second, LockMode.W, timeout=3.0)
                except TimeoutError:
                    pass  # expected: we are deadlocked until detection

            threads = [
                threading.Thread(target=worker, args=(1, "a", "b")),
                threading.Thread(target=worker, args=(2, "b", "a")),
            ]
            for thread in threads:
                thread.start()
            assert detected.wait(timeout=10.0), "watchdog missed the deadlock"
            watchdog.stop()
            for thread in threads:
                thread.join(timeout=30)
        assert found
        assert set(found[0].nodes) == {1, 2}
        assert set(found[0].locks) == {"a", "b"}

    def test_quiet_on_healthy_workload(self):
        monitor = WaitForGraphMonitor()
        alarms: list = []
        with ThreadedHierarchicalCluster(3, monitor=monitor) as cluster:
            watchdog = DeadlockWatchdog(
                monitor, alarms.append, poll_interval=0.01
            )
            watchdog.start()

            def worker(node: int) -> None:
                client = cluster.client(node)
                for index in range(10):
                    # Ordered acquisition: no deadlock possible.
                    client.acquire("x", LockMode.W, timeout=TIMEOUT)
                    client.acquire("y", LockMode.W, timeout=TIMEOUT)
                    client.release("y", LockMode.W)
                    client.release("x", LockMode.W)

            threads = [
                threading.Thread(target=worker, args=(n,)) for n in (1, 2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            time.sleep(0.1)
            watchdog.stop()
        assert alarms == []

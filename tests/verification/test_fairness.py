"""Tests for the overtaking/fairness analyzer, including the §3.3 claim."""

from __future__ import annotations

import pytest

from repro.core.automaton import FULL_PROTOCOL, ProtocolOptions
from repro.core.modes import LockMode
from repro.experiments.ablations import STARVATION_MODE_MIX, run_with_options
from repro.metrics.collector import RequestRecord
from repro.verification.fairness import (
    FairnessReport,
    analyze,
    bypass_histogram,
    kind_to_mode,
)
from repro.workload.spec import WorkloadSpec


def _record(kind, issued, granted, node=0):
    return RequestRecord(
        node=node, kind=kind, issued_at=issued, granted_at=granted
    )


class TestAnalyzer:
    def test_empty_is_all_zero(self):
        report = analyze([])
        assert report.requests == 0
        assert report.bypasses == 0

    def test_kind_mapping(self):
        assert kind_to_mode("IR") is LockMode.IR
        assert kind_to_mode("U->W") is LockMode.W
        assert kind_to_mode("pure") is None
        assert kind_to_mode("table") is None

    def test_compatible_overtaking_not_counted(self):
        # A later IR granted before an earlier R: compatible → allowed.
        report = analyze(
            [_record("R", 0.0, 2.0), _record("IR", 1.0, 1.5)]
        )
        assert report.bypasses == 0
        assert report.conflicting_pairs == 0

    def test_conflicting_overtake_counted(self):
        # A later W granted before an earlier R: a real bypass.
        report = analyze([_record("R", 0.0, 3.0), _record("W", 1.0, 2.0)])
        assert report.bypasses == 1
        assert report.max_bypass_per_request == 1

    def test_fifo_order_counts_zero(self):
        report = analyze(
            [
                _record("W", 0.0, 1.0),
                _record("W", 0.5, 2.0),
                _record("W", 0.6, 3.0),
            ]
        )
        assert report.conflicting_pairs == 3
        assert report.bypasses == 0

    def test_histogram_buckets(self):
        records = [
            _record("R", 0.0, 5.0),    # bypassed twice
            _record("W", 1.0, 2.0),
            _record("IW", 1.5, 3.0),
        ]
        histogram = bypass_histogram(records)
        assert histogram[2] == 1  # the poor reader
        assert histogram[0] == 2

    def test_report_str(self):
        text = str(analyze([_record("W", 0, 1)]))
        assert "requests=1" in text


class TestFreezingFairnessClaim:
    """§3.3 quantified: freezing bounds conflicting-mode overtaking."""

    def _bypasses(self, options: ProtocolOptions) -> FairnessReport:
        spec = WorkloadSpec(
            ops_per_node=30, seed=77, mode_mix=STARVATION_MODE_MIX,
            locality=0.2,
        )
        result = run_with_options(10, spec, options)
        return analyze(result.metrics.requests)

    def test_freezing_reduces_overtaking(self):
        with_freezing = self._bypasses(FULL_PROTOCOL)
        without = self._bypasses(ProtocolOptions(freezing=False))
        assert without.bypasses > with_freezing.bypasses

    def test_overtaking_with_freezing_is_modest(self):
        report = self._bypasses(FULL_PROTOCOL)
        # Residual overtakes come only from requests already in flight
        # when the freeze is instated (propagation is not instantaneous).
        assert report.mean_bypass_per_request < 1.0

    def test_freezing_bounds_worst_case_overtaking(self):
        with_freezing = self._bypasses(FULL_PROTOCOL)
        without = self._bypasses(ProtocolOptions(freezing=False))
        assert (
            with_freezing.max_bypass_per_request
            < without.max_bypass_per_request
        )

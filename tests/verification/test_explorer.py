"""Exhaustive interleaving checks of small protocol scenarios.

Each scenario explores *every* reachable delivery/release/issue order
(per-pair FIFO respected) and asserts pairwise-compatible holds, progress
and completion in all of them.  The scenario list targets the protocol's
interesting mechanisms: copy grants, token transfers, queueing, freezing,
re-requests (the stale-release race class) and the ablation variants that
must stay safe (everything except fairness is unaffected by freezing).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.automaton import ProtocolOptions
from repro.core.modes import LockMode as M
from repro.verification.explorer import explore_scenario

# (name, nodes, [(node, mode), ...]) — per-node requests run sequentially.
SCENARIOS = [
    ("two writers", 2, [(0, M.W), (1, M.W)]),
    ("read vs write", 3, [(1, M.R), (2, M.W)]),
    ("three readers", 3, [(0, M.R), (1, M.R), (2, M.R)]),
    ("intents then write", 3, [(1, M.IR), (2, M.R), (0, M.W)]),
    ("iw pair vs read", 3, [(1, M.IW), (2, M.IW), (0, M.R)]),
    ("upgrade-style u", 3, [(1, M.IW), (2, M.R), (1, M.U)]),
    ("re-request race", 3, [(1, M.IR), (1, M.IR), (2, M.W)]),
    ("reparenting race", 3, [(1, M.IR), (2, M.IR), (1, M.R), (0, M.W)]),
    ("u contention", 3, [(1, M.U), (2, M.U)]),
    ("w after everything", 3, [(0, M.IR), (1, M.R), (2, M.U), (0, M.W)]),
]


@pytest.mark.parametrize(
    "name,nodes,requests", SCENARIOS, ids=[s[0] for s in SCENARIOS]
)
def test_full_protocol_scenarios(name, nodes, requests):
    stats = explore_scenario(nodes, requests)
    assert stats.terminal_states >= 1
    assert stats.states_explored >= len(requests)


ABLATIONS = [
    ProtocolOptions(freezing=False),
    ProtocolOptions(local_queues=False),
    ProtocolOptions(child_grants=False),
    ProtocolOptions(local_reentry=False),
    ProtocolOptions(
        freezing=False, local_queues=False, child_grants=False,
        local_reentry=False,
    ),
]


@pytest.mark.parametrize("options", ABLATIONS, ids=lambda o: repr(o))
def test_safety_holds_under_every_ablation(options):
    """Safety (not fairness) must survive disabling any optimization."""

    stats = explore_scenario(
        3,
        [(1, M.IR), (2, M.R), (1, M.R), (0, M.W)],
        options=options,
    )
    assert stats.terminal_states >= 1


def test_four_node_mixed_scenario():
    stats = explore_scenario(
        4, [(1, M.IR), (2, M.IW), (3, M.R)], max_states=500_000
    )
    assert stats.terminal_states >= 1


UPGRADE_SCENARIOS = [
    ("upgrade vs reader", 3, [(1, M.U, True), (2, M.R)]),
    ("upgrade vs intents", 3, [(1, M.U, True), (2, M.IR), (0, M.IW)]),
    ("upgrade vs upgrade", 3, [(1, M.U, True), (2, M.U, True)]),
    ("upgrade vs writer", 3, [(1, M.U, True), (2, M.W)]),
]


@pytest.mark.parametrize(
    "name,nodes,requests", UPGRADE_SCENARIOS,
    ids=[s[0] for s in UPGRADE_SCENARIOS],
)
def test_rule7_upgrade_scenarios(name, nodes, requests):
    """Every interleaving of Rule 7 upgrades against contention: the
    U→W conversion is atomic, waits for the copyset to drain, and never
    deadlocks (upgrade-precedes-write ordering, §3.4)."""

    stats = explore_scenario(nodes, requests)
    assert stats.terminal_states >= 1


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    requests=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.sampled_from([M.IR, M.R, M.U, M.IW, M.W]),
        ),
        min_size=1,
        max_size=3,
    )
)
def test_random_small_scenarios(requests):
    """Property: any ≤3-request scenario on 3 nodes is safe and live."""

    stats = explore_scenario(3, requests, max_states=300_000)
    assert stats.terminal_states >= 1

"""Exhaustive duplication tolerance: the dedup layer, model-checked.

``duplicate_nth=k`` makes the explorer deliver the k-th message of the
run twice (FIFO-consistent: the copy rides right behind the original).
Exploring every interleaving around the duplicate proves a property no
single seeded simulation can: with ``recovery=True`` the automaton keeps
Rule 1, starves nobody and never double-grants, for *any* duplicated
message and *any* delivery order.

The companion tests show the flip side — the base protocol genuinely
needs the exactly-once assumption it states, so the dedup machinery is
load-bearing, not decorative.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.automaton import FULL_PROTOCOL
from repro.core.modes import LockMode
from repro.errors import InvariantViolation, ProtocolError
from repro.verification.explorer import explore_scenario

RECOVERY = dataclasses.replace(FULL_PROTOCOL, recovery=True)

#: 3-node scenarios: W/R contention, R/R sharing, W/W serialization.
SCENARIOS = [
    [(1, LockMode.W), (2, LockMode.R)],
    [(1, LockMode.R), (2, LockMode.R)],
    [(1, LockMode.W), (2, LockMode.W)],
]


class TestDedupKeepsRule1UnderDuplication:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("nth", range(8))
    def test_every_duplicated_message_absorbed(self, scenario, nth):
        # explore_scenario raises InvariantViolation on any Rule-1
        # break, starvation or token split in any interleaving.
        stats = explore_scenario(
            3, scenario, options=RECOVERY, duplicate_nth=nth
        )
        assert stats.terminal_states > 0

    def test_duplication_changes_the_state_space(self):
        base = explore_scenario(3, SCENARIOS[0], options=RECOVERY)
        dup = explore_scenario(
            3, SCENARIOS[0], options=RECOVERY, duplicate_nth=0
        )
        assert dup.states_explored > base.states_explored


class TestBaseProtocolNeedsExactlyOnce:
    def test_duplicate_breaks_the_fault_free_automaton(self):
        # The paper's protocol assumes reliable exactly-once delivery;
        # duplicating an early message must visibly break it in some
        # interleaving (ProtocolError or an invariant violation) —
        # otherwise the recovery dedup layer would be dead weight.
        broke = 0
        for nth in range(5):
            try:
                explore_scenario(
                    3, SCENARIOS[0], options=FULL_PROTOCOL,
                    duplicate_nth=nth,
                )
            except (InvariantViolation, ProtocolError):
                broke += 1
        assert broke > 0

    def test_without_duplication_both_modes_agree(self):
        base = explore_scenario(3, SCENARIOS[0], options=FULL_PROTOCOL)
        recovered = explore_scenario(3, SCENARIOS[0], options=RECOVERY)
        assert base.terminal_states == recovered.terminal_states

"""Exhaustive multi-granularity scenarios: safety AND deadlock freedom.

These check the property single-lock exploration cannot see: chained
acquisitions (table intent, then entry) never deadlock under any message
interleaving, including when table-level requests freeze modes while
entry traffic is in flight.
"""

from __future__ import annotations

import pytest

from repro.core.automaton import ProtocolOptions
from repro.core.modes import LockMode as M
from repro.verification.multilock import explore_hierarchical

T = "t"        # the table lock
E0, E1 = "t/0", "t/1"  # entry locks


class TestHierarchicalOperations:
    def test_disjoint_entry_writers(self):
        stats = explore_hierarchical(
            3,
            {
                1: [((T, M.IW), (E0, M.W))],
                2: [((T, M.IW), (E1, M.W))],
            },
        )
        assert stats.terminal_states >= 1

    def test_entry_reader_vs_entry_writer_same_entry(self):
        stats = explore_hierarchical(
            3,
            {
                1: [((T, M.IR), (E0, M.R))],
                2: [((T, M.IW), (E0, M.W))],
            },
        )
        assert stats.terminal_states >= 1

    def test_table_writer_vs_entry_reader(self):
        """A table-level W excludes intent holders; the entry reader's
        two-step acquisition must not deadlock against it."""

        stats = explore_hierarchical(
            3,
            {
                1: [((T, M.IR), (E0, M.R))],
                2: [((T, M.W),)],
            },
        )
        assert stats.terminal_states >= 1

    def test_table_reader_vs_entry_writer(self):
        stats = explore_hierarchical(
            3,
            {
                1: [((T, M.IW), (E0, M.W))],
                2: [((T, M.R),)],
            },
            max_states=1_000_000,
        )
        assert stats.terminal_states >= 1

    def test_sequential_ops_per_node(self):
        stats = explore_hierarchical(
            2,
            {
                1: [((T, M.IR), (E0, M.R)), ((T, M.IW), (E0, M.W))],
                0: [((T, M.R),)],
            },
        )
        assert stats.terminal_states >= 1

    def test_no_freezing_still_safe_and_live(self):
        """Finite scenarios terminate without freezing (fairness, not
        liveness, is what Rule 6 buys on finite workloads)."""

        stats = explore_hierarchical(
            3,
            {
                1: [((T, M.IR), (E0, M.R))],
                2: [((T, M.W),)],
            },
            options=ProtocolOptions(freezing=False),
        )
        assert stats.terminal_states >= 1

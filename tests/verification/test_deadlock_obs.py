"""Deadlock watchdog → observability wiring: a confirmed cycle lands in
the fault counter and fails the live audit."""

from __future__ import annotations

import threading

from repro.core.modes import LockMode
from repro.obs.collect import RunObserver
from repro.obs.live import (
    ClusterView,
    LiveMonitor,
    LockSnapshot,
    NodeSnapshot,
)
from repro.verification.deadlock import DeadlockWatchdog, WaitForGraphMonitor


def _cycle_monitor() -> WaitForGraphMonitor:
    monitor = WaitForGraphMonitor()
    monitor.on_grant(0.0, 0, "a", LockMode.W)
    monitor.on_grant(0.0, 1, "b", LockMode.W)
    monitor.on_request(0.1, 0, "b", LockMode.W)
    monitor.on_request(0.1, 1, "a", LockMode.W)
    return monitor


class TestWatchdogObsWiring:
    def test_confirmed_cycle_counts_as_deadlock_fault(self):
        observer = RunObserver()
        detected = threading.Event()
        watchdog = DeadlockWatchdog(
            _cycle_monitor(),
            lambda deadlock: detected.set(),
            poll_interval=0.01,
            obs=observer,
        )
        watchdog.start()
        assert detected.wait(timeout=10.0)
        watchdog.stop()
        assert observer.faults.total("deadlock") == 1

    def test_no_obs_still_fires_callback(self):
        detected = threading.Event()
        watchdog = DeadlockWatchdog(
            _cycle_monitor(),
            lambda deadlock: detected.set(),
            poll_interval=0.01,
        )
        watchdog.start()
        assert detected.wait(timeout=10.0)
        watchdog.stop()

    def test_deadlock_fault_fails_the_live_audit(self):
        observer = RunObserver()
        observer.fault("deadlock")
        view = ClusterView(
            protocol="hierarchical",
            captured_at=0.0,
            nodes=(
                NodeSnapshot(
                    node=0,
                    locks=(
                        LockSnapshot("a", believes_token=True, parent=None),
                    ),
                ),
            ),
        )
        monitor = LiveMonitor(lambda: view, observer=observer)
        _, report = monitor.poll()
        assert not report.ok
        assert [f.rule for f in report.violations()] == ["deadlock"]

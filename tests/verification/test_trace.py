"""Tests for the structured trace recorder."""

from __future__ import annotations

import io

import pytest

from repro.core.modes import LockMode
from repro.sim.cluster import SimHierarchicalCluster
from repro.sim.engine import Simulator, Timeout, run_processes
from repro.verification.trace import (
    GRANT,
    MESSAGE,
    RELEASE,
    REQUEST,
    TraceEvent,
    TraceRecorder,
)


def _recorded_run():
    sim = Simulator()
    recorder = TraceRecorder()
    cluster = SimHierarchicalCluster(3, sim=sim, monitor=recorder)
    cluster.network._observer = recorder.message_observer(lambda: sim.now)

    def body(node):
        client = cluster.client(node)
        yield client.acquire("db/t", LockMode.R)
        yield Timeout(sim, 0.01)
        client.release("db/t", LockMode.R)

    run_processes(sim, [body(1), body(2)])
    return recorder


class TestTraceEvent:
    def test_json_round_trip(self):
        event = TraceEvent(
            time=1.25, category=GRANT, node=3, lock_id="db/t",
            mode=LockMode.IW, detail="x",
        )
        assert TraceEvent.from_json(event.to_json()) == event

    def test_message_event_round_trip(self):
        event = TraceEvent(
            time=0.5, category=MESSAGE, node=0, lock_id="L",
            mode=None, detail="GrantMessage->2",
        )
        assert TraceEvent.from_json(event.to_json()) == event


class TestTraceRecorder:
    def test_records_full_lifecycle(self):
        recorder = _recorded_run()
        summary = recorder.summary()
        assert summary[REQUEST] == 2
        assert summary[GRANT] == 2
        assert summary[RELEASE] == 2
        assert summary.get(MESSAGE, 0) > 0

    def test_events_are_time_ordered_per_lock(self):
        recorder = _recorded_run()
        events = recorder.events_for_lock("db/t")
        times = [event.time for event in events]
        assert times == sorted(times)

    def test_grant_latencies_pair_up(self):
        recorder = _recorded_run()
        latencies = recorder.grant_latencies()
        assert len(latencies) == 2
        assert all(latency >= 0 for latency in latencies)

    def test_dump_and_load_round_trip(self):
        recorder = _recorded_run()
        buffer = io.StringIO()
        count = recorder.dump(buffer)
        assert count == len(recorder.events)
        buffer.seek(0)
        loaded = TraceRecorder.load(buffer)
        assert loaded == recorder.events

    def test_empty_trace(self):
        recorder = TraceRecorder()
        assert recorder.summary() == {}
        assert recorder.grant_latencies() == []
        buffer = io.StringIO()
        assert recorder.dump(buffer) == 0
        buffer.seek(0)
        assert TraceRecorder.load(buffer) == []

"""Tests for the Tables 1-2 regeneration (experiments E1-E4)."""

from __future__ import annotations

from repro.core.modes import LockMode
from repro.experiments.tables import (
    EXPECTED_TABLE_1A,
    EXPECTED_TABLE_1B,
    EXPECTED_TABLE_2A,
    EXPECTED_TABLE_2B,
    render_all,
    table_1a_matrix,
    table_1b_matrix,
    table_2a_matrix,
    table_2b_matrix,
    verify_all,
)


class TestTableRegeneration:
    def test_table_1a_matches_oracle(self):
        assert table_1a_matrix() == EXPECTED_TABLE_1A

    def test_table_1b_matches_oracle(self):
        assert table_1b_matrix() == EXPECTED_TABLE_1B

    def test_table_2a_matches_oracle(self):
        assert table_2a_matrix() == EXPECTED_TABLE_2A

    def test_table_2b_matches_oracle(self):
        assert table_2b_matrix() == EXPECTED_TABLE_2B

    def test_verify_all_passes(self):
        assert all(ok for _name, ok in verify_all())

    def test_2b_paper_example_cell(self):
        assert table_2b_matrix()[(LockMode.IW, LockMode.R)] == frozenset(
            {LockMode.IW}
        )

    def test_render_all_reports_pass(self):
        rendered = render_all()
        assert rendered.count("[PASS]") == 4
        assert "[FAIL]" not in rendered

    def test_symmetric_conflicts_in_1a(self):
        matrix = table_1a_matrix()
        for i in range(5):
            for j in range(5):
                assert matrix[i][j] == matrix[j][i]

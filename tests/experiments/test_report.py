"""Tests for the report rendering and shape-check helpers."""

from __future__ import annotations

from repro.experiments.report import (
    flattening,
    monotonically_increasing,
    render_ascii_plot,
    render_series_table,
    shape_checks,
    superlinear_growth,
)


class TestShapeHelpers:
    def test_monotonic_simple(self):
        assert monotonically_increasing([1, 2, 3])
        assert not monotonically_increasing([1, 3, 2])

    def test_monotonic_with_slack(self):
        assert monotonically_increasing([1.0, 0.98, 1.5], slack=0.05)
        assert not monotonically_increasing([1.0, 0.5, 1.5], slack=0.05)

    def test_superlinear_detects_quadratic(self):
        xs = [1, 2, 4, 8]
        ys = [1, 4, 16, 64]
        assert superlinear_growth(xs, ys)

    def test_superlinear_rejects_flat(self):
        assert not superlinear_growth([1, 2, 4, 8], [3, 3.1, 3.2, 3.1])

    def test_superlinear_rejects_linear(self):
        assert not superlinear_growth([1, 2, 4, 8], [2, 4, 8, 16])

    def test_superlinear_needs_data(self):
        assert not superlinear_growth([1], [1])
        assert not superlinear_growth([1, 2], [0, 5])

    def test_flattening_detects_asymptote(self):
        assert flattening([1.0, 2.5, 2.9, 3.0, 3.05])

    def test_flattening_rejects_steady_growth(self):
        assert not flattening([1, 2, 4, 8, 16])

    def test_flattening_accepts_flat_series(self):
        assert flattening([3.0, 3.0, 3.0, 3.0])

    def test_flattening_needs_three_points(self):
        assert not flattening([1, 2])


class TestRendering:
    def test_series_table_contains_all_data(self):
        text = render_series_table(
            "T", "n", [2, 4], {"a": [1.0, 2.0], "b": [3.0, 4.0]}
        )
        assert "T" in text
        for token in ("a", "b", "1.00", "4.00"):
            assert token in text

    def test_ascii_plot_has_legend_and_axes(self):
        text = render_ascii_plot(
            "P", [1, 2, 3], {"ours": [1, 2, 3], "base": [2, 4, 6]}
        )
        assert "o=ours" in text
        assert "x=base" in text
        assert "y: 0 .. 6.00" in text

    def test_ascii_plot_empty_series(self):
        assert "(no data)" in render_ascii_plot("P", [], {})

    def test_shape_checks_renders_pass_fail(self):
        text = shape_checks([("good", True), ("bad", False)])
        assert "[PASS] good" in text
        assert "[FAIL] bad" in text

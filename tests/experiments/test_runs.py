"""End-to-end tests of the experiment runners (CI-scale sweeps).

These run the actual figure pipelines at small node counts with full
safety checking — every run is simultaneously a protocol soak test.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ablations import (
    ablate_child_grants,
    ablate_freezing,
    ablate_local_queues,
    ablate_local_reentry,
)
from repro.experiments.common import (
    run_hierarchical,
    run_naimi_pure,
    run_naimi_same_work,
    sweep,
)
from repro.experiments.fig5_message_overhead import run_fig5
from repro.experiments.fig6_latency import run_fig6
from repro.experiments.fig7_breakdown import MESSAGE_TYPES, run_fig7
from repro.experiments.headline import run_headline
from repro.workload.spec import WorkloadSpec

QUICK = WorkloadSpec(ops_per_node=12, seed=21)
COUNTS = (2, 4, 8)


class TestRunners:
    def test_hierarchical_run_is_green(self):
        result = run_hierarchical(5, QUICK)
        assert result.metrics.operations == 5 * QUICK.ops_per_node
        assert result.message_overhead() > 0
        assert result.latency_factor() >= 0
        assert result.sim_time > 0

    def test_naimi_pure_run_is_green(self):
        result = run_naimi_pure(5, QUICK)
        assert result.metrics.total_requests == 5 * QUICK.ops_per_node

    def test_naimi_same_work_run_is_green(self):
        result = run_naimi_same_work(5, QUICK)
        assert result.metrics.operations == 5 * QUICK.ops_per_node

    def test_runs_are_deterministic(self):
        first = run_hierarchical(4, QUICK)
        second = run_hierarchical(4, QUICK)
        assert first.message_overhead() == second.message_overhead()
        assert first.latency_factor() == second.latency_factor()
        assert first.sim_time == second.sim_time

    def test_different_seeds_differ(self):
        other = WorkloadSpec(ops_per_node=12, seed=22)
        assert run_hierarchical(4, QUICK).sim_time != run_hierarchical(
            4, other
        ).sim_time

    def test_sweep_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep("nope", (2,), QUICK)


class TestFig5Quick:
    def test_pipeline_and_shapes(self):
        result = run_fig5(COUNTS, QUICK)
        assert set(result.overhead) == {
            "hierarchical", "naimi-pure", "naimi-same-work"
        }
        for series in result.overhead.values():
            assert len(series) == len(COUNTS)
            assert all(v >= 0 for v in series)
        rendered = result.render()
        assert "Figure 5" in rendered
        # Same-work exceeds the hierarchical protocol at the largest n.
        assert (
            result.overhead["naimi-same-work"][-1]
            > result.overhead["hierarchical"][-1]
        )

    def test_checks_pass_at_ci_scale(self):
        result = run_fig5(COUNTS, QUICK)
        failures = [name for name, ok in result.checks() if not ok]
        assert not failures


class TestFig6Quick:
    def test_pipeline_and_shapes(self):
        result = run_fig6(COUNTS, QUICK)
        rendered = result.render()
        assert "Figure 6" in rendered
        ours = result.latency_factor["hierarchical"]
        same = result.latency_factor["naimi-same-work"]
        assert ours[-1] < same[-1]


class TestFig7Quick:
    def test_pipeline_and_breakdown(self):
        result = run_fig7(COUNTS, QUICK)
        assert set(result.breakdown) == set(MESSAGE_TYPES)
        total = sum(series[-1] for series in result.breakdown.values())
        direct = run_hierarchical(COUNTS[-1], QUICK).message_overhead()
        assert total == pytest.approx(direct, rel=0.01)
        assert "Figure 7" in result.render()

    def test_freeze_rate_is_small(self):
        result = run_fig7(COUNTS, QUICK)
        assert max(result.breakdown["freeze"]) < 1.0


class TestHeadlineQuick:
    def test_comparison_runs(self):
        result = run_headline(8, QUICK)
        assert result.ours.message_overhead() > 0
        assert "paper" in result.render()
        assert result.message_saving() == pytest.approx(
            1 - result.ours.message_overhead() / result.pure.message_overhead()
        )


class TestAblationsQuick:
    def test_freezing_ablation_increases_overtaking(self):
        result = ablate_freezing(num_nodes=8, ops_per_node=25, seed=31)
        assert result.ablated_value > 0
        assert result.regression > 1.0

    def test_local_queue_ablation_increases_messages(self):
        result = ablate_local_queues(num_nodes=8, ops_per_node=20, seed=32)
        assert result.ablated_value >= result.full_value * 0.95

    def test_child_grant_ablation_increases_messages(self):
        result = ablate_child_grants(num_nodes=8, ops_per_node=20, seed=33)
        assert result.ablated_value >= result.full_value * 0.9

    def test_local_reentry_ablation_increases_messages(self):
        result = ablate_local_reentry(num_nodes=8, ops_per_node=20, seed=34)
        assert result.ablated_value >= result.full_value * 0.95
        assert "Ablation" in result.render()

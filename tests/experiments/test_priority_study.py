"""Tests for the priority-arbitration extension study (X1)."""

from __future__ import annotations

import pytest

from repro.experiments.priority import PriorityResult, run_priority_study


class TestPriorityStudy:
    def test_runs_green_and_deterministic(self):
        first = run_priority_study(num_nodes=6, ops_per_node=10, seed=5)
        second = run_priority_study(num_nodes=6, ops_per_node=10, seed=5)
        assert first.priority_high_latency == second.priority_high_latency
        assert first.fifo_high_latency == second.fifo_high_latency

    def test_priority_helps_the_vip(self):
        result = run_priority_study(num_nodes=8, ops_per_node=15, seed=6)
        assert result.priority_high_latency < result.fifo_high_latency

    def test_render_contains_both_policies(self):
        result = run_priority_study(num_nodes=5, ops_per_node=8, seed=7)
        text = result.render()
        assert "FIFO" in text and "priority" in text
        assert "speedup" in text

    def test_speedup_property(self):
        result = PriorityResult(
            num_nodes=4,
            fifo_high_latency=2.0,
            priority_high_latency=0.5,
            fifo_crowd_latency=1.0,
            priority_crowd_latency=1.2,
        )
        assert result.speedup == pytest.approx(4.0)

"""The checked-in faults baseline and its ``--check`` drift gate."""

from __future__ import annotations

import json

from benchmarks.record_faults_baseline import (
    BASELINE_PATH,
    CHURN_GROUP,
    CHURN_METRICS,
    DURABLE_GROUP,
    DURABLE_METRICS,
    LEASE_GROUP,
    LEASE_METRICS,
    OVERHEAD_METRICS,
    PLAN_METRICS,
    PLANS,
    SEEDS,
    compare_summary,
)


def _summary(
    none=None, drop1=None, durable=None, lease=None, churn=None, overhead=None
):
    return {
        "none": none or {m: 1.0 for m in PLAN_METRICS},
        "drop1": drop1 or {m: 1.2 for m in PLAN_METRICS},
        DURABLE_GROUP: durable or {m: 1.5 for m in DURABLE_METRICS},
        LEASE_GROUP: lease or {m: 1.1 for m in LEASE_METRICS},
        CHURN_GROUP: churn or {m: 1.3 for m in CHURN_METRICS},
        "overhead": overhead or {m: 1.2 for m in OVERHEAD_METRICS},
    }


def _baseline(summary):
    return {"benchmark": "faults_baseline", "summary": summary}


class TestCompareSummary:
    def test_identical_summary_passes(self):
        summary = _summary()
        assert compare_summary(_baseline(summary), _summary()) == []

    def test_within_tolerance_passes(self):
        base = _baseline(_summary())
        current = _summary(none={m: 1.05 for m in PLAN_METRICS})
        assert compare_summary(base, current) == []

    def test_drift_beyond_tolerance_fails_loudly(self):
        base = _baseline(_summary())
        current = _summary(drop1={
            "messages_per_request": 1.2,
            "latency_mean": 2.0,  # 67% off the 1.2 baseline
            "latency_p95": 1.2,
        })
        problems = compare_summary(base, current)
        (line,) = problems
        assert "drop1" in line
        assert "latency_mean" in line
        assert "2.0" in line and "1.2" in line

    def test_missing_plan_is_drift(self):
        base = _baseline(_summary())
        current = _summary()
        del current["drop1"]
        problems = compare_summary(base, current)
        assert any("drop1" in p for p in problems)

    def test_missing_durable_group_is_drift(self):
        base = _baseline(_summary())
        current = _summary()
        del current[DURABLE_GROUP]
        problems = compare_summary(base, current)
        assert any(DURABLE_GROUP in p for p in problems)

    def test_missing_lease_group_is_drift(self):
        base = _baseline(_summary())
        current = _summary()
        del current[LEASE_GROUP]
        problems = compare_summary(base, current)
        assert any(LEASE_GROUP in p for p in problems)

    def test_missing_churn_group_is_drift(self):
        base = _baseline(_summary())
        current = _summary()
        del current[CHURN_GROUP]
        problems = compare_summary(base, current)
        assert any(CHURN_GROUP in p for p in problems)

    def test_missing_metric_in_baseline_is_drift(self):
        summary = _summary()
        del summary["none"]["latency_p95"]
        problems = compare_summary(_baseline(summary), _summary())
        assert any("latency_p95" in p for p in problems)

    def test_custom_tolerance(self):
        base = _baseline(_summary())
        current = _summary(none={m: 1.4 for m in PLAN_METRICS})
        assert compare_summary(base, current, tolerance=0.5) == []
        assert compare_summary(base, current, tolerance=0.2) != []


class TestCheckedInBaseline:
    def test_baseline_file_shape(self):
        with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["benchmark"] == "faults_baseline"
        assert report["config"]["plans"] == list(PLANS)
        assert report["config"]["seeds"] == list(SEEDS)
        summary = report["summary"]
        for plan in PLANS:
            for metric in PLAN_METRICS:
                assert metric in summary[plan]
        for metric in DURABLE_METRICS:
            assert metric in summary[DURABLE_GROUP]
        for metric in LEASE_METRICS:
            assert metric in summary[LEASE_GROUP]
        for metric in CHURN_METRICS:
            assert metric in summary[CHURN_GROUP]
        for metric in OVERHEAD_METRICS:
            assert metric in summary["overhead"]
        # A fresh summary compared against itself must pass the gate.
        assert compare_summary(report, summary) == []

"""The checked-in Figure 5/6 perf baselines and their drift check."""

from __future__ import annotations

import json

import pytest

from benchmarks.record_perf_baseline import (
    FIG5_PATH,
    FIG6_PATH,
    NODE_COUNTS,
    OPS_PER_NODE,
    PROTOCOLS,
    SEED,
    compare_series,
)
from repro.experiments.common import sweep
from repro.workload.spec import WorkloadSpec


def _baseline(series):
    return {
        "benchmark": "fig5_quick_baseline",
        "config": {"node_counts": [2, 4]},
        "series": series,
    }


class TestCompareSeries:
    def test_identical_series_pass(self):
        series = {"hierarchical": [1.0, 2.0]}
        assert compare_series(_baseline(series), dict(series)) == []

    def test_within_tolerance_passes(self):
        base = _baseline({"hierarchical": [1.0, 2.0]})
        assert compare_series(base, {"hierarchical": [1.05, 1.9]}) == []

    def test_drift_beyond_tolerance_fails_loudly(self):
        base = _baseline({"hierarchical": [1.0, 2.0]})
        problems = compare_series(base, {"hierarchical": [1.0, 2.5]})
        (line,) = problems
        assert "hierarchical" in line
        assert "n=4" in line
        assert "2.5" in line and "2.0" in line

    def test_missing_protocol_is_drift(self):
        base = _baseline({"hierarchical": [1.0], "naimi-pure": [1.0]})
        problems = compare_series(base, {"hierarchical": [1.0]})
        assert any("naimi-pure" in p for p in problems)

    def test_extra_protocol_is_drift(self):
        base = _baseline({"hierarchical": [1.0]})
        problems = compare_series(
            base, {"hierarchical": [1.0], "raymond": [1.0]}
        )
        assert any("raymond" in p for p in problems)

    def test_length_mismatch_is_drift(self):
        base = _baseline({"hierarchical": [1.0, 2.0]})
        problems = compare_series(base, {"hierarchical": [1.0]})
        assert any("points measured" in p for p in problems)

    def test_custom_tolerance(self):
        base = _baseline({"hierarchical": [1.0]})
        assert compare_series(base, {"hierarchical": [1.4]},
                              tolerance=0.5) == []
        assert compare_series(base, {"hierarchical": [1.4]},
                              tolerance=0.2) != []


class TestCheckedInBaselines:
    @pytest.mark.parametrize("path", [FIG5_PATH, FIG6_PATH])
    def test_baseline_files_are_checked_in(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["config"]["node_counts"] == list(NODE_COUNTS)
        assert report["config"]["seed"] == SEED
        assert sorted(report["series"]) == sorted(PROTOCOLS)
        for values in report["series"].values():
            assert len(values) == len(NODE_COUNTS)

    def test_small_sweep_reproduces_baseline_exactly(self):
        # The sim is seed-deterministic: re-measuring the first two
        # points of the hierarchical curve must match the checked-in
        # numbers exactly, not just within tolerance.
        with open(FIG5_PATH, "r", encoding="utf-8") as handle:
            fig5 = json.load(handle)
        with open(FIG6_PATH, "r", encoding="utf-8") as handle:
            fig6 = json.load(handle)
        spec = WorkloadSpec(ops_per_node=OPS_PER_NODE, seed=SEED)
        runs = sweep("hierarchical", (2, 4), spec, check_invariants=True)
        overhead = [round(r.message_overhead(), 6) for r in runs]
        latency = [round(r.latency_factor(), 6) for r in runs]
        assert overhead == fig5["series"]["hierarchical"][:2]
        assert latency == fig6["series"]["hierarchical"][:2]

"""Tests for the §5 dynamic-vs-static tree study."""

from __future__ import annotations

import pytest

from repro.experiments.related_work import (
    run_related_work,
    sequential_naimi,
    sequential_raymond,
)
from repro.raymond.topology import balanced_binary_tree, chain, star


class TestSequentialProbes:
    def test_naimi_flattens(self):
        small = sequential_naimi(4, rounds=40)
        large = sequential_naimi(32, rounds=40)
        # Path reversal keeps the per-request cost roughly flat.
        assert large < small * 4

    def test_raymond_chain_grows_linearly(self):
        small = sequential_raymond(4, chain(4), rounds=40)
        large = sequential_raymond(32, chain(32), rounds=40)
        assert large > small * 3

    def test_raymond_star_is_cheap(self):
        cost = sequential_raymond(16, star(16), rounds=40)
        # Height-1 tree: a leaf-to-leaf hand-off costs 4 messages
        # (request up + over, privilege back + down), independent of n.
        assert cost < 4.5

    def test_raymond_balanced_between_star_and_chain(self):
        n = 16
        star_cost = sequential_raymond(n, star(n), rounds=40)
        tree_cost = sequential_raymond(n, balanced_binary_tree(n), rounds=40)
        chain_cost = sequential_raymond(n, chain(n), rounds=40)
        assert star_cost <= tree_cost <= chain_cost


class TestFullStudy:
    def test_checks_pass_at_small_scale(self):
        result = run_related_work(node_counts=(2, 4, 8, 16), rounds=40)
        failures = [name for name, ok in result.checks() if not ok]
        assert not failures, failures

    def test_render(self):
        result = run_related_work(node_counts=(2, 4), rounds=10)
        text = result.render()
        assert "Related work" in text
        assert "naimi (dynamic)" in text

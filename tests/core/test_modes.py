"""Tests for the mode algebra and the paper's rule tables.

Every legible cell and worked example in the paper text is pinned here;
the rest of the tables follow from the derivations argued in DESIGN.md §3.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.modes import (
    ALL_MODES,
    REAL_MODES,
    LockMode,
    child_can_grant,
    compatible,
    compatible_modes,
    conflicting_modes,
    conflicts,
    freeze_set,
    intention_mode,
    max_mode,
    render_table_1a,
    render_table_1b,
    render_table_2a,
    render_table_2b,
    should_queue,
    strength,
    stronger_or_equal,
    strictly_weaker,
    token_can_grant,
    token_transfer_required,
    always_transfers_token,
)

MODES = st.sampled_from(REAL_MODES)
ALL = st.sampled_from(ALL_MODES)


class TestStrengthOrder:
    """Eq. (1): ∅ < IR < R < U = IW < W."""

    def test_total_order_values(self):
        assert strength(LockMode.NONE) < strength(LockMode.IR)
        assert strength(LockMode.IR) < strength(LockMode.R)
        assert strength(LockMode.R) < strength(LockMode.U)
        assert strength(LockMode.U) == strength(LockMode.IW)
        assert strength(LockMode.IW) < strength(LockMode.W)

    def test_stronger_or_equal_reflexive(self):
        for mode in ALL_MODES:
            assert stronger_or_equal(mode, mode)

    @given(left=ALL, right=ALL)
    def test_strictly_weaker_is_strict(self, left, right):
        assert strictly_weaker(left, right) == (
            strength(left) < strength(right)
        )

    @given(left=ALL, right=ALL)
    def test_trichotomy_via_strength(self, left, right):
        weaker = strictly_weaker(left, right)
        stronger = strictly_weaker(right, left)
        equal = strength(left) == strength(right)
        assert weaker + stronger + equal == 1

    def test_strength_matches_compatibility_counts(self):
        """Definition 1: stronger = compatible with fewer modes."""

        counts = {mode: len(compatible_modes(mode)) for mode in REAL_MODES}
        assert counts[LockMode.IR] == 4
        assert counts[LockMode.R] == 3
        assert counts[LockMode.U] == 2
        assert counts[LockMode.IW] == 2
        assert counts[LockMode.W] == 0
        for left, right in itertools.combinations(REAL_MODES, 2):
            if strength(left) < strength(right):
                assert counts[left] >= counts[right]


class TestTable1aCompatibility:
    """Table 1(a): the OMG concurrency-service conflict matrix."""

    # (mode, conflicting modes) — the reconstruction oracle.
    CONFLICT_TABLE = [
        (LockMode.IR, {LockMode.W}),
        (LockMode.R, {LockMode.IW, LockMode.W}),
        (LockMode.U, {LockMode.U, LockMode.IW, LockMode.W}),
        (LockMode.IW, {LockMode.R, LockMode.U, LockMode.W}),
        (LockMode.W, set(REAL_MODES)),
    ]

    @pytest.mark.parametrize("mode,expected", CONFLICT_TABLE)
    def test_conflict_sets(self, mode, expected):
        assert conflicting_modes(mode) == frozenset(expected)

    @given(left=ALL, right=ALL)
    def test_symmetry(self, left, right):
        assert compatible(left, right) == compatible(right, left)

    @given(mode=ALL)
    def test_none_compatible_with_everything(self, mode):
        assert compatible(LockMode.NONE, mode)

    def test_w_conflicts_with_itself(self):
        assert conflicts(LockMode.W, LockMode.W)

    def test_upgrade_conflicts_with_upgrade(self):
        """§3.4: 'An upgrade lock conflicts with upgrade locks held by
        other nodes.'"""

        assert conflicts(LockMode.U, LockMode.U)

    def test_upgrade_is_a_shared_read_lock(self):
        """U is a read lock: it coexists with IR and R."""

        assert compatible(LockMode.U, LockMode.IR)
        assert compatible(LockMode.U, LockMode.R)

    def test_intents_compatible_with_each_other(self):
        """Multiple IW holders enable disjoint lower-level writes (§3.1)."""

        assert compatible(LockMode.IW, LockMode.IW)
        assert compatible(LockMode.IR, LockMode.IW)
        assert compatible(LockMode.IR, LockMode.IR)

    @given(left=MODES, right=MODES)
    def test_conflicts_is_negation_of_compatible(self, left, right):
        assert conflicts(left, right) != compatible(left, right)

    def test_compat_sets_nested_along_strength_chain(self):
        """Along ∅<IR<R<U and ∅<IR<IW<W, stronger ⇒ fewer compatibilities.

        This nesting is what makes the token node's local compatibility
        check sufficient for global safety (end of paper §3).
        """

        for chain in (
            [LockMode.IR, LockMode.R, LockMode.U, LockMode.W],
            [LockMode.IR, LockMode.IW, LockMode.W],
        ):
            for weaker, stronger in zip(chain, chain[1:]):
                assert compatible_modes(stronger) <= compatible_modes(weaker)


class TestTable1bChildGrants:
    """Table 1(b) / Rule 3.1: grants by non-token nodes."""

    GRANTABLE = {
        LockMode.IR: {LockMode.IR},
        LockMode.R: {LockMode.IR, LockMode.R},
        LockMode.U: {LockMode.IR, LockMode.R},
        LockMode.IW: {LockMode.IR, LockMode.IW},
        LockMode.W: set(),
    }

    @pytest.mark.parametrize("owned", REAL_MODES)
    def test_grantable_sets(self, owned):
        granted = {m for m in REAL_MODES if child_can_grant(owned, m)}
        assert granted == self.GRANTABLE[owned]

    def test_none_owner_grants_nothing(self):
        for mode in REAL_MODES:
            assert not child_can_grant(LockMode.NONE, mode)

    @given(owned=ALL, requested=MODES)
    def test_grant_requires_compatibility_and_dominance(self, owned, requested):
        expected = (
            owned is not LockMode.NONE
            and compatible(owned, requested)
            and stronger_or_equal(owned, requested)
        )
        assert child_can_grant(owned, requested) == expected

    @given(owned=ALL, requested=MODES)
    def test_child_grant_implies_token_grant(self, owned, requested):
        """Rule 3.2 is strictly more permissive than Rule 3.1."""

        if child_can_grant(owned, requested):
            assert token_can_grant(owned, requested)


class TestTokenGrant:
    """Rule 3.2 and the transfer-vs-copy split."""

    @given(owned=ALL, requested=MODES)
    def test_token_grant_is_compatibility(self, owned, requested):
        assert token_can_grant(owned, requested) == compatible(owned, requested)

    @given(owned=ALL, requested=MODES)
    def test_transfer_exactly_when_strictly_stronger(self, owned, requested):
        expected = compatible(owned, requested) and strictly_weaker(
            owned, requested
        )
        assert token_transfer_required(owned, requested) == expected

    def test_u_and_w_always_transfer(self):
        """Any grantable U or W moves the token — the basis of Table 2(a)'s
        all-queue rows and of upgrades being token-local (Rule 7)."""

        for requested in (LockMode.U, LockMode.W):
            assert always_transfers_token(requested)
            for owned in ALL_MODES:
                if token_can_grant(owned, requested):
                    assert token_transfer_required(owned, requested)

    def test_ir_r_iw_do_not_always_transfer(self):
        assert not always_transfers_token(LockMode.IR)
        assert not always_transfers_token(LockMode.R)
        assert not always_transfers_token(LockMode.IW)
        # IW grants by an IW-owning token are copies, not transfers.
        assert not token_transfer_required(LockMode.IW, LockMode.IW)


class TestTable2aQueueForward:
    """Table 2(a) / Rule 4.1: queue vs forward at a pending non-token node."""

    EXPECTED_ROWS = {
        LockMode.NONE: "FFFFF",
        LockMode.IR: "QFFFF",
        LockMode.R: "QQFFF",
        LockMode.U: "QQQQQ",
        LockMode.IW: "QFFQF",
        LockMode.W: "QQQQQ",
    }

    @pytest.mark.parametrize("pending", ALL_MODES)
    def test_rows(self, pending):
        row = "".join(
            "Q" if should_queue(pending, incoming) else "F"
            for incoming in REAL_MODES
        )
        assert row == self.EXPECTED_ROWS[pending]

    @given(pending=MODES, incoming=MODES)
    def test_queued_requests_are_servable_after_grant(self, pending, incoming):
        """Queueing must never strand a request: after the pending mode is
        granted, the node can either serve the queued request as a child
        (Rule 3.1) or it will hold the token (U/W grants transfer it)."""

        if should_queue(pending, incoming):
            assert child_can_grant(pending, incoming) or always_transfers_token(
                pending
            )


class TestTable2bFreezing:
    """Table 2(b) / Rule 6: frozen modes at the token node."""

    def test_paper_worked_example(self):
        """§3.3: token owns IW, an R request is queued → freeze {IW}."""

        assert freeze_set(LockMode.IW, LockMode.R) == frozenset({LockMode.IW})

    # Every legible cell of the paper's Table 2(b).
    LEGIBLE_CELLS = [
        (LockMode.IR, LockMode.W,
         {LockMode.IR, LockMode.R, LockMode.U, LockMode.IW}),
        (LockMode.R, LockMode.IW, {LockMode.R, LockMode.U}),
        (LockMode.R, LockMode.W, {LockMode.IR, LockMode.R, LockMode.U}),
        (LockMode.U, LockMode.W, {LockMode.IR, LockMode.R}),
        (LockMode.IW, LockMode.W, {LockMode.IR, LockMode.IW}),
    ]

    @pytest.mark.parametrize("owned,requested,expected", LEGIBLE_CELLS)
    def test_legible_paper_cells(self, owned, requested, expected):
        assert freeze_set(owned, requested) == frozenset(expected)

    @given(owned=MODES, requested=MODES)
    def test_formula(self, owned, requested):
        computed = freeze_set(owned, requested)
        expected = {
            m
            for m in REAL_MODES
            if conflicts(m, requested) and compatible(m, owned)
        }
        assert computed == frozenset(expected)

    @given(owned=MODES, requested=MODES)
    def test_frozen_modes_all_conflict_with_request(self, owned, requested):
        """Freezing only stops grants that would delay the queued request."""

        for frozen in freeze_set(owned, requested):
            assert conflicts(frozen, requested)

    @given(owned=MODES, requested=MODES)
    def test_frozen_modes_currently_grantable(self, owned, requested):
        """Only modes the copyset tree could still grant need freezing."""

        for frozen in freeze_set(owned, requested):
            assert compatible(frozen, owned)

    def test_w_owner_freezes_nothing(self):
        """With W owned, nothing is grantable, so nothing needs freezing."""

        for requested in REAL_MODES:
            assert freeze_set(LockMode.W, requested) == frozenset()


class TestIntentionModes:
    """Multi-granularity intent derivation (§3.1 example)."""

    def test_reads_take_ir(self):
        assert intention_mode(LockMode.R) is LockMode.IR
        assert intention_mode(LockMode.IR) is LockMode.IR

    def test_writes_take_iw(self):
        assert intention_mode(LockMode.W) is LockMode.IW
        assert intention_mode(LockMode.IW) is LockMode.IW
        assert intention_mode(LockMode.U) is LockMode.IW

    def test_none_maps_to_none(self):
        assert intention_mode(LockMode.NONE) is LockMode.NONE

    @given(mode=MODES)
    def test_intent_weaker_or_equal(self, mode):
        assert stronger_or_equal(mode, intention_mode(mode)) or (
            mode is LockMode.U  # U and IW share a strength level
        )


class TestMaxMode:
    """The owned-mode aggregation helper."""

    def test_empty_is_none(self):
        assert max_mode([]) is LockMode.NONE

    def test_picks_strongest(self):
        assert max_mode([LockMode.IR, LockMode.W, LockMode.R]) is LockMode.W

    @given(modes=st.lists(ALL, max_size=6))
    def test_result_dominates_all_inputs(self, modes):
        result = max_mode(modes)
        for mode in modes:
            assert stronger_or_equal(result, mode)

    @given(modes=st.lists(ALL, min_size=1, max_size=6))
    def test_result_is_one_of_inputs(self, modes):
        assert max_mode(modes) in modes or max_mode(modes) is LockMode.NONE


class TestRendering:
    """The table renderers used by the experiments harness."""

    def test_table_1a_marks_w_row_fully(self):
        rendered = render_table_1a()
        w_row = [line for line in rendered.splitlines() if line.startswith("W")]
        assert len(w_row) == 1
        assert w_row[0].count("X") == 5

    def test_table_1b_contains_all_modes(self):
        rendered = render_table_1b()
        for mode in REAL_MODES:
            assert str(mode) in rendered

    def test_table_2a_has_queue_and_forward(self):
        rendered = render_table_2a()
        assert "Q" in rendered and "F" in rendered

    def test_table_2b_shows_paper_example(self):
        rendered = render_table_2b()
        iw_row = [
            line for line in rendered.splitlines() if line.startswith("IW")
        ]
        assert len(iw_row) == 1
        assert "IW" in iw_row[0]

"""Tests for the Lamport clock."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.clock import LamportClock


class TestLamportClock:
    def test_starts_at_zero(self):
        assert LamportClock().time == 0

    def test_custom_start(self):
        assert LamportClock(start=41).tick() == 42

    def test_tick_increments(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2
        assert clock.time == 2

    def test_observe_advances_past_remote(self):
        clock = LamportClock()
        assert clock.observe(10) == 11

    def test_observe_of_older_time_still_advances(self):
        clock = LamportClock()
        clock.observe(10)
        assert clock.observe(3) == 12

    @given(ticks=st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
    def test_monotonic_under_any_event_sequence(self, ticks):
        clock = LamportClock()
        previous = clock.time
        for remote in ticks:
            current = (
                clock.observe(remote) if remote % 2 == 0 else clock.tick()
            )
            assert current > previous
            previous = current

    @given(remote=st.integers(min_value=0, max_value=10**9))
    def test_observe_result_exceeds_remote(self, remote):
        clock = LamportClock()
        assert clock.observe(remote) > remote

    def test_happened_before_ordering_across_clocks(self):
        """A message carries its sender's stamp; the receiver's next stamp
        is strictly larger — the property FIFO queue merges rely on."""

        sender, receiver = LamportClock(), LamportClock()
        stamp = sender.tick()
        receiver.observe(stamp)
        assert receiver.tick() > stamp

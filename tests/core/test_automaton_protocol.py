"""Multi-node protocol behaviour, including the paper's worked examples.

These tests drive several automata through the synchronous pump
(tests/helpers.py), asserting exact message flows, copyset shapes, grant
orders and the regression interleavings that motivated the attachment-
epoch mechanism.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import Pump  # noqa: E402

from repro.core.automaton import ProtocolOptions  # noqa: E402
from repro.core.messages import (  # noqa: E402
    FreezeMessage,
    GrantMessage,
    ReleaseMessage,
    RequestMessage,
    TokenMessage,
)
from repro.core.modes import LockMode  # noqa: E402

A, B, C, D, E = 0, 1, 2, 3, 4


class TestBasicGrantPaths:
    def test_copy_grant_makes_requester_a_child(self):
        pump = Pump(2)
        pump.request(A, LockMode.R)
        pump.request(B, LockMode.R)
        assert pump.granted_modes(B) == [LockMode.R]
        assert pump.automata[A].children == {B: LockMode.R}
        assert pump.automata[B].parent == A
        assert pump.token_holder() == A

    def test_w_request_transfers_token(self):
        pump = Pump(2)
        pump.request(B, LockMode.W)
        assert pump.granted_modes(B) == [LockMode.W]
        assert pump.token_holder() == B
        assert pump.automata[A].parent == B

    def test_u_request_transfers_token(self):
        pump = Pump(3)
        pump.request(B, LockMode.R)  # NONE < R: the token moves to B
        assert pump.token_holder() == B
        pump.request(C, LockMode.U)  # compatible with R, but stronger
        assert pump.granted_modes(C) == [LockMode.U]
        assert pump.token_holder() == C
        # The old token B still holds R and became C's child.
        assert pump.automata[C].children[B] is LockMode.R

    def test_incompatible_request_waits_for_release(self):
        pump = Pump(2)
        pump.request(A, LockMode.W)
        pump.request(B, LockMode.R)
        assert pump.granted_modes(B) == []
        assert pump.automata[A].queue_length == 1
        pump.release(A, LockMode.W)
        assert pump.granted_modes(B) == [LockMode.R]

    def test_rule2_local_reacquisition_without_messages(self):
        pump = Pump(2)
        pump.request(B, LockMode.R)   # B becomes a child owning R
        pump.release(B, LockMode.R)
        # B's owned mode dropped to NONE → release travelled to A; a new
        # request needs messages again.
        assert pump.automata[A].children == {}
        pump.request(B, LockMode.R)
        pump.release(B, LockMode.R)
        # Now keep a child under B so its owned mode persists:
        pump2 = Pump(3, parents={C: B})
        pump2.request(B, LockMode.R)
        pump2.request(C, LockMode.R)         # granted BY B (Rule 3.1)
        pump2.release(B, LockMode.R)          # B still owns R via C
        assert pump2.automata[B].owned_mode() is LockMode.R
        before = len(pump2.queue)
        out = pump2.automata[B].request(LockMode.R, ctx="local")
        assert out == []                       # Rule 2: zero messages
        assert pump2.grants[-1] == (B, LockMode.R, "local")
        assert len(pump2.queue) == before

    def test_child_grant_single_hop(self):
        pump = Pump(3, parents={C: B})
        pump.request(B, LockMode.R)
        sent_before = len(pump.grants)
        pump.request(C, LockMode.IR)  # B owns R, grants IR itself
        assert pump.granted_modes(C) == [LockMode.IR]
        assert pump.automata[B].children == {C: LockMode.IR}
        # The token node never saw C.
        assert C not in pump.automata[A].children


class TestPaperFigure2:
    """The grant/release/queue example of Figure 2."""

    def _setup(self):
        # A is the token and holds R; B holds IR under A; C holds IR under B.
        pump = Pump(4, parents={C: B, D: B})
        pump.request(A, LockMode.R)
        pump.request(B, LockMode.IR)
        pump.request(C, LockMode.IR)
        assert pump.automata[A].children == {B: LockMode.IR}
        assert pump.automata[B].children == {C: LockMode.IR}
        return pump

    def test_release_of_ir_with_owning_child_sends_no_message(self):
        pump = self._setup()
        out = pump.automata[B].release(LockMode.IR)
        assert out == []  # Rule 5.2: owned mode unchanged (C still owns IR)
        assert pump.automata[B].owned_mode() is LockMode.IR

    def test_queue_then_serve_after_grant(self):
        pump = self._setup()
        pump.automata[B].release(LockMode.IR)
        # B requests R; the request is in transit toward A...
        pump.send(B, pump.automata[B].request(LockMode.R))
        # ...when D's R request reaches B first: B queues it (Rule 4.1).
        pump.send(D, pump.automata[D].request(LockMode.R))
        deliver_to_b = [i for i, (s, e) in enumerate(pump.queue) if e.dest == B]
        sender, envelope = pump.queue[deliver_to_b[0]]
        del pump.queue[deliver_to_b[0]]
        replies = pump.automata[B].handle(envelope.message)
        assert replies == []  # queued locally, no forwarding
        assert pump.automata[B].queue_length == 1
        # Now the rest flows: A grants {B,R}, B serves the queued {D,R}.
        pump.drain()
        assert pump.granted_modes(B)[-1] is LockMode.R
        assert pump.granted_modes(D) == [LockMode.R]
        assert pump.automata[B].children[D] is LockMode.R
        pump.assert_quiescent_tree()


class TestPaperFigure3Freezing:
    """The frozen-modes example of Figure 3."""

    def _setup(self):
        # A is the token; A, B and C all hold IW (compatible intents).
        pump = Pump(5)
        pump.request(A, LockMode.IW)
        pump.request(B, LockMode.IW)
        pump.request(C, LockMode.IW)
        return pump

    def test_r_request_freezes_iw_at_token(self):
        pump = self._setup()
        pump.request(D, LockMode.R)
        assert pump.granted_modes(D) == []
        token = pump.automata[A]
        assert token.queue_length == 1
        assert token.frozen_modes == frozenset({LockMode.IW})
        # Potential IW granters (the IW children) were notified.
        assert pump.automata[B].frozen_modes == frozenset({LockMode.IW})
        assert pump.automata[C].frozen_modes == frozenset({LockMode.IW})

    def test_frozen_children_stop_granting(self):
        # E's requests route through B, a potential IW granter.
        pump = Pump(5, parents={E: B})
        pump.request(A, LockMode.IW)
        pump.request(B, LockMode.IW)
        pump.request(C, LockMode.IW)
        pump.request(D, LockMode.R)
        # E asks B for IW; B owns IW and could normally grant (Rule 3.1),
        # but IW is frozen → the request travels on to the token's queue.
        out = pump.automata[E].request(LockMode.IW)
        replies = pump.automata[B].handle(out[0].message)
        assert all(not isinstance(r.message, GrantMessage) for r in replies)
        pump.send(B, replies)
        pump.drain()
        assert pump.granted_modes(E) == []
        assert pump.automata[A].queue_length == 2

    def test_token_transferred_to_reader_after_drain(self):
        pump = self._setup()
        pump.request(D, LockMode.R)
        pump.release(B, LockMode.IW)
        pump.release(C, LockMode.IW)
        assert pump.granted_modes(D) == []  # A itself still holds IW
        pump.release(A, LockMode.IW)
        # Paper Fig. 3(c): once all IW released, the token moves to D.
        assert pump.granted_modes(D) == [LockMode.R]
        assert pump.token_holder() == D
        # The freeze has been lifted everywhere that was notified.
        assert pump.automata[D].frozen_modes == frozenset()

    def test_fifo_preserved_between_queued_requests(self):
        pump = self._setup()
        pump.request(D, LockMode.R)    # queued first
        pump.request(E, LockMode.IW)   # frozen → queued second
        pump.release(A, LockMode.IW)
        pump.release(B, LockMode.IW)
        pump.release(C, LockMode.IW)
        # R (first) must be granted before the later IW.
        assert pump.granted_modes(D) == [LockMode.R]
        assert pump.granted_modes(E) == []
        pump.release(D, LockMode.R)
        assert pump.granted_modes(E) == [LockMode.IW]


class TestStarvationWithoutFreezing:
    """§3.3: without Rule 6, compatible newcomers overtake forever."""

    def test_overtaking_happens_with_freezing_off(self):
        pump = Pump(4, options=ProtocolOptions(freezing=False))
        pump.request(A, LockMode.IW)
        pump.request(D, LockMode.R)   # queued at the token
        pump.request(B, LockMode.IW)  # ← overtakes: grant despite queued R
        assert pump.granted_modes(B) == [LockMode.IW]
        assert pump.granted_modes(D) == []

    def test_overtaking_blocked_with_freezing_on(self):
        pump = Pump(4)
        pump.request(A, LockMode.IW)
        pump.request(D, LockMode.R)
        pump.request(B, LockMode.IW)  # frozen → queued behind the R
        assert pump.granted_modes(B) == []
        pump.release(A, LockMode.IW)
        assert pump.granted_modes(D) == [LockMode.R]
        pump.release(D, LockMode.R)
        assert pump.granted_modes(B) == [LockMode.IW]


class TestTokenTransferMechanics:
    def test_queue_travels_with_token_and_merges_fifo(self):
        pump = Pump(4)
        pump.request(A, LockMode.R)
        # B requests U → compatible, stronger → the token will transfer,
        # but only after ... actually R < U and compatible: immediate.
        pump.request(B, LockMode.U)
        assert pump.token_holder() == B
        # C and D request W: queued at B (the new token).
        pump.request(C, LockMode.W)
        pump.request(D, LockMode.W)
        assert pump.automata[B].queue_length == 2
        pump.release(A, LockMode.R)
        pump.release(B, LockMode.U)
        # First W grant transfers token and the remaining queue to C.
        assert pump.granted_modes(C) == [LockMode.W]
        assert pump.token_holder() == C
        assert pump.automata[C].queue_length == 1
        pump.release(C, LockMode.W)
        assert pump.granted_modes(D) == [LockMode.W]

    def test_old_token_becomes_child_when_still_owning(self):
        pump = Pump(3)
        pump.request(A, LockMode.R)
        pump.request(B, LockMode.U)
        assert pump.automata[B].children == {A: LockMode.R}
        assert pump.automata[A].parent == B

    def test_old_token_not_child_when_owning_nothing(self):
        pump = Pump(2)
        pump.request(B, LockMode.W)
        assert pump.automata[B].children == {}
        assert pump.automata[A].parent == B

    def test_request_chases_moved_token(self):
        pump = Pump(3)
        pump.request(B, LockMode.W)       # token now at B
        pump.release(B, LockMode.W)
        # C still believes A is the root; the request must be forwarded.
        pump.request(C, LockMode.W)
        assert pump.granted_modes(C) == [LockMode.W]
        assert pump.token_holder() == C


class TestReleasePropagation:
    def test_release_propagates_only_on_owned_change(self):
        pump = Pump(3, parents={C: B})
        pump.request(A, LockMode.IR)  # anchor the token at A
        pump.request(B, LockMode.IR)
        pump.request(C, LockMode.IR)
        # B releases first: no owned change (C still owns IR) → no message.
        pump.release(B, LockMode.IR)
        assert pump.automata[A].children[B] is LockMode.IR
        # C releases: B loses its only child → owned drops → A notified.
        pump.release(C, LockMode.IR)
        assert B not in pump.automata[A].children
        assert pump.automata[B].children == {}

    def test_weakening_release_updates_parent_record(self):
        pump = Pump(2)
        pump.request(A, LockMode.R)  # anchor the token at A
        pump.request(B, LockMode.R)
        # B also takes IR locally (Rule 2), then drops the R.
        pump.automata[B].request(LockMode.IR)
        pump.release(B, LockMode.R)
        assert pump.automata[A].children[B] is LockMode.IR

    def test_upgrade_waits_for_copyset_drain(self):
        pump = Pump(3)
        pump.request(B, LockMode.R)
        pump.request(C, LockMode.U)   # token moves to C
        pump.upgrade(C)               # must wait for B's R
        assert pump.automata[C].held_modes == {LockMode.U: 1}
        assert pump.automata[C].frozen_modes >= {LockMode.R}
        pump.release(B, LockMode.R)
        assert pump.automata[C].held_modes == {LockMode.W: 1}
        assert pump.granted_modes(C)[-1] is LockMode.W


class TestStaleReleaseRegression:
    """The race fixed by attachment epochs (see GrantMessage docstring).

    B owns IR through child C, requests R (a message), loses C while the
    request is in flight (emitting Release(NONE)), and is granted R before
    the stale release arrives.  Without epoch filtering the parent drops
    the fresh attachment and the token can grant W while R is held.
    """

    def _race_pump(self):
        pump = Pump(3, parents={C: B})
        pump.request(A, LockMode.R)       # anchor the token: A holds R
        pump.request(B, LockMode.IR)      # B child of A with IR
        pump.request(C, LockMode.IR)      # C child of B with IR
        pump.release(B, LockMode.IR)      # B still owns IR via C
        return pump

    def test_fresh_grant_survives_stale_release(self):
        pump = self._race_pump()
        # B requests R (owned IR < R): message toward A, held back.
        request_out = pump.automata[B].request(LockMode.R)
        # C detaches; B's owned drops to NONE → Release(NONE) toward A.
        release_c = pump.automata[C].release(LockMode.IR)
        release_out = pump.automata[B].handle(release_c[0].message)
        assert isinstance(release_out[0].message, ReleaseMessage)
        # FIFO on the B→A channel: the request was sent first.
        grant_out = pump.automata[A].handle(request_out[0].message)
        assert isinstance(grant_out[0].message, GrantMessage)
        assert pump.automata[A].children[B] is LockMode.R
        # The stale release arrives after the grant: it must be ignored.
        pump.automata[A].handle(release_out[0].message)
        assert pump.automata[A].children == {B: LockMode.R}
        # Deliver the grant; a W elsewhere must now wait for B's R.
        pump.automata[B].handle(grant_out[0].message)
        pump.release(A, LockMode.R)       # A's own hold out of the way
        pump.send(C, pump.automata[C].request(LockMode.W))
        pump.drain()
        assert pump.granted_modes(C) == [LockMode.IR]  # W not granted yet
        assert pump.automata[A].queue_length == 1      # W waits for B's R
        pump.release(B, LockMode.R)
        pump.drain()
        assert pump.granted_modes(C)[-1] is LockMode.W

    def test_post_grant_release_still_applies(self):
        pump = self._race_pump()
        pump.request(B, LockMode.R)  # delivered normally
        pump.release(C, LockMode.IR)
        pump.release(B, LockMode.R)
        pump.release(A, LockMode.R)
        assert pump.automata[A].children == {}
        pump.assert_quiescent_tree()

    def test_release_crossing_grant_is_ignored(self):
        """The mirror-image race: the parent issues a grant, and the
        child's Release(NONE) — sent before the grant arrives — crosses it
        on the wire.  The release reflects pre-grant state and must not
        clobber the fresh copyset entry (attachment epochs are minted at
        grant-issue time precisely so this ordering is detectable)."""

        pump = self._race_pump()
        # B (owning IR only through child C) requests R; deliver it to A,
        # which issues the grant — but hold the grant back.
        request_out = pump.automata[B].request(LockMode.R)
        grant_out = pump.automata[A].handle(request_out[0].message)
        assert isinstance(grant_out[0].message, GrantMessage)
        assert pump.automata[A].children[B] is LockMode.R
        # Before the grant arrives, C detaches: B's owned drops to NONE
        # and its Release(NONE) crosses the in-flight grant.
        release_c = pump.automata[C].release(LockMode.IR)
        release_out = pump.automata[B].handle(release_c[0].message)
        assert isinstance(release_out[0].message, ReleaseMessage)
        pump.automata[A].handle(release_out[0].message)
        # The crossing release must have been dropped as stale.
        assert pump.automata[A].children == {B: LockMode.R}
        # Deliver the grant; B's R must keep blocking a W elsewhere.
        pump.automata[B].handle(grant_out[0].message)
        pump.release(A, LockMode.R)
        pump.send(C, pump.automata[C].request(LockMode.W))
        pump.drain()
        assert pump.granted_modes(C) == [LockMode.IR]
        pump.release(B, LockMode.R)
        pump.drain()
        assert pump.granted_modes(C)[-1] is LockMode.W
        pump.release(C, LockMode.W)
        pump.assert_quiescent_tree()


class TestDetachOnReparenting:
    """A node granted by a new parent detaches from its old one."""

    def test_detach_after_grant_from_ancestor(self):
        pump = Pump(3, parents={C: B})
        pump.request(A, LockMode.R)         # anchor the token at A
        pump.request(B, LockMode.IR)
        pump.request(C, LockMode.IR)        # C child of B
        # C requests R: B cannot grant (IR < R) → A grants → C re-parents.
        pump.request(C, LockMode.R)
        assert pump.automata[C].parent == A
        assert pump.automata[A].children[C] is LockMode.R
        assert C not in pump.automata[B].children
        pump.assert_quiescent_tree()

    def test_full_release_after_reparenting_reaches_everyone(self):
        pump = Pump(3, parents={C: B})
        pump.request(A, LockMode.R)
        pump.request(B, LockMode.IR)
        pump.request(C, LockMode.IR)
        pump.request(C, LockMode.R)
        pump.release(C, LockMode.R)
        pump.release(C, LockMode.IR)
        pump.release(B, LockMode.IR)
        pump.release(A, LockMode.R)
        # Everything drained: a W is now immediately grantable.
        pump.request(C, LockMode.W)
        assert pump.granted_modes(C)[-1] is LockMode.W


class TestFreezePiggybacking:
    def test_grant_carries_current_frozen_set(self):
        pump = Pump(4)
        pump.request(A, LockMode.IW)
        pump.request(D, LockMode.R)          # freezes IW at the token
        # B now gets IR granted; the grant carries the frozen set.
        pump.request(B, LockMode.IR)
        assert pump.granted_modes(B) == [LockMode.IR]
        assert LockMode.IW in pump.automata[B].frozen_modes

    def test_stale_freeze_from_former_parent_ignored(self):
        pump = Pump(2)
        pump.request(B, LockMode.R)
        stale = FreezeMessage(
            lock_id=pump.lock_id, sender=7, frozen=frozenset({LockMode.R})
        )
        assert pump.automata[B].handle(stale) == []
        assert pump.automata[B].frozen_modes == frozenset()

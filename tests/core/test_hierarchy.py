"""Tests for hierarchical resource naming and lock plans."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hierarchy import (
    ResourceTree,
    ancestors,
    lock_plan,
    release_plan,
)
from repro.core.modes import LockMode, intention_mode
from repro.errors import ConfigurationError

_component = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1,
    max_size=8,
)
_path = st.lists(_component, min_size=1, max_size=4).map("/".join)


class TestAncestors:
    def test_root_has_no_ancestors(self):
        assert ancestors("db") == []

    def test_two_levels(self):
        assert ancestors("db/tickets") == ["db"]

    def test_three_levels(self):
        assert ancestors("db/tickets/17") == ["db", "db/tickets"]

    @given(path=_path)
    def test_count_matches_depth(self, path):
        assert len(ancestors(path)) == path.count("/")

    @given(path=_path)
    def test_each_ancestor_is_a_prefix(self, path):
        for ancestor in ancestors(path):
            assert path.startswith(ancestor + "/")


class TestLockPlan:
    def test_leaf_read_plan(self):
        assert lock_plan("db/tickets/17", LockMode.R) == [
            ("db", LockMode.IR),
            ("db/tickets", LockMode.IR),
            ("db/tickets/17", LockMode.R),
        ]

    def test_leaf_write_plan_uses_iw(self):
        assert lock_plan("db/t/0", LockMode.W) == [
            ("db", LockMode.IW),
            ("db/t", LockMode.IW),
            ("db/t/0", LockMode.W),
        ]

    def test_upgrade_plan_uses_iw_intents(self):
        plan = lock_plan("db/t/0", LockMode.U)
        assert plan[0] == ("db", LockMode.IW)
        assert plan[-1] == ("db/t/0", LockMode.U)

    def test_root_plan_has_single_step(self):
        assert lock_plan("db", LockMode.R) == [("db", LockMode.R)]

    def test_none_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            lock_plan("db", LockMode.NONE)

    @given(path=_path, mode=st.sampled_from(
        [LockMode.IR, LockMode.R, LockMode.U, LockMode.IW, LockMode.W]
    ))
    def test_release_plan_is_exact_reverse(self, path, mode):
        assert release_plan(path, mode) == list(reversed(lock_plan(path, mode)))

    @given(path=_path, mode=st.sampled_from([LockMode.R, LockMode.W]))
    def test_ancestors_use_matching_intent(self, path, mode):
        plan = lock_plan(path, mode)
        for _lock, step_mode in plan[:-1]:
            assert step_mode is intention_mode(mode)


class TestResourceTree:
    def test_table_with_entries(self):
        tree = ResourceTree("db")
        rows = tree.add_table("tickets", entries=4)
        assert len(rows) == 4
        assert rows[0].lock_id == "db/tickets/0"
        assert "db/tickets" in tree
        assert len(tree) == 6  # root + table + 4 entries

    def test_leaves_excludes_interior(self):
        tree = ResourceTree("db")
        tree.add_table("t", entries=3)
        leaf_ids = {leaf.lock_id for leaf in tree.leaves()}
        assert leaf_ids == {"db/t/0", "db/t/1", "db/t/2"}

    def test_get_and_contains(self):
        tree = ResourceTree("db")
        tree.add("db", "t")
        assert tree.get("db/t") is not None
        assert tree.get("nope") is None
        assert "db/t" in tree
        assert "nope" not in tree

    def test_duplicate_rejected(self):
        tree = ResourceTree("db")
        tree.add("db", "t")
        with pytest.raises(ConfigurationError):
            tree.add("db", "t")

    def test_unknown_parent_rejected(self):
        tree = ResourceTree("db")
        with pytest.raises(ConfigurationError):
            tree.add("nope", "t")

    def test_multi_component_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceTree("a/b")
        tree = ResourceTree("db")
        with pytest.raises(ConfigurationError):
            tree.add("db", "a/b")

    def test_resource_name_property(self):
        tree = ResourceTree("db")
        resource = tree.add("db", "t")
        assert resource.name == "t"
        assert tree.root.name == "db"

    def test_iteration_in_insertion_order(self):
        tree = ResourceTree("db")
        tree.add("db", "a")
        tree.add("db", "b")
        assert [r.lock_id for r in tree] == ["db", "db/a", "db/b"]

"""Tests for the protocol wire format."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.messages import (
    Envelope,
    FreezeMessage,
    GrantMessage,
    ReleaseMessage,
    RequestId,
    RequestMessage,
    TokenMessage,
    fresh_attachment_seq,
    fresh_request_id,
    message_type_label,
)
from repro.core.modes import LockMode


class TestRequestId:
    def test_sort_key_orders_by_timestamp_first(self):
        early = RequestId(timestamp=1, origin=9, serial=100)
        late = RequestId(timestamp=2, origin=0, serial=0)
        assert early.sort_key() < late.sort_key()

    def test_sort_key_breaks_ties_by_origin_then_serial(self):
        a = RequestId(timestamp=5, origin=1, serial=7)
        b = RequestId(timestamp=5, origin=2, serial=3)
        c = RequestId(timestamp=5, origin=2, serial=4)
        assert a.sort_key() < b.sort_key() < c.sort_key()

    def test_fresh_ids_have_unique_increasing_serials(self):
        first = fresh_request_id(1, 0)
        second = fresh_request_id(1, 0)
        assert first.serial < second.serial

    def test_fresh_attachment_seq_shares_serial_space(self):
        request = fresh_request_id(1, 0)
        seq = fresh_attachment_seq()
        assert seq > request.serial


class TestMessageDataclasses:
    def _request(self, **overrides):
        base = dict(
            lock_id="L",
            sender=0,
            origin=0,
            mode=LockMode.R,
            request_id=fresh_request_id(1, 0),
        )
        base.update(overrides)
        return RequestMessage(**base)

    def test_messages_are_immutable(self):
        msg = self._request()
        with pytest.raises(dataclasses.FrozenInstanceError):
            msg.mode = LockMode.W

    def test_forwarding_preserves_origin(self):
        msg = self._request(origin=3)
        forwarded = dataclasses.replace(msg, sender=7)
        assert forwarded.origin == 3
        assert forwarded.sender == 7
        assert forwarded.request_id == msg.request_id

    def test_grant_carries_explicit_attachment_epoch(self):
        """Epochs are minted at grant-issue time, independent of the
        request's creation serial (see GrantMessage docstring for why)."""

        request_id = fresh_request_id(4, 2)
        grant = GrantMessage(
            lock_id="L", sender=0, mode=LockMode.R, request_id=request_id,
            attachment_seq=777,
        )
        assert grant.attachment_seq == 777

    def test_upgrade_flag_defaults_false(self):
        assert self._request().upgrade is False


class TestMessageTypeLabels:
    """Figure 7's legend maps one label per message type."""

    @pytest.mark.parametrize(
        "message,label",
        [
            (
                RequestMessage(
                    lock_id="L",
                    sender=0,
                    origin=0,
                    mode=LockMode.R,
                    request_id=RequestId(1, 0, 1),
                ),
                "request",
            ),
            (
                GrantMessage(
                    lock_id="L",
                    sender=0,
                    mode=LockMode.R,
                    request_id=RequestId(1, 0, 2),
                ),
                "grant",
            ),
            (
                TokenMessage(
                    lock_id="L",
                    sender=0,
                    granted_mode=LockMode.W,
                    request_id=RequestId(1, 0, 3),
                    prev_owner_mode=LockMode.NONE,
                ),
                "token",
            ),
            (
                ReleaseMessage(lock_id="L", sender=0, new_mode=LockMode.NONE),
                "release",
            ),
            (
                FreezeMessage(lock_id="L", sender=0, frozen=frozenset()),
                "freeze",
            ),
        ],
    )
    def test_labels(self, message, label):
        assert message_type_label(message) == label

    def test_envelope_carries_destination(self):
        release = ReleaseMessage(lock_id="L", sender=1, new_mode=LockMode.IR)
        envelope = Envelope(dest=4, message=release)
        assert envelope.dest == 4
        assert envelope.message is release

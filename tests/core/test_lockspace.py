"""Tests for the per-node lock multiplexer and token placement."""

from __future__ import annotations

import pytest

from repro.core.lockspace import (
    LockSpace,
    default_token_home,
    hashed_token_home,
)
from repro.core.messages import ReleaseMessage
from repro.core.modes import LockMode
from repro.errors import ConfigurationError


class TestTokenHome:
    def test_default_home_is_node_zero(self):
        assert default_token_home("anything") == 0

    def test_hashed_home_is_deterministic(self):
        home = hashed_token_home(8)
        assert home("db/t/3") == home("db/t/3")

    def test_hashed_home_within_range(self):
        home = hashed_token_home(5)
        for i in range(50):
            assert 0 <= home(f"lock-{i}") < 5

    def test_hashed_home_spreads_locks(self):
        home = hashed_token_home(16)
        homes = {home(f"db/t/{i}") for i in range(64)}
        assert len(homes) > 4  # not all piled onto one node

    def test_hashed_home_rejects_bad_count(self):
        with pytest.raises(ConfigurationError):
            hashed_token_home(0)


class TestLockSpace:
    def test_lazy_automaton_creation(self):
        space = LockSpace(node_id=0)
        assert space.lock_ids == []
        space.automaton("a")
        space.automaton("b")
        assert sorted(space.lock_ids) == ["a", "b"]

    def test_automaton_identity_is_stable(self):
        space = LockSpace(node_id=0)
        assert space.automaton("a") is space.automaton("a")

    def test_token_placement_follows_home_fn(self):
        home = lambda lock_id: 3 if lock_id == "x" else 0
        space0 = LockSpace(node_id=0, token_home=home)
        space3 = LockSpace(node_id=3, token_home=home)
        assert not space0.automaton("x").has_token
        assert space0.automaton("x").parent == 3
        assert space3.automaton("x").has_token
        assert space3.automaton("y").parent == 0

    def test_clock_shared_across_locks(self):
        space = LockSpace(node_id=0)
        space.request("a", LockMode.W)
        time_after_a = space.clock.time
        space.request("b", LockMode.W)
        assert space.clock.time >= time_after_a

    def test_handle_routes_by_lock_id(self):
        space = LockSpace(node_id=0)
        space.request("a", LockMode.R)
        # A release for lock "b" must not disturb lock "a".
        space.handle(ReleaseMessage(lock_id="b", sender=5, new_mode=LockMode.NONE))
        assert space.automaton("a").held_modes == {LockMode.R: 1}
        assert "b" in space.lock_ids

    def test_listener_shared_by_all_automata(self):
        events = []
        space = LockSpace(
            node_id=0,
            listener=lambda lock, mode, ctx: events.append((lock, mode)),
        )
        space.request("a", LockMode.R)
        space.request("b", LockMode.IW)
        assert events == [("a", LockMode.R), ("b", LockMode.IW)]

    def test_release_and_upgrade_pass_through(self):
        space = LockSpace(node_id=0)
        space.request("a", LockMode.U)
        assert space.upgrade("a") == []
        assert space.automaton("a").held_modes == {LockMode.W: 1}
        space.release("a", LockMode.W)
        assert space.automaton("a").held_modes == {}

    def test_automata_iterates_instantiated(self):
        space = LockSpace(node_id=0)
        space.automaton("a")
        space.automaton("b")
        assert {a.lock_id for a in space.automata()} == {"a", "b"}

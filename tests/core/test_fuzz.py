"""Property-based fuzzing of the protocol automata.

Hypothesis drives random operation scripts through random message
interleavings (beyond the per-pair-FIFO orders the exhaustive explorer
already covers, this fuzzer scales to more nodes and longer scripts).
Invariants checked on every path: pairwise-compatible holds, eventual
completion of every request, and a consistent quiescent tree.
"""

from __future__ import annotations

import sys
from collections import deque
from pathlib import Path
from typing import Dict, List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import Pump  # noqa: E402

from repro.core.automaton import ProtocolOptions  # noqa: E402
from repro.core.modes import LockMode, compatible  # noqa: E402

MODES = [LockMode.IR, LockMode.R, LockMode.U, LockMode.IW, LockMode.W]


class _FuzzHarness:
    """Drives a Pump with externally chosen delivery order."""

    def __init__(self, num_nodes: int, options: ProtocolOptions) -> None:
        self.pump = Pump(num_nodes, options=options)
        self.holds: List[Tuple[int, LockMode]] = []
        self.completed = 0

    def check_grants(self) -> None:
        """Fold new grants into holds, checking pairwise compatibility."""

        while self.completed < len(self.pump.grants):
            node, mode, _ctx = self.pump.grants[self.completed]
            for holder, held in self.holds:
                assert compatible(held, mode), (
                    f"{mode} granted to {node} while {holder} holds {held}"
                )
            self.holds.append((node, mode))
            self.completed += 1

    def deliver_one(self, choice: int) -> bool:
        """Deliver the choice-th queued message (mod queue length)."""

        queue = self.pump.queue
        if not queue:
            return False
        # Respect per-pair FIFO: pick among the heads of each channel.
        heads: Dict[Tuple[int, int], int] = {}
        for index, (sender, envelope) in enumerate(queue):
            key = (sender, envelope.dest)
            if key not in heads:
                heads[key] = index
        indices = sorted(heads.values())
        index = indices[choice % len(indices)]
        sender, envelope = queue[index]
        del queue[index]
        replies = self.pump.automata[envelope.dest].handle(envelope.message)
        self.pump.send(envelope.dest, replies)
        self.check_grants()
        return True

    def release_one(self, choice: int) -> bool:
        """Release the choice-th live hold."""

        if not self.holds:
            return False
        index = choice % len(self.holds)
        node, mode = self.holds.pop(index)
        out = self.pump.automata[node].release(mode)
        self.pump.send(node, out)
        self.check_grants()
        return True


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    num_nodes=st.integers(min_value=2, max_value=5),
    requests=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.sampled_from(MODES),
        ),
        min_size=1,
        max_size=6,
    ),
    schedule=st.lists(st.integers(min_value=0, max_value=99), max_size=60),
    options=st.sampled_from(
        [
            ProtocolOptions(),
            ProtocolOptions(freezing=False),
            ProtocolOptions(child_grants=False),
            ProtocolOptions(local_reentry=False),
            ProtocolOptions(priority_scheduling=True),
        ]
    ),
)
def test_random_interleavings_stay_safe_and_complete(
    num_nodes, requests, schedule, options
):
    harness = _FuzzHarness(num_nodes, options)
    pump = harness.pump
    pending_issues = deque(
        (node % num_nodes, mode) for node, mode in requests
    )
    issues: Dict[int, int] = {}

    def grants_for(node: int) -> int:
        return sum(1 for n, _m, _c in pump.grants if n == node)

    def issue_next() -> bool:
        if not pending_issues:
            return False
        node, mode = pending_issues[0]
        if issues.get(node, 0) > grants_for(node):
            return False  # one outstanding request per node
        pending_issues.popleft()
        issues[node] = issues.get(node, 0) + 1
        out = pump.automata[node].request(mode, ctx=(node, mode))
        pump.send(node, out)
        harness.check_grants()
        return True

    # Interleave issues, deliveries and releases per the random schedule.
    for choice in schedule:
        action = choice % 3
        if action == 0 and issue_next():
            continue
        if action == 1 and harness.deliver_one(choice // 3):
            continue
        harness.release_one(choice // 3)
        harness.check_grants()

    # Drain: issue what's left, deliver everything, release everything.
    steps = 0
    while pending_issues or pump.queue or harness.holds:
        steps += 1
        assert steps < 10_000, "fuzz run failed to converge"
        if issue_next():
            continue
        if harness.deliver_one(0):
            continue
        if harness.release_one(0):
            continue
        break
    harness.check_grants()
    # Every request eventually granted.
    assert len(pump.grants) == len(requests)
    # Tree consistent at quiescence.
    pump.assert_quiescent_tree()
    holders = [n for n, a in pump.automata.items() if a.has_token]
    assert len(holders) == 1

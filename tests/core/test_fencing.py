"""Fence-floor enforcement across all three protocol automata.

A revoked lease's fencing token must be rejected by every automaton
that could otherwise act on the dead holder's traffic — the
hierarchical protocol and both baselines.  The permutation tests drive
every interleaving of {lease expiry/revocation, stale delivery, late
renewal} and check the one property revocation safety needs: once the
fence floor is at ``T``, no later delivery presenting a token ``<= T``
has any effect, no matter what arrived before or arrives after.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.automaton import HierarchicalLockAutomaton, ProtocolOptions
from repro.core.clock import LamportClock
from repro.core.messages import RequestMessage, fresh_request_id
from repro.core.modes import LockMode
from repro.errors import ProtocolError
from repro.leases import LeaseConfig, LeaseTable, mint_fencing_token
from repro.naimi.automaton import NaimiAutomaton
from repro.naimi.messages import NaimiRequestMessage
from repro.raymond.automaton import RaymondAutomaton
from repro.raymond.messages import RaymondRequestMessage


def make_token_node():
    grants = []
    automaton = HierarchicalLockAutomaton(
        node_id=0,
        lock_id="L",
        clock=LamportClock(),
        parent=None,
        has_token=True,
        listener=lambda lock, mode, ctx: grants.append((mode, ctx)),
        options=ProtocolOptions(recovery=True),
    )
    return automaton, grants


def remote_request(origin: int, token: int, mode=LockMode.R):
    return RequestMessage(
        lock_id="L",
        sender=origin,
        origin=origin,
        mode=mode,
        request_id=fresh_request_id(timestamp=origin, origin=origin),
        fencing_token=token,
    )


class TestHierarchicalFencing:
    def test_unfenced_traffic_is_never_dropped(self):
        automaton, _ = make_token_node()
        automaton.raise_fence_floor(10_000)
        out = automaton.handle(remote_request(1, token=0))
        assert out  # token 0 = "no lease layer", always admitted

    def test_stale_token_is_dropped_silently(self):
        automaton, _ = make_token_node()
        floor = mint_fencing_token(0)
        automaton.raise_fence_floor(floor)
        assert automaton.handle(remote_request(1, token=floor)) == []
        assert automaton.handle(remote_request(1, token=floor - 1)) == []

    def test_fresh_token_clears_the_floor(self):
        automaton, _ = make_token_node()
        floor = mint_fencing_token(0)
        automaton.raise_fence_floor(floor)
        out = automaton.handle(remote_request(1, token=floor + 1))
        assert out

    def test_floor_is_monotonic(self):
        automaton, _ = make_token_node()
        automaton.raise_fence_floor(50)
        automaton.raise_fence_floor(20)
        assert automaton.fence_floor == 50

    def test_floor_requires_recovery_mode(self):
        automaton = HierarchicalLockAutomaton(
            node_id=0, lock_id="L", clock=LamportClock(),
            parent=None, has_token=True,
        )
        with pytest.raises(ProtocolError):
            automaton.raise_fence_floor(1)


class TestBaselineFencing:
    def test_naimi_drops_stale_requests(self):
        root = NaimiAutomaton(node_id=0, lock_id="L", last=None)
        floor = mint_fencing_token(0)
        root.raise_fence_floor(floor)
        stale = NaimiRequestMessage(
            lock_id="L", sender=1, origin=1, fencing_token=floor
        )
        assert root.handle(stale) == []
        fresh = NaimiRequestMessage(
            lock_id="L", sender=2, origin=2, fencing_token=floor + 1
        )
        out = root.handle(fresh)
        assert out and out[0].dest == 2  # The token moved to the requester.

    def test_raymond_drops_stale_requests(self):
        holder = RaymondAutomaton(node_id=0, lock_id="L", holder=None)
        floor = mint_fencing_token(0)
        holder.raise_fence_floor(floor)
        stale = RaymondRequestMessage(lock_id="L", sender=1,
                                      fencing_token=floor)
        assert holder.handle(stale) == []
        fresh = RaymondRequestMessage(lock_id="L", sender=1,
                                      fencing_token=floor + 1)
        out = holder.handle(fresh)
        assert out and out[0].dest == 1  # The privilege moved.

    def test_baseline_floors_are_monotonic(self):
        for automaton in (
            NaimiAutomaton(node_id=0, lock_id="L", last=None),
            RaymondAutomaton(node_id=0, lock_id="L", holder=None),
        ):
            automaton.raise_fence_floor(9)
            automaton.raise_fence_floor(3)
            assert automaton.fence_floor == 9


class TestExpiryRenewalInterleavings:
    """Every ordering of revocation vs. a revoked holder's last gasps."""

    def test_all_orderings_of_revoke_stale_fresh(self):
        # Three events in every order: the revoker raises the floor to
        # T, the dead holder's request (token T) arrives, a live
        # holder's request (token > T) arrives.  Invariants: the live
        # request is always served; the dead one is served only if it
        # arrived before the revocation (its lease was active then).
        stale_token = mint_fencing_token(0)
        fresh_token = stale_token + 1
        for order in itertools.permutations(("revoke", "stale", "fresh")):
            automaton, grants = make_token_node()
            revoked = False
            stale_output = None
            fresh_output = None
            for event in order:
                if event == "revoke":
                    automaton.raise_fence_floor(stale_token)
                    revoked = True
                elif event == "stale":
                    stale_output = automaton.handle(
                        remote_request(1, token=stale_token)
                    )
                    stale_served_after_revoke = revoked and bool(stale_output)
                    assert not stale_served_after_revoke, order
                else:
                    fresh_output = automaton.handle(
                        remote_request(2, token=fresh_token)
                    )
            assert fresh_output, order  # The live holder always got through.
            assert automaton.fence_floor == stale_token, order
            assert not grants  # Remote requests; grants leave as envelopes.

    def test_late_renewal_cannot_resurrect_a_revoked_token(self):
        # The mirror-table and the automaton floor interleave freely; in
        # every ordering where revocation precedes the stale delivery,
        # the delivery is dead — even when a late (clock-skewed) renewal
        # re-populates the mirror in between.
        config = LeaseConfig(duration=1.0, revoke_margin=0.5)
        stale_token = mint_fencing_token(0)
        row = ["L", "R", 1, stale_token]
        events = ("revoke", "late-renewal", "stale")
        for order in itertools.permutations(events):
            automaton, _ = make_token_node()
            mirror = LeaseTable(config)
            mirror.grant("L", "R", holder=1, token=stale_token, now=0.0)
            revoked_at = None
            for step, event in enumerate(order):
                if event == "revoke":
                    # Deadline + margin passed: drop and fence.
                    assert mirror.expired(now=2.0)
                    mirror.drop("L", 1)
                    automaton.raise_fence_floor(stale_token)
                    revoked_at = step
                elif event == "late-renewal":
                    # The partitioned holder's heartbeat finally lands,
                    # stamped with its own (stale) clock.
                    mirror.observe(1, [row], now=0.2)
                else:
                    out = automaton.handle(
                        remote_request(1, token=stale_token)
                    )
                    if revoked_at is not None:
                        assert out == [], order
            # Whatever the mirror now believes, the floor holds: any
            # future traffic under the dead token stays dead.
            assert automaton.handle(
                remote_request(1, token=stale_token)
            ) == []
            lease = mirror.get("L", 1)
            if lease is not None:
                # A resurrected mirror entry still cannot outrank the
                # floor: its token is the revoked one.
                assert lease.token <= automaton.fence_floor

"""Single-automaton behaviour: local paths, usage errors, downgrades."""

from __future__ import annotations

import pytest

from repro.core.automaton import HierarchicalLockAutomaton, ProtocolOptions
from repro.core.clock import LamportClock
from repro.core.modes import LockMode
from repro.errors import LockUsageError, ProtocolError


def make_token_node(**kwargs):
    grants = []
    automaton = HierarchicalLockAutomaton(
        node_id=0,
        lock_id="L",
        clock=LamportClock(),
        parent=None,
        has_token=True,
        listener=lambda lock, mode, ctx: grants.append((mode, ctx)),
        **kwargs,
    )
    return automaton, grants


class TestConstruction:
    def test_token_node_must_have_no_parent(self):
        with pytest.raises(ProtocolError):
            HierarchicalLockAutomaton(
                node_id=0, lock_id="L", clock=LamportClock(),
                parent=1, has_token=True,
            )

    def test_non_token_node_needs_parent(self):
        with pytest.raises(ProtocolError):
            HierarchicalLockAutomaton(
                node_id=0, lock_id="L", clock=LamportClock(),
                parent=None, has_token=False,
            )

    def test_initial_state_is_idle(self):
        automaton, _ = make_token_node()
        assert automaton.is_idle()
        assert automaton.owned_mode() is LockMode.NONE
        assert automaton.held_mode() is LockMode.NONE


class TestTokenLocalGrants:
    """The token node serves its own compatible requests without messages."""

    @pytest.mark.parametrize(
        "mode", [LockMode.IR, LockMode.R, LockMode.U, LockMode.IW, LockMode.W]
    )
    def test_any_mode_grantable_when_idle(self, mode):
        automaton, grants = make_token_node()
        out = automaton.request(mode, ctx="x")
        assert out == []
        assert grants == [(mode, "x")]
        assert automaton.held_modes == {mode: 1}
        assert automaton.owned_mode() is mode

    def test_multiple_compatible_holds_accumulate(self):
        automaton, grants = make_token_node()
        automaton.request(LockMode.IR)
        automaton.request(LockMode.R)
        automaton.request(LockMode.IR)
        assert automaton.held_modes == {LockMode.IR: 2, LockMode.R: 1}
        assert automaton.owned_mode() is LockMode.R

    def test_incompatible_own_request_queues(self):
        automaton, grants = make_token_node()
        automaton.request(LockMode.U)
        out = automaton.request(LockMode.W)  # W conflicts with held U
        assert out == []  # no children → no freeze messages to send
        assert automaton.queue_length == 1
        assert automaton.pending_mode is LockMode.W
        assert len(grants) == 1

    def test_queued_own_request_served_on_release(self):
        automaton, grants = make_token_node()
        automaton.request(LockMode.U)
        automaton.request(LockMode.W)
        automaton.release(LockMode.U)
        assert [m for m, _ in grants] == [LockMode.U, LockMode.W]
        assert automaton.held_modes == {LockMode.W: 1}

    def test_release_returns_no_messages_at_root(self):
        automaton, _ = make_token_node()
        automaton.request(LockMode.R)
        assert automaton.release(LockMode.R) == []
        assert automaton.is_idle() or automaton.has_token


class TestUsageErrors:
    def test_request_none_mode_rejected(self):
        automaton, _ = make_token_node()
        with pytest.raises(LockUsageError):
            automaton.request(LockMode.NONE)

    def test_double_pending_rejected(self):
        automaton, _ = make_token_node()
        automaton.request(LockMode.U)
        automaton.request(LockMode.W)  # queued, pending
        with pytest.raises(LockUsageError):
            automaton.request(LockMode.R)

    def test_release_unheld_mode_rejected(self):
        automaton, _ = make_token_node()
        with pytest.raises(LockUsageError):
            automaton.release(LockMode.R)

    def test_release_wrong_mode_rejected(self):
        automaton, _ = make_token_node()
        automaton.request(LockMode.R)
        with pytest.raises(LockUsageError):
            automaton.release(LockMode.W)

    def test_upgrade_without_u_rejected(self):
        automaton, _ = make_token_node()
        automaton.request(LockMode.R)
        with pytest.raises(LockUsageError):
            automaton.upgrade()

    def test_handle_foreign_lock_message_rejected(self):
        from repro.core.messages import ReleaseMessage

        automaton, _ = make_token_node()
        with pytest.raises(ProtocolError):
            automaton.handle(
                ReleaseMessage(lock_id="OTHER", sender=1, new_mode=LockMode.NONE)
            )


class TestUpgradeLocal:
    """Rule 7 at an uncontended token node."""

    def test_immediate_upgrade_when_sole_holder(self):
        automaton, grants = make_token_node()
        automaton.request(LockMode.U)
        out = automaton.upgrade(ctx="up")
        assert out == []
        assert automaton.held_modes == {LockMode.W: 1}
        assert grants[-1] == (LockMode.W, "up")

    def test_upgrade_blocked_by_other_local_hold(self):
        automaton, grants = make_token_node()
        automaton.request(LockMode.IR)
        automaton.request(LockMode.U)
        automaton.upgrade()
        # Still holding IR alongside U → conversion must wait.
        assert automaton.held_modes == {LockMode.IR: 1, LockMode.U: 1}
        automaton.release(LockMode.IR)
        assert automaton.held_modes == {LockMode.W: 1}

    def test_release_u_while_upgrade_pending_rejected(self):
        automaton, _ = make_token_node()
        automaton.request(LockMode.IR)
        automaton.request(LockMode.U)
        automaton.upgrade()
        with pytest.raises(LockUsageError):
            automaton.release(LockMode.U)

    def test_double_upgrade_rejected(self):
        automaton, _ = make_token_node()
        automaton.request(LockMode.IR)
        automaton.request(LockMode.U)
        automaton.upgrade()
        with pytest.raises(LockUsageError):
            automaton.upgrade()


class TestDowngrade:
    """The change_mode weakening extension."""

    LEGAL = [
        (LockMode.W, LockMode.IW),
        (LockMode.W, LockMode.U),
        (LockMode.W, LockMode.R),
        (LockMode.W, LockMode.IR),
        (LockMode.U, LockMode.R),
        (LockMode.U, LockMode.IR),
        (LockMode.IW, LockMode.IR),
        (LockMode.R, LockMode.IR),
    ]

    ILLEGAL = [
        (LockMode.IW, LockMode.U),   # would conflict with concurrent IW
        (LockMode.IW, LockMode.R),   # would conflict with concurrent IW
        (LockMode.U, LockMode.IW),   # not strictly weaker
        (LockMode.R, LockMode.W),    # an upgrade, not a downgrade
        (LockMode.IR, LockMode.IR),  # not strictly weaker
    ]

    @pytest.mark.parametrize("held,to", LEGAL)
    def test_legal_downgrades(self, held, to):
        automaton, _ = make_token_node()
        automaton.request(held)
        automaton.downgrade(held, to)
        assert automaton.held_modes == {to: 1}

    @pytest.mark.parametrize("held,to", ILLEGAL)
    def test_illegal_downgrades_rejected(self, held, to):
        automaton, _ = make_token_node()
        automaton.request(held)
        with pytest.raises(LockUsageError):
            automaton.downgrade(held, to)

    def test_downgrade_requires_holding(self):
        automaton, _ = make_token_node()
        with pytest.raises(LockUsageError):
            automaton.downgrade(LockMode.W, LockMode.R)

    def test_downgrade_to_none_rejected(self):
        automaton, _ = make_token_node()
        automaton.request(LockMode.W)
        with pytest.raises(LockUsageError):
            automaton.downgrade(LockMode.W, LockMode.NONE)

    def test_downgrade_unblocks_queued_request(self):
        """Weakening W to R lets a compatible queued R proceed."""

        from repro.core.messages import RequestMessage, fresh_request_id

        automaton, _ = make_token_node()
        automaton.request(LockMode.W)
        request = RequestMessage(
            lock_id="L", sender=1, origin=1, mode=LockMode.R,
            request_id=fresh_request_id(1, 1),
        )
        assert automaton.handle(request) == []  # queued: R vs W conflict
        assert automaton.queue_length == 1
        out = automaton.downgrade(LockMode.W, LockMode.R)
        grant_envelopes = [e for e in out if e.dest == 1]
        assert len(grant_envelopes) == 1
        assert automaton.queue_length == 0


class TestAblationOptions:
    def test_local_reentry_disabled_sends_request(self):
        automaton, grants = make_token_node()
        # The token node is unaffected by local_reentry (it is the root);
        # check a non-token node instead.
        child = HierarchicalLockAutomaton(
            node_id=1, lock_id="L", clock=LamportClock(), parent=0,
            has_token=False,
            options=ProtocolOptions(local_reentry=False),
        )
        # Even with nothing owned, requests always go out — just confirm
        # the option leaves the message path intact.
        out = child.request(LockMode.IR)
        assert len(out) == 1
        assert out[0].dest == 0

    def test_options_default_to_full_protocol(self):
        from repro.core.automaton import FULL_PROTOCOL

        assert FULL_PROTOCOL.freezing
        assert FULL_PROTOCOL.local_queues
        assert FULL_PROTOCOL.child_grants
        assert FULL_PROTOCOL.local_reentry

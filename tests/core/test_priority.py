"""Tests for the priority-scheduling extension (strict priority arbitration).

The paper's introduction claims "request arbitration through strict
priority ordering" building on the authors' prioritized-token prior work
[11, 12].  With ``ProtocolOptions.priority_scheduling`` the local queues
order by (upgrades, priority desc, FIFO) instead of pure FIFO.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from helpers import Pump  # noqa: E402

from repro.core.automaton import ProtocolOptions  # noqa: E402
from repro.core.modes import LockMode  # noqa: E402
from repro.verification.explorer import explore_scenario  # noqa: E402

A, B, C, D = 0, 1, 2, 3

PRIORITY_ON = ProtocolOptions(priority_scheduling=True)


def _request_with_priority(pump, node, mode, priority):
    out = pump.automata[node].request(mode, priority=priority)
    pump.send(node, out)
    pump.drain()


class TestPriorityQueueOrder:
    def test_higher_priority_served_first(self):
        pump = Pump(4, options=PRIORITY_ON)
        pump.request(A, LockMode.W)  # block everyone
        _request_with_priority(pump, B, LockMode.W, priority=1)
        _request_with_priority(pump, C, LockMode.W, priority=9)
        pump.release(A, LockMode.W)
        # C (priority 9) overtook B (priority 1) despite arriving later.
        assert pump.granted_modes(C) == [LockMode.W]
        assert pump.granted_modes(B) == []
        pump.release(C, LockMode.W)
        assert pump.granted_modes(B) == [LockMode.W]

    def test_fifo_within_equal_priority(self):
        pump = Pump(4, options=PRIORITY_ON)
        pump.request(A, LockMode.W)
        _request_with_priority(pump, B, LockMode.W, priority=5)
        _request_with_priority(pump, C, LockMode.W, priority=5)
        pump.release(A, LockMode.W)
        assert pump.granted_modes(B) == [LockMode.W]
        assert pump.granted_modes(C) == []

    def test_default_protocol_ignores_priority(self):
        pump = Pump(4)  # FIFO protocol as published
        pump.request(A, LockMode.W)
        _request_with_priority(pump, B, LockMode.W, priority=1)
        _request_with_priority(pump, C, LockMode.W, priority=9)
        pump.release(A, LockMode.W)
        assert pump.granted_modes(B) == [LockMode.W]  # FIFO wins

    def test_upgrade_still_precedes_everything(self):
        pump = Pump(4, options=PRIORITY_ON)
        pump.request(B, LockMode.U)          # token moves to B
        _request_with_priority(pump, C, LockMode.W, priority=100)
        pump.upgrade(B)                       # queued upgrade
        # Even a priority-100 W cannot precede the upgrade: the upgrader
        # holds U, so serving W first would deadlock.
        assert pump.automata[B].held_modes == {LockMode.W: 1}
        assert pump.granted_modes(C) == []
        pump.release(B, LockMode.W)
        assert pump.granted_modes(C) == [LockMode.W]

    def test_priority_survives_token_transfer_merge(self):
        pump = Pump(4, options=PRIORITY_ON)
        pump.request(A, LockMode.R)
        _request_with_priority(pump, B, LockMode.U, priority=0)  # transfers
        assert pump.token_holder() == B
        _request_with_priority(pump, C, LockMode.W, priority=1)
        _request_with_priority(pump, D, LockMode.W, priority=8)
        pump.release(A, LockMode.R)
        pump.release(B, LockMode.U)
        # D's higher priority wins the merged queue.
        assert pump.granted_modes(D) == [LockMode.W]
        assert pump.granted_modes(C) == []
        pump.release(D, LockMode.W)
        assert pump.granted_modes(C) == [LockMode.W]


class TestPrioritySafety:
    def test_safety_under_priority_scheduling(self):
        """Every interleaving of a mixed scenario stays safe with
        priorities enabled (priorities reorder, never relax, grants)."""

        stats = explore_scenario(
            3,
            [(1, LockMode.IR), (2, LockMode.R), (0, LockMode.W)],
            options=PRIORITY_ON,
        )
        assert stats.terminal_states >= 1

    def test_compatible_requests_still_concurrent(self):
        pump = Pump(4, options=PRIORITY_ON)
        pump.request(A, LockMode.R)
        _request_with_priority(pump, B, LockMode.R, priority=1)
        _request_with_priority(pump, C, LockMode.IR, priority=2)
        assert pump.granted_modes(B) == [LockMode.R]
        assert pump.granted_modes(C) == [LockMode.IR]

"""Frame codec edge cases: torn tails and CRC corruption.

The WAL's whole value is in what happens when the bytes are *wrong*:
a process dying mid-append leaves a torn tail that must be discarded
without losing the intact prefix, and a flipped bit inside one frame
must skip exactly that record — counted, never silently — while replay
continues behind it.
"""

from __future__ import annotations

import struct
import zlib

from repro.persist.wal import MAX_RECORD_BYTES, encode_frame, scan_frames


def _records(count: int):
    return [{"lock": f"lock-{i}", "seq": i} for i in range(count)]


class TestRoundTrip:
    def test_frames_round_trip_in_order(self):
        blob = b"".join(encode_frame(r) for r in _records(5))
        records, good_end, report = scan_frames(blob)
        assert records == _records(5)
        assert good_end == len(blob)
        assert report.records == 5
        assert report.corrupt_skipped == 0
        assert report.torn_bytes == 0

    def test_empty_blob_is_a_clean_log(self):
        records, good_end, report = scan_frames(b"")
        assert records == []
        assert good_end == 0
        assert report.to_payload() == {
            "records": 0, "corrupt_skipped": 0, "torn_bytes": 0
        }

    def test_oversized_record_is_rejected_at_encode_time(self):
        import pytest

        with pytest.raises(ValueError):
            encode_frame({"blob": "x" * (MAX_RECORD_BYTES + 1)})


class TestTornTail:
    def test_truncated_final_frame_is_discarded(self):
        intact = b"".join(encode_frame(r) for r in _records(3))
        torn = encode_frame({"lock": "lock-torn"})[:-4]
        records, good_end, report = scan_frames(intact + torn)
        assert records == _records(3)
        assert good_end == len(intact)
        assert report.torn_bytes == len(torn)

    def test_partial_header_is_a_torn_tail(self):
        intact = encode_frame({"lock": "a"})
        records, good_end, report = scan_frames(intact + b"\x00\x01")
        assert records == [{"lock": "a"}]
        assert good_end == len(intact)
        assert report.torn_bytes == 2

    def test_garbage_length_field_stops_the_scan(self):
        # A length above MAX_RECORD_BYTES is framing damage, not a real
        # frame — everything from there on is the torn suffix.
        intact = encode_frame({"lock": "a"})
        garbage = struct.pack(">II", MAX_RECORD_BYTES + 1, 0) + b"xx"
        records, good_end, report = scan_frames(intact + garbage)
        assert records == [{"lock": "a"}]
        assert good_end == len(intact)
        assert report.torn_bytes == len(garbage)


class TestCorruptRecords:
    def test_crc_mismatch_skips_only_that_record(self):
        frames = [encode_frame(r) for r in _records(3)]
        # Flip one payload byte inside the middle frame: framing stays
        # intact, the CRC does not.
        middle = bytearray(frames[1])
        middle[-1] ^= 0xFF
        blob = frames[0] + bytes(middle) + frames[2]
        records, good_end, report = scan_frames(blob)
        assert records == [_records(3)[0], _records(3)[2]]
        assert good_end == len(blob)
        assert report.records == 2
        assert report.corrupt_skipped == 1
        assert report.torn_bytes == 0

    def test_valid_crc_but_non_object_json_is_skipped(self):
        payload = b"[1,2,3]"  # Valid JSON, but not a record dict.
        frame = struct.pack(
            ">II", len(payload), zlib.crc32(payload)
        ) + payload
        good = encode_frame({"lock": "a"})
        records, good_end, report = scan_frames(frame + good)
        assert records == [{"lock": "a"}]
        assert good_end == len(frame) + len(good)
        assert report.corrupt_skipped == 1

    def test_corruption_and_torn_tail_report_independently(self):
        frames = [encode_frame(r) for r in _records(2)]
        corrupt = bytearray(frames[0])
        corrupt[-2] ^= 0x10
        torn = frames[1][: len(frames[1]) // 2]
        records, good_end, report = scan_frames(bytes(corrupt) + torn)
        assert records == []
        assert report.corrupt_skipped == 1
        assert report.torn_bytes == len(torn)
        assert good_end == len(corrupt)

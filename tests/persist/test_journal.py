"""Journal recovery semantics on live protocol state.

Cross-checks the two durability layers against each other and against
the observability layer: what ``recover_node_state`` reconstructs must
match what a live automaton reports via ``snapshot()``, through
compaction, file damage and repeated crashes.
"""

from __future__ import annotations

from repro.core.modes import LockMode
from repro.faults.recovery import RecoveryConfig
from repro.faults.simcluster import ResilientSimCluster
from repro.persist import (
    FilePersistence,
    MemoryPersistence,
    NodeJournal,
    recover_node_state,
)
from repro.services.sessions import SESSIONS_JOURNAL_KEY
from repro.sim.engine import Process, Timeout
from repro.verification.invariants import CompatibilityMonitor

FAST_SIM = RecoveryConfig(
    heartbeat_interval=0.2,
    suspect_timeout=1.0,
    retry_base=0.3,
    retry_cap=1.2,
    channel_retry_base=0.2,
    channel_retry_cap=0.8,
    probe_timeout=0.5,
    orphan_interval=0.25,
    regen_settle=0.6,
)


def _run_workload(persistence, until: float = 10.0):
    """Drive a small cluster to a quiescent, journaled state."""

    cluster = ResilientSimCluster(
        3,
        seed=0,
        monitor=CompatibilityMonitor(),
        config=FAST_SIM,
        persistence=persistence,
    )
    sim = cluster.sim

    def worker(node, lock_id, mode):
        def body():
            yield Timeout(sim, 0.2 * node)
            for _ in range(3):
                yield cluster.client(node).acquire(lock_id, mode)
                yield Timeout(sim, 0.3)
                cluster.client(node).release(lock_id, mode)
                yield Timeout(sim, 0.2)

        return body

    Process(sim, worker(0, "lock-a", LockMode.W)())
    Process(sim, worker(1, "lock-a", LockMode.R)())
    Process(sim, worker(2, "lock-b", LockMode.IW)())
    sim.run(until=until)
    return cluster


class TestReplayEquivalence:
    def test_recovered_state_matches_live_snapshot(self):
        """Snapshot + WAL replay reconstructs exactly what the live
        automaton's ``snapshot()`` reports (the layers cross-check)."""

        persistence = MemoryPersistence()
        cluster = _run_workload(persistence)
        for node in range(3):
            state, report = recover_node_state(persistence.store_for(node))
            live = {
                automaton.lock_id: automaton
                for automaton in cluster.lockspaces[node].automata()
            }
            # Sessions ride the WAL under a reserved non-lock key.
            state.pop(SESSIONS_JOURNAL_KEY, None)
            # Every journaled lock the node still knows must agree.
            for lock_id, payload in state.items():
                assert lock_id in live
                assert payload["snapshot"] == (
                    live[lock_id].snapshot().to_payload()
                ), f"node {node} lock {lock_id} diverged"
            assert report["records_malformed"] == 0
            assert report["corrupt_skipped"] == 0
            assert report["torn_bytes"] == 0

    def test_compaction_preserves_the_recovered_state(self):
        persistence = MemoryPersistence()
        cluster = _run_workload(persistence)
        before = {
            node: recover_node_state(persistence.store_for(node))[0]
            for node in range(3)
        }
        for journal in cluster.journals.values():
            journal.compact()
        for node in range(3):
            state, report = recover_node_state(persistence.store_for(node))
            assert state == before[node]
            # Everything now lives in the snapshot; the log is empty.
            assert report["snapshot_loaded"] is True
            assert report["records_replayed"] == 0

    def test_memory_and_file_backends_recover_identical_state(self, tmp_path):
        # The global attachment-seq stream keeps counting across runs,
        # so absolute seqs differ; the seq-free protocol snapshots must
        # be identical between the two backends.
        mem = MemoryPersistence()
        disk = FilePersistence(str(tmp_path))
        _run_workload(mem)
        _run_workload(disk)
        for node in range(3):
            mem_state, _ = recover_node_state(mem.store_for(node))
            disk_state, _ = recover_node_state(disk.store_for(node))
            assert mem_state.pop(SESSIONS_JOURNAL_KEY, None) == (
                disk_state.pop(SESSIONS_JOURNAL_KEY, None)
            )
            assert {
                lock: payload["snapshot"]
                for lock, payload in mem_state.items()
            } == {
                lock: payload["snapshot"]
                for lock, payload in disk_state.items()
            }


class TestFileDamage:
    def test_torn_tail_is_truncated_and_reported(self, tmp_path):
        persistence = FilePersistence(str(tmp_path))
        _run_workload(persistence)
        persistence.close()
        store = persistence.store_for(0)
        with open(store.wal_path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x30partial")  # Died mid-append.
        state, report = recover_node_state(store)
        assert report["torn_bytes"] > 0
        assert state  # The intact prefix still replays.
        # The load repaired the file: a second recovery is clean.
        state2, report2 = recover_node_state(store)
        assert report2["torn_bytes"] == 0
        assert state2 == state

    def test_corrupt_record_is_skipped_and_counted(self, tmp_path):
        persistence = FilePersistence(str(tmp_path))
        _run_workload(persistence)
        persistence.close()
        store = persistence.store_for(0)
        with open(store.wal_path, "rb") as handle:
            blob = bytearray(handle.read())
        assert len(blob) > 16
        blob[12] ^= 0xFF  # Flip a byte inside the first frame's payload.
        with open(store.wal_path, "wb") as handle:
            handle.write(bytes(blob))
        state, report = recover_node_state(store)
        assert report["corrupt_skipped"] == 1
        # Later records for the same lock overwrite the damaged one, so
        # replay still converges on a full state.
        assert state


class TestDoubleCrash:
    def test_crash_during_replay_recovers_identically(self):
        """A node that dies again mid-rejoin loses nothing: recovery is
        a pure read until the post-rejoin compaction, so a second replay
        sees the same snapshot + log and lands in the same state."""

        persistence = MemoryPersistence()
        _run_workload(persistence)
        store = persistence.store_for(0)
        first, first_report = recover_node_state(store)
        # The "crash mid-replay": nothing was compacted or appended, the
        # journal handle simply went away.  Recover again from scratch.
        second, second_report = recover_node_state(store)
        assert second == first
        assert second_report == first_report

    def test_crash_after_rejoin_compaction_still_matches(self):
        persistence = MemoryPersistence()
        cluster = _run_workload(persistence)
        store = persistence.store_for(0)
        before, _ = recover_node_state(store)
        # Simulate the restart path's post-rejoin re-seed: adopt the
        # state into a fresh journal under a bumped boot, compact, then
        # die again before any new protocol activity.
        journal = NodeJournal(store, 0, boot=1)
        journal.attach(cluster.lockspaces[0])
        journal.compact()
        journal.close()
        after, report = recover_node_state(store)
        assert report["snapshot_boot"] == 1
        # The fresh journal has no session source, so the re-seeded
        # snapshot carries lock state only.
        before.pop(SESSIONS_JOURNAL_KEY, None)
        for lock_id, payload in before.items():
            assert after[lock_id]["snapshot"] == payload["snapshot"]

"""Application-session lifecycle: holds, journal roundtrip, reclaim.

The reclaim safety argument lives in the advertisement gate: a hold is
reclaimable after a durable restart only if at least one pre-crash
heartbeat advertised its lease (peers then provably defer eviction and
regeneration until expiry).  These tests pin that gate down alongside
the plain lifecycle mechanics (grant/release multisets, expiry, GC, and
the ``"@sessions"`` journal payload).
"""

from __future__ import annotations

from repro.services.sessions import (
    ACTIVE,
    EXPIRED,
    Session,
    SessionManager,
)

TTL = 7.5


class TestSessionHolds:
    def test_grant_release_keeps_multiset_counts(self):
        session = Session(session_id="s0", node=0)
        session.note_grant("L", "R", now=1.0)
        session.note_grant("L", "R", now=2.0)
        session.note_grant("M", "W", now=3.0)
        assert session.holds == {("L", "R"): 2, ("M", "W"): 1}
        assert session.hold_count == 3
        session.note_release("L", "R", now=4.0)
        assert session.holds[("L", "R")] == 1
        session.note_release("L", "R", now=5.0)
        assert ("L", "R") not in session.holds
        assert session.last_active == 5.0

    def test_release_of_unheld_mode_is_harmless(self):
        session = Session(session_id="s0", node=0)
        session.note_release("L", "W", now=1.0)
        assert session.holds == {}

    def test_advertisement_tracks_hold_counts_per_lock(self):
        session = Session(session_id="s0", node=0)
        session.note_grant("L", "R", now=1.0)
        session.note_grant("L", "IW", now=1.0)
        session.note_grant("M", "W", now=1.0)
        assert session.note_advertised("L") is True
        assert session.advertised == {("L", "R"): 1, ("L", "IW"): 1}
        # Re-advertising an unchanged lock is idempotent.
        assert session.note_advertised("L") is False

    def test_release_caps_the_advertised_count(self):
        # Advertised counts must never exceed live holds, or the
        # reclaim budget would resurrect a hold that was released.
        session = Session(session_id="s0", node=0)
        session.note_grant("L", "R", now=1.0)
        session.note_grant("L", "R", now=1.0)
        session.note_advertised("L")
        session.note_release("L", "R", now=2.0)
        assert session.advertised[("L", "R")] == 1
        session.note_release("L", "R", now=3.0)
        assert ("L", "R") not in session.advertised

    def test_expire_clears_holds_and_advertisements(self):
        session = Session(session_id="s0", node=0)
        session.note_grant("L", "W", now=1.0)
        session.note_advertised("L")
        session.expire()
        assert session.state == EXPIRED
        assert session.holds == {} and session.advertised == {}

    def test_payload_roundtrip_preserves_advertised(self):
        session = Session(session_id="s7", node=3, last_active=9.25)
        session.note_grant("L", "R", now=9.25)
        session.note_grant("M", "W", now=9.25)
        session.note_advertised("L")
        clone = Session.from_payload(session.to_payload())
        assert clone.session_id == "s7" and clone.node == 3
        assert clone.holds == session.holds
        assert clone.advertised == session.advertised
        assert clone.last_active == 9.25


class TestSessionManager:
    def test_default_session_is_stable(self):
        manager = SessionManager(2)
        assert manager.default_session() is manager.default_session()
        assert manager.default_session().session_id == "s2"

    def test_note_advertised_skips_expired_sessions(self):
        manager = SessionManager(0)
        manager.note_grant("L", "W", now=1.0)
        manager.default_session().expire()
        assert manager.note_advertised(["L"]) is False

    def test_expire_all_counts(self):
        manager = SessionManager(0)
        manager.open("a", now=1.0)
        manager.open("b", now=1.0)
        assert manager.expire_all() == 2
        assert manager.expired_count == 2
        assert manager.expire_all() == 0

    def test_gc_ages_out_silent_empty_sessions(self):
        manager = SessionManager(0)
        manager.open("idle", now=1.0)
        busy = manager.open("busy", now=1.0)
        busy.note_grant("L", "W", now=1.0)
        assert manager.gc(now=1.0 + TTL, ttl=TTL) == 0  # Exactly at TTL.
        assert manager.gc(now=2.0 + TTL, ttl=TTL) == 1
        assert manager.get("idle") is None
        # A session still owning holds is never collected, even expired.
        busy.state = EXPIRED
        busy.holds = {("L", "W"): 1}
        assert manager.gc(now=100.0, ttl=TTL) == 0
        assert manager.get("busy") is not None

    def test_export_restore_roundtrip(self):
        manager = SessionManager(1)
        manager.note_grant("L", "R", now=2.0)
        manager.note_advertised(["L"])
        manager.open("extra", now=3.0)
        restored = SessionManager(1)
        restored.restore(manager.export())
        assert len(restored) == 2
        session = restored.get("s1")
        assert session is not None
        assert session.holds == {("L", "R"): 1}
        assert session.advertised == {("L", "R"): 1}


class TestReclaimer:
    def _manager_with_holds(self, advertised: bool) -> SessionManager:
        manager = SessionManager(0)
        manager.note_grant("L", "R", now=5.0)
        manager.note_grant("L", "R", now=5.0)
        if advertised:
            manager.note_advertised(["L"])
        return manager

    def test_advertised_holds_are_reclaimable_exactly_once_each(self):
        manager = self._manager_with_holds(advertised=True)
        reclaim, survivors = manager.reclaimer(now=6.0, ttl=TTL)
        assert [s.session_id for s in survivors] == ["s0"]
        assert reclaim("L", "R") is True
        assert reclaim("L", "R") is True
        assert reclaim("L", "R") is False  # Budget is exact, not sticky.

    def test_unadvertised_holds_are_disowned(self):
        # The gate: a hold granted after the last pre-crash heartbeat
        # pinned nothing out there — survivors may have regenerated and
        # granted over it, so re-asserting it is forbidden.
        manager = self._manager_with_holds(advertised=False)
        reclaim, survivors = manager.reclaimer(now=6.0, ttl=TTL)
        assert survivors  # The session survives; its holds do not.
        assert reclaim("L", "R") is False

    def test_partially_advertised_budget(self):
        manager = self._manager_with_holds(advertised=True)
        # A third hold granted after the advertisement is not covered.
        manager.note_grant("L", "R", now=5.5)
        reclaim, _ = manager.reclaimer(now=6.0, ttl=TTL)
        assert reclaim("L", "R") and reclaim("L", "R")
        assert reclaim("L", "R") is False

    def test_session_past_the_reclaim_window_is_expired(self):
        manager = self._manager_with_holds(advertised=True)
        reclaim, survivors = manager.reclaimer(now=5.0 + TTL + 0.1, ttl=TTL)
        assert survivors == []
        assert reclaim("L", "R") is False
        assert manager.default_session().state == EXPIRED
        assert manager.expired_count == 1

    def test_unknown_holds_answer_false(self):
        manager = self._manager_with_holds(advertised=True)
        reclaim, _ = manager.reclaimer(now=6.0, ttl=TTL)
        assert reclaim("M", "W") is False
        assert reclaim("L", "W") is False

    def test_reclaimer_state_survives_journal_roundtrip(self):
        # The whole point: the advertisement gate must ride the WAL.
        manager = self._manager_with_holds(advertised=True)
        restored = SessionManager(0)
        restored.restore(manager.export())
        reclaim, survivors = restored.reclaimer(now=6.0, ttl=TTL)
        assert [s.session_id for s in survivors] == ["s0"]
        assert reclaim("L", "R") is True
        assert restored.default_session().state == ACTIVE

"""Tests for the CORBA-style LockSet facade."""

from __future__ import annotations

import threading

import pytest

from repro.core.modes import LockMode
from repro.errors import LockUsageError
from repro.runtime.cluster import ThreadedHierarchicalCluster
from repro.services.lockset import HierarchicalLockSet, LockSet, LockSetFactory
from repro.verification.invariants import CompatibilityMonitor

TIMEOUT = 20.0


@pytest.fixture()
def cluster():
    monitor = CompatibilityMonitor()
    with ThreadedHierarchicalCluster(3, monitor=monitor) as instance:
        instance.test_monitor = monitor
        yield instance
    # Exiting the context stops the transport threads.


class TestLockSet:
    def test_lock_unlock(self, cluster):
        lockset = LockSet(cluster.client(1), "res")
        lockset.lock(LockMode.W, timeout=TIMEOUT)
        lockset.unlock(LockMode.W)
        cluster.test_monitor.assert_all_released()

    def test_held_context_manager(self, cluster):
        lockset = LockSet(cluster.client(1), "res")
        with lockset.held(LockMode.R, timeout=TIMEOUT):
            holds = cluster.test_monitor.current_holds("res")
            assert (1, LockMode.R) in holds
        cluster.test_monitor.assert_all_released()

    def test_held_releases_on_exception(self, cluster):
        lockset = LockSet(cluster.client(1), "res")
        with pytest.raises(RuntimeError):
            with lockset.held(LockMode.R, timeout=TIMEOUT):
                raise RuntimeError("app error")
        cluster.test_monitor.assert_all_released()

    def test_attempt_lock_no_pending_on_failure(self, cluster):
        lockset = LockSet(cluster.client(1), "res")
        assert not lockset.attempt_lock(LockMode.R)
        # A normal lock afterwards works (no stuck pending request).
        lockset.lock(LockMode.R, timeout=TIMEOUT)
        lockset.unlock(LockMode.R)

    def test_change_mode_upgrade(self, cluster):
        lockset = LockSet(cluster.client(1), "res")
        lockset.lock(LockMode.U, timeout=TIMEOUT)
        lockset.change_mode(LockMode.U, LockMode.W, timeout=TIMEOUT)
        lockset.unlock(LockMode.W)
        cluster.test_monitor.assert_all_released()

    def test_change_mode_downgrade(self, cluster):
        lockset = LockSet(cluster.client(1), "res")
        lockset.lock(LockMode.W, timeout=TIMEOUT)
        lockset.change_mode(LockMode.W, LockMode.R)
        lockset.unlock(LockMode.R)
        cluster.test_monitor.assert_all_released()

    def test_change_mode_strengthen_rejected(self, cluster):
        lockset = LockSet(cluster.client(1), "res")
        lockset.lock(LockMode.R, timeout=TIMEOUT)
        with pytest.raises(LockUsageError):
            lockset.change_mode(LockMode.R, LockMode.W)
        lockset.unlock(LockMode.R)


class TestHierarchicalLockSet:
    def test_lock_takes_intents_on_ancestors(self, cluster):
        lockset = HierarchicalLockSet(cluster.client(1), "db/t/0")
        lockset.lock(LockMode.W, timeout=TIMEOUT)
        holds = cluster.test_monitor.current_holds("db")
        assert (1, LockMode.IW) in holds
        holds = cluster.test_monitor.current_holds("db/t")
        assert (1, LockMode.IW) in holds
        lockset.unlock(LockMode.W)
        cluster.test_monitor.assert_all_released()

    def test_held_context_manager(self, cluster):
        lockset = HierarchicalLockSet(cluster.client(2), "db/t/1")
        with lockset.held(LockMode.R, timeout=TIMEOUT):
            assert (2, LockMode.R) in cluster.test_monitor.current_holds(
                "db/t/1"
            )
        cluster.test_monitor.assert_all_released()

    def test_disjoint_entry_writers_in_parallel(self, cluster):
        barrier = threading.Barrier(2, timeout=TIMEOUT)
        failures = []

        def writer(node, entry):
            lockset = HierarchicalLockSet(cluster.client(node), f"db/t/{entry}")
            try:
                with lockset.held(LockMode.W, timeout=TIMEOUT):
                    barrier.wait()
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(1, 0)),
            threading.Thread(target=writer, args=(2, 1)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        cluster.test_monitor.assert_all_released()


class TestLockSetFactory:
    def test_creates_both_kinds(self, cluster):
        factory = LockSetFactory(cluster.client(0))
        assert isinstance(factory.create("x"), LockSet)
        assert isinstance(
            factory.create_hierarchical("db/x"), HierarchicalLockSet
        )
        assert factory.create("x").lock_id == "x"
        assert factory.create_hierarchical("db/x").lock_id == "db/x"

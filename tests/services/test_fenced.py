"""Unit tests for the resource-side fencing guard (repro.services.fenced)."""

from __future__ import annotations

import pytest

from repro.leases.lease import fencing_epoch, mint_fencing_token
from repro.services.fenced import (
    FencedResource,
    FencedWriteError,
    WriteRecord,
)


class TestFloorCheck:
    def test_accepts_token_above_floor(self):
        resource = FencedResource("r")
        resource.observe_floor(10)
        resource.write(11, "a")
        assert resource.read() == "a"
        assert resource.writes_accepted == 1

    def test_rejects_token_at_floor(self):
        resource = FencedResource("r")
        resource.observe_floor(10)
        with pytest.raises(FencedWriteError) as err:
            resource.write(10, "a")
        assert err.value.token == 10 and err.value.floor == 10
        assert resource.writes_rejected == 1
        assert resource.read() is None

    def test_rejects_token_below_floor(self):
        resource = FencedResource("r")
        resource.observe_floor(10)
        with pytest.raises(FencedWriteError, match="revoked holder"):
            resource.write(3, "a")

    def test_rejects_missing_token(self):
        resource = FencedResource("r")
        with pytest.raises(FencedWriteError, match="no fencing token"):
            resource.write(0, "a")

    def test_floor_is_monotonic(self):
        resource = FencedResource("r")
        assert resource.observe_floor(10) == 10
        assert resource.observe_floor(4) == 10  # lowering is ignored
        assert resource.floor == 10


class TestMonotonicityCheck:
    def test_rejects_stale_write_after_newer_one(self):
        resource = FencedResource("r")
        resource.write(20, "new")
        with pytest.raises(FencedWriteError, match="stale holder"):
            resource.write(7, "old")
        assert resource.read() == "new"

    def test_stale_rejection_raises_the_implied_floor(self):
        resource = FencedResource("r")
        resource.write(20, "new")
        with pytest.raises(FencedWriteError):
            resource.write(7, "old")
        # The failed write taught the resource that 20 supersedes
        # everything below it; even tokens above the original floor
        # now bounce.
        assert resource.floor >= 7
        with pytest.raises(FencedWriteError):
            resource.write(7, "old-again")

    def test_equal_token_may_write_again(self):
        """The same holder (same token) may keep writing: fencing
        orders incarnations, not operations."""

        resource = FencedResource("r")
        resource.write(20, "first")
        resource.write(20, "second")
        assert resource.read() == "second"
        assert resource.writes_accepted == 2


class TestHistoryAndStats:
    def test_history_records_accepted_writes_in_order(self):
        resource = FencedResource("r")
        resource.write(5, "a", at=1.0)
        resource.write(9, "b", at=2.0)
        assert resource.history == [
            WriteRecord(token=5, value="a", at=1.0),
            WriteRecord(token=9, value="b", at=2.0),
        ]
        tokens = [record.token for record in resource.history]
        assert tokens == sorted(tokens)

    def test_stats_shape(self):
        resource = FencedResource("r", initial=0)
        resource.observe_floor(2)
        resource.write(5, 1)
        with pytest.raises(FencedWriteError):
            resource.write(1, 2)
        stats = resource.stats()
        assert stats == {
            "accepted": 1,
            "rejected": 1,
            "floor": 2,
            "high_water": 5,
        }


class TestWithServiceMintedTokens:
    """The guard composes with the lease layer's real token scheme."""

    def test_epoch_ordering_carries_through(self):
        old = mint_fencing_token(epoch=1)
        new = mint_fencing_token(epoch=2)
        assert fencing_epoch(new) > fencing_epoch(old)
        resource = FencedResource("r")
        resource.write(old, "epoch-1")
        resource.write(new, "epoch-2")
        with pytest.raises(FencedWriteError):
            resource.write(old, "zombie")
        assert resource.read() == "epoch-2"

    def test_revocation_floor_fences_the_old_epoch(self):
        """observe_floor fed with a revoked lease's token (what the
        service reports on a fence-floor bump) blocks that incarnation
        entirely."""

        revoked = mint_fencing_token(epoch=3)
        resource = FencedResource("r")
        resource.observe_floor(revoked)
        with pytest.raises(FencedWriteError):
            resource.write(revoked, "late write from the revoked holder")
        successor = mint_fencing_token(epoch=4)
        resource.write(successor, "fresh holder")
        assert resource.read() == "fresh holder"

"""Tests for the strict-2PL transaction layer."""

from __future__ import annotations

import threading

import pytest

from repro.core.modes import LockMode
from repro.errors import LockUsageError
from repro.runtime.cluster import ThreadedHierarchicalCluster
from repro.services.transaction import Transaction, TransactionManager, TxState
from repro.verification.invariants import CompatibilityMonitor

TIMEOUT = 20.0


@pytest.fixture()
def cluster():
    monitor = CompatibilityMonitor()
    with ThreadedHierarchicalCluster(3, monitor=monitor) as instance:
        instance.test_monitor = monitor
        yield instance


class TestTransactionLifecycle:
    def test_commit_releases_everything(self, cluster):
        tx = TransactionManager(cluster.client(1), timeout=TIMEOUT).begin()
        tx.read("db/t/0")
        tx.write("db/t/1")
        # db:IR, db/t:IR, 0:R from the read; db:IW, db/t:IW, 1:W from the
        # write (intents escalate, the weaker holds are kept until commit).
        assert len(tx.holds) == 6
        tx.commit()
        assert tx.state is TxState.COMMITTED
        assert tx.holds == []
        cluster.test_monitor.assert_all_released()

    def test_abort_releases_everything(self, cluster):
        tx = TransactionManager(cluster.client(1), timeout=TIMEOUT).begin()
        tx.write("db/t/0")
        tx.abort()
        assert tx.state is TxState.ABORTED
        cluster.test_monitor.assert_all_released()

    def test_context_manager_commits_on_success(self, cluster):
        manager = TransactionManager(cluster.client(1), timeout=TIMEOUT)
        with manager.begin() as tx:
            tx.read("db/t/0")
        assert tx.state is TxState.COMMITTED
        cluster.test_monitor.assert_all_released()

    def test_context_manager_aborts_on_error(self, cluster):
        manager = TransactionManager(cluster.client(1), timeout=TIMEOUT)
        with pytest.raises(ValueError):
            with manager.begin() as tx:
                tx.read("db/t/0")
                raise ValueError("app failure")
        assert tx.state is TxState.ABORTED
        cluster.test_monitor.assert_all_released()

    def test_operations_after_commit_rejected(self, cluster):
        tx = TransactionManager(cluster.client(1), timeout=TIMEOUT).begin()
        tx.commit()
        with pytest.raises(LockUsageError):
            tx.read("db/t/0")
        with pytest.raises(LockUsageError):
            tx.commit()


class TestLockAcquisitionRules:
    def test_duplicate_reads_reuse_holds(self, cluster):
        tx = TransactionManager(cluster.client(1), timeout=TIMEOUT).begin()
        tx.read("db/t/0")
        holds_after_first = len(tx.holds)
        tx.read("db/t/0")
        assert len(tx.holds) == holds_after_first
        tx.commit()

    def test_read_then_write_same_leaf_rejected(self, cluster):
        """R → W escalation within one transaction would self-deadlock
        (the W waits on the transaction's own R); the U mode is the
        protocol's answer (§3.4), and the API enforces it."""

        tx = TransactionManager(cluster.client(1), timeout=TIMEOUT).begin()
        tx.read("db/t/0")
        with pytest.raises(LockUsageError):
            tx.write("db/t/0")
        tx.abort()
        # The supported pattern: declare the write intent up front.
        tx2 = TransactionManager(cluster.client(1), timeout=TIMEOUT).begin()
        tx2.read_for_update("db/t/0")
        tx2.upgrade("db/t/0")
        tx2.commit()
        cluster.test_monitor.assert_all_released()

    def test_upgrade_path(self, cluster):
        tx = TransactionManager(cluster.client(1), timeout=TIMEOUT).begin()
        tx.read_for_update("db/t/0")
        assert (("db/t/0", LockMode.U)) in tx.holds
        tx.upgrade("db/t/0")
        assert (("db/t/0", LockMode.W)) in tx.holds
        assert (("db/t/0", LockMode.U)) not in tx.holds
        tx.commit()
        cluster.test_monitor.assert_all_released()

    def test_upgrade_without_u_rejected(self, cluster):
        tx = TransactionManager(cluster.client(1), timeout=TIMEOUT).begin()
        tx.read("db/t/0")
        with pytest.raises(LockUsageError):
            tx.upgrade("db/t/0")
        tx.abort()


class TestConcurrency:
    def test_disjoint_transactions_run_in_parallel(self, cluster):
        barrier = threading.Barrier(2, timeout=TIMEOUT)
        failures = []

        def worker(node, entry):
            manager = TransactionManager(cluster.client(node), timeout=TIMEOUT)
            try:
                with manager.begin() as tx:
                    tx.write(f"db/t/{entry}")
                    barrier.wait()  # both writers hold their leaves at once
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(1, 0)),
            threading.Thread(target=worker, args=(2, 1)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        cluster.test_monitor.assert_all_released()

    def test_conflicting_transactions_serialize(self, cluster):
        order = []
        lock = threading.Lock()

        def worker(node):
            manager = TransactionManager(cluster.client(node), timeout=TIMEOUT)
            with manager.begin() as tx:
                tx.write("db/t/0")
                with lock:
                    order.append(("enter", node))
                with lock:
                    order.append(("exit", node))

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in (1, 2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        # Strict alternation: enter/exit pairs never interleave.
        for i in range(0, len(order), 2):
            assert order[i][0] == "enter"
            assert order[i + 1][0] == "exit"
            assert order[i][1] == order[i + 1][1]
        cluster.test_monitor.assert_all_released()

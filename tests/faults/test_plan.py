"""Fault plans: matching, determinism, and the loss-filter shim."""

from __future__ import annotations

import pytest

from repro.core.messages import (
    GrantMessage,
    RequestMessage,
    fresh_request_id,
)
from repro.core.modes import LockMode
from repro.faults.messages import SessionMessage
from repro.faults.plan import (
    DELAY,
    DROP,
    DUPLICATE,
    CrashEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
    NAMED_PLANS,
    Partition,
    fault_label,
    named_plan,
    plan_from_loss_filter,
)


def _request(origin: int = 1) -> RequestMessage:
    return RequestMessage(
        lock_id="lock",
        sender=origin,
        origin=origin,
        mode=LockMode.R,
        request_id=fresh_request_id(0, origin),
    )


class TestFaultLabel:
    def test_core_messages_use_figure7_labels(self):
        assert fault_label(_request()) == "request"

    def test_session_frames_are_transparent(self):
        frame = SessionMessage(
            lock_id="lock", sender=1, seq=0, payload=_request(), boot=0
        )
        assert fault_label(frame) == "request"

    def test_unknown_types_fall_back_to_class_name(self):
        class ProbeMessage:
            pass

        assert fault_label(ProbeMessage()) == "probe"


class TestFaultRule:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(action="mangle")

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(action=DROP, probability=1.5)

    def test_time_window_is_half_open(self):
        rule = FaultRule(action=DROP, after=1.0, until=2.0)
        assert not rule.matches(0.5, 0, 1, _request())
        assert rule.matches(1.0, 0, 1, _request())
        assert not rule.matches(2.0, 0, 1, _request())

    def test_sender_dest_and_type_constraints(self):
        rule = FaultRule(
            action=DROP,
            message_types=frozenset({"grant"}),
            senders=frozenset({0}),
            dests=frozenset({1}),
        )
        grant = GrantMessage(
            lock_id="lock", sender=0, mode=LockMode.R,
            request_id=fresh_request_id(0, 1),
        )
        assert rule.matches(0.0, 0, 1, grant)
        assert not rule.matches(0.0, 2, 1, grant)
        assert not rule.matches(0.0, 0, 2, grant)
        assert not rule.matches(0.0, 0, 1, _request())


class TestCrashEvent:
    def test_restart_must_follow_crash(self):
        with pytest.raises(ValueError, match="restart_at"):
            CrashEvent(node=0, at=5.0, restart_at=5.0)


class TestPartition:
    def test_severs_both_directions_inside_window(self):
        cut = Partition(
            side_a=frozenset({0}), side_b=frozenset({1, 2}),
            start=1.0, end=2.0,
        )
        assert cut.severs(1.5, 0, 2)
        assert cut.severs(1.5, 1, 0)
        assert not cut.severs(1.5, 1, 2)  # same side
        assert not cut.severs(2.0, 0, 1)  # healed


class TestFaultInjector:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan(
            rules=(
                FaultRule(action=DROP, probability=0.3),
                FaultRule(action=DUPLICATE, probability=0.3),
            ),
            seed=42,
        )
        traffic = [(t * 0.1, t % 3, (t + 1) % 3) for t in range(200)]

        def decisions():
            injector = FaultInjector(plan)
            return [
                injector.decide(now, s, d, _request()) for now, s, d in traffic
            ]

        assert decisions() == decisions()

    def test_max_count_caps_firings(self):
        plan = FaultPlan(
            rules=(FaultRule(action=DROP, max_count=3),), seed=0
        )
        injector = FaultInjector(plan)
        dropped = sum(
            injector.decide(0.0, 0, 1, _request()).drop for _ in range(10)
        )
        assert dropped == 3
        assert injector.dropped == 3

    def test_delay_and_duplicate_combine(self):
        plan = FaultPlan(
            rules=(
                FaultRule(action=DUPLICATE),
                FaultRule(action=DELAY, delay=0.5),
            ),
            seed=0,
        )
        decision = FaultInjector(plan).decide(0.0, 0, 1, _request())
        assert decision.copies == 2
        assert decision.extra_delay == pytest.approx(0.5)
        assert not decision.drop

    def test_partition_wins_over_rules(self):
        plan = FaultPlan(
            rules=(FaultRule(action=DUPLICATE),),
            partitions=(
                Partition(side_a=frozenset({0}), side_b=frozenset({1})),
            ),
            seed=0,
        )
        injector = FaultInjector(plan)
        assert injector.decide(0.0, 0, 1, _request()).drop
        assert injector.partitioned == 1

    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan(rules=(FaultRule(action=DROP),)).is_empty()


class TestNamedPlans:
    def test_every_canned_plan_builds(self):
        for name in NAMED_PLANS:
            plan = named_plan(name, seed=7)
            assert plan.seed == 7
            assert plan.name == name

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(ValueError, match="smoke"):
            named_plan("nope")


class TestLossFilterShim:
    def test_predicate_becomes_a_drop_rule(self):
        plan = plan_from_loss_filter(lambda s, d, m: d == 1)
        injector = FaultInjector(plan)
        assert injector.decide(0.0, 0, 1, _request()).drop
        assert not injector.decide(0.0, 0, 2, _request()).drop

"""Durable restart: crashed nodes come back with their locks.

The acceptance surface of ``repro.persist`` at cluster level: durable
token-crash chaos must converge with *zero* blank-rejoin findings, a
restored token holder must keep custody when uncontested and demote
cleanly when the survivors regenerated past it, and a fault-free run
with durability off must stay bit-identical run to run.
"""

from __future__ import annotations

from repro.core.modes import LockMode
from repro.faults.chaos import BLANK_REJOIN_GAP, run_chaos
from repro.faults.recovery import RecoveryConfig
from repro.faults.simcluster import ResilientSimCluster
from repro.persist import MemoryPersistence
from repro.sim.engine import Process, Timeout
from repro.verification.invariants import CompatibilityMonitor

FAST_SIM = RecoveryConfig(
    heartbeat_interval=0.2,
    suspect_timeout=1.0,
    retry_base=0.3,
    retry_cap=1.2,
    channel_retry_base=0.2,
    channel_retry_cap=0.8,
    probe_timeout=0.5,
    orphan_interval=0.25,
    regen_settle=0.6,
    # Comfortably above the fabric's latency tail: probe answers ride
    # FIFO links, so one slow draw delays every reply behind it, and a
    # settle window close to that tail confirms custody spuriously.
    rejoin_settle=2.0,
)


class TestDurableChaosVerdicts:
    def test_token_crash_with_durability_is_clean(self):
        """The promoted acceptance gate: durable restart closes the
        blank-rejoin gap — no findings, no classified excuses."""

        for seed in (0, 1):
            verdict = run_chaos(plan="token-crash", seed=seed, durable=True)
            audit = verdict.data["cluster_audit"]
            assert verdict.ok, verdict.to_json()
            assert audit["findings"] == []
            assert audit["expected_findings"] == []
            assert audit["known_gaps"] == []
            durability = verdict.data["durability"]
            assert durability["backend"] == "memory"
            assert durability["restarts"], "the plan restarts the token node"
            for entry in durability["restarts"]:
                assert entry["rejoin"]["snapshot_mismatches"] == 0

    def test_durable_verdict_carries_wal_statistics(self):
        verdict = run_chaos(plan="token-crash", seed=0, durable=True)
        wal = verdict.data["durability"]["wal"]
        assert wal["appends"] > 0
        assert wal["snapshots"] > 0

    def test_non_durable_findings_stay_classified(self):
        """Volatile restart keeps its documented excuse — and only when
        a crash actually happened."""

        verdict = run_chaos(plan="token-crash", seed=1, durable=False)
        audit = verdict.data["cluster_audit"]
        assert audit["findings"] == []
        assert audit["expected_findings"]
        assert audit["known_gaps"] == [BLANK_REJOIN_GAP]


class TestCustodyHandshake:
    def _cluster(self):
        persistence = MemoryPersistence()
        cluster = ResilientSimCluster(
            3,
            seed=0,
            monitor=CompatibilityMonitor(),
            config=FAST_SIM,
            persistence=persistence,
        )
        return cluster

    def test_uncontested_restart_confirms_custody(self):
        """Sole token holder crashes and returns before anyone needs the
        lock: it keeps the token under its restored epoch."""

        cluster = self._cluster()
        sim = cluster.sim

        def body():
            yield cluster.client(0).acquire("lock-a", LockMode.W)
            yield Timeout(sim, 1.0)

        Process(sim, body())
        sim.run(until=2.0)
        pre = cluster.lockspaces[0].automaton("lock-a")
        assert pre.has_token
        pre_epoch = pre.token_epoch
        cluster.crash(0)
        sim.run(until=2.4)  # Back before the suspect timeout fires.
        cluster.restart(0)
        sim.run(until=8.0)
        manager = cluster.managers[0]
        automaton = cluster.lockspaces[0].automaton("lock-a")
        assert manager.custody_confirmed >= 1
        assert manager.custody_fenced == 0
        assert automaton.has_token
        assert not automaton.custody_pending
        assert automaton.token_epoch == pre_epoch
        # The restored-but-disowned hold was released during rejoin.
        assert manager.rejoin_report["holds_released"] == 1
        # And the lock still works for everyone.
        granted = []

        def late():
            yield cluster.client(1).acquire("lock-a", LockMode.W)
            granted.append(True)

        Process(sim, late())
        sim.run(until=12.0)
        assert granted

    def test_contested_restart_fences_custody(self):
        """Survivors regenerated while the holder was down: the restored
        token demotes under the new lineage — one believer only."""

        cluster = self._cluster()
        sim = cluster.sim
        granted = []

        def holder():
            yield cluster.client(0).acquire("lock-a", LockMode.W)
            yield Timeout(sim, 30.0)

        def contender():
            yield Timeout(sim, 3.0)
            yield cluster.client(1).acquire("lock-a", LockMode.W)
            granted.append(True)

        Process(sim, holder())
        Process(sim, contender())
        sim.run(until=2.0)
        cluster.crash(0)
        # Suspect, wait out the dead holder's lease (deadline + revoke
        # margin), probe, regenerate, grant.
        sim.run(until=13.0)
        assert granted, "survivors must regenerate and grant"
        cluster.restart(0)
        sim.run(until=23.0)
        manager = cluster.managers[0]
        automaton = cluster.lockspaces[0].automaton("lock-a")
        assert manager.custody_fenced >= 1
        assert not automaton.has_token
        assert not automaton.custody_pending
        believers = [
            node
            for node in range(3)
            if cluster.lockspaces[node].automaton("lock-a").has_token
        ]
        assert len(believers) == 1
        assert believers[0] != 0


class TestDurabilityOffIdentity:
    def test_fault_free_runs_are_bit_identical(self):
        """With durability off nothing on the hot path may drift: two
        identical invocations produce byte-identical verdicts."""

        first = run_chaos(plan="none", seed=3, duration=10.0)
        second = run_chaos(plan="none", seed=3, duration=10.0)
        assert first.to_json() == second.to_json()
        assert first.data["durable"] is False
        assert "durability" not in first.data

    def test_journaling_never_alters_protocol_outcomes(self):
        """Durability is pure observation: a fault-free durable run
        grants the same requests over the same messages."""

        plain = run_chaos(plan="none", seed=3, duration=10.0)
        durable = run_chaos(plan="none", seed=3, duration=10.0, durable=True)
        assert durable.ok
        assert durable.data["requests"] == plain.data["requests"]
        assert durable.data["latency"] == plain.data["latency"]
        assert (
            durable.data["faults"]["messages_sent"]
            == plain.data["faults"]["messages_sent"]
        )

"""Frame-level reorder on the wall-clock transports.

The threaded :class:`~repro.faults.runtime.FaultyTransport` used to
approximate ``reorder`` with a small delay; it now genuinely scrambles:
a reordered frame is held back and the pair's next frame overtakes it.
The reliable channel must absorb real out-of-order delivery on both
engines — the same seeded plan must reach the same verdict on the
simulator and on real threads.
"""

from __future__ import annotations

from repro.core.messages import Envelope
from repro.core.modes import LockMode
from repro.faults.chaos import run_chaos
from repro.faults.plan import REORDER, FaultPlan, FaultRule
from repro.faults.runtime import FaultyTransport, ResilientThreadedCluster
from repro.verification.invariants import CompatibilityMonitor


def _reorder_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        name="reorder-scramble",
        seed=seed,
        rules=(FaultRule(action=REORDER, probability=0.25),),
    )


class _RecordingTransport:
    """Minimal inner transport capturing delivery order per pair."""

    def __init__(self) -> None:
        self.delivered = []

    def register(self, node_id, handler) -> None:
        pass

    def start(self) -> None:
        pass

    def stop(self) -> None:
        pass

    def send(self, sender, envelopes) -> None:
        for envelope in envelopes:
            self.delivered.append((sender, envelope.dest, envelope.message))


class TestFrameScrambler:
    def test_held_frame_is_overtaken_by_the_next_send(self):
        inner = _RecordingTransport()
        plan = FaultPlan(
            name="one-reorder",
            seed=0,
            rules=(FaultRule(action=REORDER, max_count=1),),
        )
        transport = FaultyTransport(inner, plan)
        transport.send(0, [Envelope(1, "first")])
        assert inner.delivered == []  # Held, waiting for an overtaker.
        assert transport.messages_reordered == 1
        transport.send(0, [Envelope(1, "second")])
        # The second frame shipped first, then flushed the held one:
        # the pair genuinely delivered out of order.
        assert [m for (_, _, m) in inner.delivered] == ["second", "first"]
        transport.stop()

    def test_hold_timer_flushes_a_quiet_pair(self):
        import time

        inner = _RecordingTransport()
        plan = FaultPlan(
            name="one-reorder",
            seed=0,
            rules=(FaultRule(action=REORDER, max_count=1),),
        )
        transport = FaultyTransport(inner, plan)
        transport.send(0, [Envelope(1, "only")])
        assert inner.delivered == []
        deadline = time.monotonic() + 2.0
        while not inner.delivered and time.monotonic() < deadline:
            time.sleep(0.01)
        assert [m for (_, _, m) in inner.delivered] == ["only"]
        transport.stop()

    def test_crash_drops_held_frames(self):
        inner = _RecordingTransport()
        plan = FaultPlan(
            name="one-reorder",
            seed=0,
            rules=(FaultRule(action=REORDER, max_count=1),),
        )
        transport = FaultyTransport(inner, plan)
        transport.send(0, [Envelope(1, "doomed")])
        transport.crash(1)
        transport.restart(1)
        transport.send(0, [Envelope(1, "after")])
        assert [m for (_, _, m) in inner.delivered] == ["after"]
        assert transport.messages_dropped >= 1
        transport.stop()


class TestSimVsThreadedVerdict:
    def test_same_plan_same_verdict_on_both_engines(self):
        """A reorder-heavy crash-free plan converges healthy on the
        deterministic simulator *and* on real threads: the reliable
        channel hides genuine scrambling from the automata on both."""

        seed = 5
        verdict = run_chaos(
            plan=_reorder_plan(seed), seed=seed, nodes=3,
            duration=12.0, locks=2,
        )
        assert verdict.ok, verdict.to_json()
        assert verdict.data["faults"]["reordered"] > 0

        monitor = CompatibilityMonitor()
        with ResilientThreadedCluster(
            3, plan=_reorder_plan(seed), seed=seed, monitor=monitor
        ) as cluster:
            for _round in range(4):
                for node in range(3):
                    client = cluster.client(node)
                    client.acquire("lock-a", LockMode.R, timeout=15.0)
                    client.release("lock-a", LockMode.R)
                    client.acquire("lock-b", LockMode.IW, timeout=15.0)
                    client.release("lock-b", LockMode.IW)
            assert cluster.transport.messages_reordered > 0
        # Same verdict as the simulator: every request granted, Rule 1
        # intact throughout (the monitor raises on violation).

"""Online membership on the resilient sim cluster (repro.membership).

The acceptance surface of the view-change subsystem: nodes join under
load and serve traffic, leavers drain their holds / token custody /
copyset children without stranding a single waiter, dead nodes are
force-decommissioned through the suspect machinery, and after every
change the live members agree on one epoch-numbered view — checked both
directly and through the online invariant audit (``view-skew``).

The interleaving sweep at the bottom aims a graceful leave directly at
an in-flight token transfer, across a grid of start offsets, and
requires token uniqueness to survive every interleaving.
"""

from __future__ import annotations

import pytest

from repro.core.modes import LockMode
from repro.errors import ReproError
from repro.faults.chaos import run_chaos
from repro.faults.plan import (
    DECOMMISSION,
    DRAIN,
    JOIN,
    FaultPlan,
    MembershipEvent,
    Partition,
)
from repro.faults.recovery import RecoveryConfig
from repro.faults.simcluster import ResilientSimCluster
from repro.obs.live import (
    ClusterView,
    NodeSnapshot,
    RecoveryHealth,
    audit_view,
)
from repro.obs.sink import ObsSink
from repro.persist import MemoryPersistence
from repro.sim.engine import Process, Timeout
from repro.verification.invariants import CompatibilityMonitor

FAST_SIM = RecoveryConfig(
    heartbeat_interval=0.2,
    suspect_timeout=1.0,
    retry_base=0.3,
    retry_cap=1.2,
    channel_retry_base=0.2,
    channel_retry_cap=0.8,
    probe_timeout=0.5,
    orphan_interval=0.25,
    regen_settle=0.6,
)

LOCKS = ("db", "db.t1", "db.t2")


def _assert_view_agreement(cluster, expect_members=None):
    """Every live manager runs the same epoch and member list."""

    views = {
        node: (m.view_epoch, tuple(m.membership))
        for node, m in cluster.managers.items()
        if node in cluster.live_nodes()
    }
    assert len(set(views.values())) == 1, f"views diverge: {views}"
    epoch, members = next(iter(views.values()))
    if expect_members is not None:
        assert members == tuple(sorted(expect_members)), views
    return epoch, members


def _audit_ok(cluster):
    report = audit_view(cluster.cluster_view(), quiescent=True)
    assert report.ok, report.verdict() + "".join(
        f"\n  {finding}" for finding in report.findings
    )


class TestJoinAndDrain:
    def test_join_mid_load_then_drain_grants_everything(self):
        """The headline acceptance run: a node joins while requests are
        in flight, another drains out, nobody is stranded."""

        cluster = ResilientSimCluster(
            4,
            seed=3,
            monitor=CompatibilityMonitor(),
            config=FAST_SIM,
        )
        sim = cluster.sim
        grants = []

        def workload(node, start, ops):
            yield Timeout(sim, start)
            for i in range(ops):
                lock = LOCKS[(node + i) % len(LOCKS)]
                mode = (LockMode.W, LockMode.R, LockMode.IW)[i % 3]
                yield cluster.client(node).acquire(lock, mode)
                grants.append((sim.now, node, lock))
                yield Timeout(sim, 0.3)
                cluster.client(node).release(lock, mode)
                yield Timeout(sim, 0.2)

        processes = {
            # Node 1 (the leaver) finishes before its drain begins.
            node: Process(sim, workload(node, 0.1 * node, 4))
            for node in range(4)
        }

        def churn():
            yield Timeout(sim, 3.0)
            joiner = cluster.join_node()
            processes[joiner] = Process(sim, workload(joiner, 0.5, 4))
            yield Timeout(sim, 5.0)
            cluster.drain_node(1)

        Process(sim, churn())
        sim.run(until=30.0)

        for node, process in processes.items():
            assert process.error is None, f"node {node}: {process.error}"
        joiner = max(processes)
        assert any(g[1] == joiner for g in grants), "joiner never granted"
        assert len(grants) == 5 * 4
        epoch, members = _assert_view_agreement(cluster)
        assert joiner in members and 1 not in members
        assert epoch >= 2  # one join + one removal, at least
        events = [e["event"] for e in cluster.membership_log]
        assert events == ["join", "drain-begin", "drained"]
        _audit_ok(cluster)

    def test_drain_hands_off_token_custody(self):
        """Draining the token holder moves custody without a regrant
        epoch bump visible as a duplicate token."""

        cluster = ResilientSimCluster(
            3, seed=1, monitor=CompatibilityMonitor(), config=FAST_SIM
        )
        sim = cluster.sim

        def seed_custody():
            yield cluster.client(0).acquire("db", LockMode.W)
            yield Timeout(sim, 0.5)
            cluster.client(0).release("db", LockMode.W)

        Process(sim, seed_custody())
        sim.run(until=2.0)
        assert cluster.lockspaces[0].automaton("db").has_token
        cluster.drain_node(0)
        sim.run(until=15.0)
        assert 0 not in cluster.live_nodes()
        believers = [
            node
            for node in cluster.live_nodes()
            if cluster.lockspaces[node].automaton("db").has_token
        ]
        assert len(believers) == 1, believers
        assert (
            sum(
                cluster.managers[node].handoffs_accepted
                for node in cluster.live_nodes()
            )
            >= 1
        )
        _assert_view_agreement(cluster, expect_members=[1, 2])
        # And the lock still grants on the survivors.
        granted = []

        def late():
            yield cluster.client(1).acquire("db", LockMode.W)
            granted.append(True)
            cluster.client(1).release("db", LockMode.W)

        Process(sim, late())
        sim.run(until=25.0)
        assert granted
        _audit_ok(cluster)


class TestDecommission:
    def test_dead_holder_is_excised_and_waiters_unblock(self):
        cluster = ResilientSimCluster(
            4, seed=2, monitor=CompatibilityMonitor(), config=FAST_SIM
        )
        sim = cluster.sim
        granted = []

        def doomed():
            yield cluster.client(2).acquire("db", LockMode.W)
            yield Timeout(sim, 100.0)  # Never releases: dies holding W.

        def waiter():
            yield Timeout(sim, 1.0)
            yield cluster.client(3).acquire("db", LockMode.W)
            granted.append(sim.now)
            cluster.client(3).release("db", LockMode.W)

        Process(sim, doomed())
        Process(sim, waiter())
        sim.run(until=2.0)
        cluster.crash(2)
        sim.run(until=4.0)
        cluster.decommission_node(2)
        sim.run(until=30.0)

        assert granted, "waiter stranded behind the decommissioned holder"
        epoch, members = _assert_view_agreement(cluster)
        assert 2 not in members
        installs = [
            install
            for manager in cluster.managers.values()
            for install in manager.view_installs
            if 2 in install["removed"]
        ]
        assert installs and all(i["forced"] for i in installs)
        assert any(
            e["event"] == "decommissioned" for e in cluster.membership_log
        )
        _audit_ok(cluster)

    def test_decommission_requires_a_crashed_node(self):
        cluster = ResilientSimCluster(3, seed=0, config=FAST_SIM)
        with pytest.raises(ReproError):
            cluster.decommission_node(1)


class TestChurnPlans:
    """The named churn plans, end to end through the chaos harness."""

    @pytest.mark.parametrize(
        "plan", ["rolling-join", "graceful-drain", "kill-and-replace"]
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_named_plan_converges(self, plan, seed):
        verdict = run_chaos(plan=plan, seed=seed)
        assert verdict.ok, verdict.to_json()
        membership = verdict.data["membership"]
        assert membership["epoch_agreement"], membership
        assert membership["membership_agreement"], membership
        assert not membership.get("churn_errors"), membership
        assert verdict.data["requests"]["outstanding"] == 0

    def test_join_settle_latency_is_measured(self):
        verdict = run_chaos(plan="rolling-join", seed=0)
        settles = verdict.data["membership"]["join_settle"]
        assert settles, "rolling-join must record join settle latencies"
        for entry in settles:
            assert entry["settle_latency"] >= 0.0

    def test_graceful_drain_measures_drain_latency(self):
        verdict = run_chaos(plan="graceful-drain", seed=0)
        drains = verdict.data["membership"]["drain_latency"]
        assert drains and all(d["drain_latency"] > 0.0 for d in drains)

    def test_durable_churn_converges(self):
        verdict = run_chaos(plan="graceful-drain", seed=0, durable=True)
        assert verdict.ok, verdict.to_json()
        assert verdict.data["membership"]["epoch_agreement"]

    def test_custom_churn_plan_with_all_three_actions(self):
        plan = FaultPlan(
            churn=(
                MembershipEvent(action=JOIN, at=4.0),
                MembershipEvent(action=DRAIN, node=1, at=8.0),
                MembershipEvent(action=DECOMMISSION, node=2, at=12.0),
            ),
            name="all-three",
            seed=0,
        )
        verdict = run_chaos(plan=plan, seed=0, nodes=5, duration=18.0)
        assert verdict.ok, verdict.to_json()
        membership = verdict.data["membership"]
        completed = [
            e["event"]
            for e in membership["events"]
            if e["event"] in ("join", "drained", "decommissioned")
        ]
        assert completed == ["join", "drained", "decommissioned"]
        assert membership["joined_nodes"] == [5]


class TestDurableJoinerRestart:
    def test_joiner_crash_restart_rejoins_with_its_locks(self):
        """A durable joiner that crashes after being admitted replays its
        journal, keeps its view, and the cluster still agrees."""

        cluster = ResilientSimCluster(
            3,
            seed=4,
            monitor=CompatibilityMonitor(),
            config=FAST_SIM,
            persistence=MemoryPersistence(),
        )
        sim = cluster.sim
        joiner = cluster.join_node()
        sim.run(until=2.0)

        def joiner_work():
            yield cluster.client(joiner).acquire("db.t1", LockMode.W)
            yield Timeout(sim, 50.0)  # Still holding when it crashes.

        Process(sim, joiner_work())
        sim.run(until=4.0)
        assert cluster.lockspaces[joiner].automaton("db.t1").has_token
        cluster.crash(joiner)
        sim.run(until=4.5)
        cluster.restart(joiner)
        sim.run(until=20.0)

        manager = cluster.managers[joiner]
        assert manager.rejoin_report is not None
        assert manager.rejoin_report["locks_restored"] >= 1
        epoch, members = _assert_view_agreement(cluster)
        assert joiner in members
        # The restored-then-disowned hold must not strand later waiters.
        granted = []

        def late():
            yield cluster.client(0).acquire("db.t1", LockMode.W)
            granted.append(True)

        Process(sim, late())
        sim.run(until=40.0)
        assert granted
        _audit_ok(cluster)


class TestReclaimFanoutWarning:
    def test_partial_advertisement_flags_reclaim(self):
        """A hold advertised only to a minority (partition) that is then
        reclaimed after a crash-restart raises the documented
        ``reclaim-partial-fanout`` fault instead of reclaiming silently."""

        faults = []

        class Sink(ObsSink):
            def fault(self, kind, node):
                faults.append((kind, node))

        plan = FaultPlan(
            partitions=(
                Partition(
                    side_a=frozenset({0, 1}),
                    side_b=frozenset({2, 3, 4}),
                    start=0.2,
                    end=50.0,
                ),
            ),
            name="minority-advert",
        )
        cluster = ResilientSimCluster(
            5,
            plan=plan,
            seed=6,
            config=FAST_SIM,
            persistence=MemoryPersistence(),
            reclaim=True,
            obs=Sink(),
        )
        sim = cluster.sim

        def minority_holder():
            # Acquire only after the failure detector has suspected the
            # unreachable majority: the advert fanout counts unsuspected
            # peers, so an earlier acquire would journal a full fanout.
            yield Timeout(sim, 2.0)
            yield cluster.client(0).acquire("db", LockMode.W)
            yield Timeout(sim, 50.0)

        Process(sim, minority_holder())
        # Enough heartbeats to advertise the lease — but only node 1 is
        # unsuspected, so the journaled fanout stays below quorum.
        sim.run(until=3.5)
        fanout = cluster.managers[0].sessions.advert_fanout("db")
        assert fanout is not None and (fanout + 1) * 2 <= 5, fanout
        cluster.crash(0)
        sim.run(until=4.0)
        cluster.restart(0)
        sim.run(until=5.0)

        report = cluster.managers[0].rejoin_report
        assert report is not None
        assert report["holds_reclaimed"] >= 1, report
        assert report["reclaim_partial_fanout"] >= 1, report
        assert ("reclaim-partial-fanout", 0) in faults


class TestViewSkewAudit:
    def _node(self, node_id, epoch, members):
        return NodeSnapshot(
            node=node_id,
            alive=True,
            locks=(),
            recovery=RecoveryHealth(
                boot=1, view_epoch=epoch, view_members=tuple(members)
            ),
        )

    def test_agreeing_views_are_clean(self):
        view = ClusterView(
            protocol="hierarchical",
            captured_at=1.0,
            nodes=(
                self._node(0, 3, (0, 1)),
                self._node(1, 3, (0, 1)),
            ),
        )
        report = audit_view(view, quiescent=True)
        assert report.ok
        assert not [f for f in report.findings if f.rule == "view-skew"]

    def test_epoch_skew_warns_live_and_fails_quiescent(self):
        view = ClusterView(
            protocol="hierarchical",
            captured_at=1.0,
            nodes=(
                self._node(0, 3, (0, 1)),
                self._node(1, 2, (0, 1, 2)),
            ),
        )
        live = audit_view(view, quiescent=False)
        assert live.ok  # In-flight installs legitimately lag an epoch.
        assert any(f.rule == "view-skew" for f in live.warnings())
        drained = audit_view(view, quiescent=True)
        assert not drained.ok
        assert any(f.rule == "view-skew" for f in drained.violations())

    def test_same_epoch_different_members_is_always_a_violation(self):
        view = ClusterView(
            protocol="hierarchical",
            captured_at=1.0,
            nodes=(
                self._node(0, 3, (0, 1)),
                self._node(1, 3, (0, 1, 2)),
            ),
        )
        report = audit_view(view, quiescent=False)
        assert not report.ok
        assert any(f.rule == "view-skew" for f in report.violations())


class TestLeaveConcurrentWithTokenTransfer:
    """The satellite interleaving requirement: a graceful leave racing a
    token transfer must preserve token uniqueness and strand nobody."""

    @pytest.mark.parametrize("drain_at", [1.5, 2.0, 2.5, 3.0])
    def test_token_uniqueness_survives_the_race(self, drain_at):
        cluster = ResilientSimCluster(
            3,
            seed=7,
            monitor=CompatibilityMonitor(),
            config=FAST_SIM,
        )
        sim = cluster.sim
        granted = []

        def holder():
            # Node 0 holds W and releases right around the drain window,
            # pushing a token transfer toward the queued contender.
            yield cluster.client(0).acquire("t", LockMode.W)
            yield Timeout(sim, max(0.0, 2.0 - sim.now))
            try:
                cluster.client(0).release("t", LockMode.W)
            except ReproError:
                pass  # Drain force-released the hold first.

        def contender():
            yield Timeout(sim, 1.0)
            yield cluster.client(1).acquire("t", LockMode.W)
            granted.append(sim.now)
            yield Timeout(sim, 0.3)
            cluster.client(1).release("t", LockMode.W)

        Process(sim, holder())
        Process(sim, contender())
        sim.schedule(drain_at, lambda: cluster.drain_node(0))
        sim.run(until=25.0)

        assert granted, f"contender stranded with drain at {drain_at}"
        assert 0 not in cluster.live_nodes()
        # Only look at instantiated automata: automaton() would lazily
        # create one on a bystander node and pollute the audit below.
        believers = [
            node
            for node in cluster.live_nodes()
            for automaton in cluster.lockspaces[node].automata()
            if automaton.lock_id == "t" and automaton.has_token
        ]
        assert len(believers) == 1, (
            f"drain at {drain_at}: token believers {believers}"
        )
        _assert_view_agreement(cluster, expect_members=[1, 2])
        _audit_ok(cluster)

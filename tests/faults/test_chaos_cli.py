"""The ``python -m repro chaos`` entry point."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestChaosCli:
    def test_clean_plan_exits_zero(self, capsys):
        rc = main([
            "chaos", "--plan", "none", "--seed", "0", "--nodes", "3",
            "--duration", "3", "--grace", "8",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "chaos none seed=0 nodes=3: OK" in out
        assert "rule1 violations: 0" in out

    def test_json_verdict_parses(self, capsys):
        rc = main([
            "chaos", "--plan", "drop1", "--seed", "7", "--nodes", "3",
            "--duration", "3", "--grace", "8", "--json",
        ])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["plan"] == "drop1"
        assert data["seed"] == 7
        assert data["invariants"]["rule1_violations"] == 0

    def test_unknown_plan_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--plan", "does-not-exist"])

    def test_trace_out_writes_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "chaos.jsonl"
        rc = main([
            "chaos", "--plan", "none", "--seed", "0", "--nodes", "3",
            "--duration", "2", "--grace", "6",
            "--trace-out", str(trace),
        ])
        assert rc == 0
        lines = trace.read_text().splitlines()
        assert lines
        head = json.loads(lines[0])
        assert head["meta"]["plan"] == "none"

    @pytest.mark.chaos
    def test_smoke_plan_ci_invocation(self, capsys):
        # The exact command the CI chaos step runs (shorter windows).
        rc = main([
            "chaos", "--seed", "7", "--plan", "smoke", "--nodes", "4",
            "--duration", "8",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out

"""Online membership on the real-thread transport.

Wall-clock acceptance for ``repro.membership``: the same join / drain /
decommission lifecycle the simulator proves in
``test_membership_sim.py``, but over real threads, real timers and the
blocking client — including a durable joiner that crashes and replays
its journal.  Workloads are kept small; every test is bounded by the
cluster's own drain / decommission timeouts.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.modes import LockMode
from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.faults.runtime import FAST_RECOVERY, ResilientThreadedCluster
from repro.persist import MemoryPersistence
from repro.verification.invariants import CompatibilityMonitor


def _assert_view_agreement(cluster):
    views = {
        node: (
            cluster.managers[node].view_epoch,
            tuple(cluster.managers[node].membership),
        )
        for node in cluster.live_nodes()
    }
    assert len(set(views.values())) == 1, f"views diverge: {views}"
    return next(iter(views.values()))


class TestThreadedJoinAndDrain:
    def test_joiner_serves_traffic_and_leaver_drains(self):
        monitor = CompatibilityMonitor()
        with ResilientThreadedCluster(
            3, plan=FaultPlan(), monitor=monitor
        ) as cluster:
            # Warm the lock from an original member.
            cluster.client(0).acquire("db", LockMode.W, timeout=10.0)
            cluster.client(0).release("db", LockMode.W)

            joiner = cluster.join_node()
            assert joiner == 3
            # The joiner must be able to acquire through its bootstrap
            # attachment right away (grants may queue behind the view
            # install, hence the generous timeout).
            cluster.client(joiner).acquire("db", LockMode.W, timeout=20.0)
            cluster.client(joiner).release("db", LockMode.W)

            successor = cluster.drain_node(1, timeout=30.0)
            assert successor in cluster.live_nodes()
            assert 1 not in cluster.live_nodes()
            with pytest.raises(SimulationError, match="leaving"):
                cluster.client(1).acquire("db", LockMode.R)

            epoch, members = _assert_view_agreement(cluster)
            assert joiner in members and 1 not in members
            assert epoch >= 2
            # And the survivors still grant.
            cluster.client(2).acquire("db", LockMode.W, timeout=20.0)
            cluster.client(2).release("db", LockMode.W)
            assert monitor.grants == 3  # every grant was Rule-1 audited

    def test_drain_races_concurrent_traffic(self):
        """Drain a node while the other members hammer the same lock;
        nobody may wedge and Rule 1 must hold throughout."""

        monitor = CompatibilityMonitor()
        with ResilientThreadedCluster(
            4, plan=FaultPlan(), monitor=monitor
        ) as cluster:
            errors: list = []

            def hammer(node):
                try:
                    for i in range(4):
                        mode = (
                            LockMode.W if (node + i) % 3 == 0 else LockMode.R
                        )
                        cluster.client(node).acquire(
                            "db", mode, timeout=30.0
                        )
                        cluster.client(node).release("db", mode)
                except Exception as exc:  # surfaced to the main thread
                    errors.append((node, exc))

            threads = [
                threading.Thread(target=hammer, args=(n,), daemon=True)
                for n in (0, 2, 3)
            ]
            for thread in threads:
                thread.start()
            cluster.drain_node(1, timeout=30.0)
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(t.is_alive() for t in threads), "workload wedged"
            assert errors == []
            # The monitor raises on any Rule-1 violation; reaching here
            # with all grants accounted for means the race stayed clean.
            assert monitor.grants == 3 * 4
            _assert_view_agreement(cluster)


class TestThreadedDecommission:
    def test_dead_node_is_excised(self):
        with ResilientThreadedCluster(3, plan=FaultPlan()) as cluster:
            cluster.client(2).acquire("db", LockMode.W, timeout=10.0)
            cluster.crash(2)
            cluster.decommission_node(2, timeout=30.0)
            epoch, members = _assert_view_agreement(cluster)
            assert members == (0, 1)
            # The dead holder's W must not strand the survivors.
            cluster.client(0).acquire("db", LockMode.W, timeout=30.0)
            cluster.client(0).release("db", LockMode.W)

    def test_decommission_refuses_a_live_node(self):
        with ResilientThreadedCluster(3, plan=FaultPlan()) as cluster:
            with pytest.raises(SimulationError, match="alive"):
                cluster.decommission_node(1)


class TestThreadedDurableJoiner:
    def test_joiner_crash_restart_replays_its_journal(self):
        with ResilientThreadedCluster(
            3,
            plan=FaultPlan(),
            persistence=MemoryPersistence(),
        ) as cluster:
            joiner = cluster.join_node()
            cluster.client(joiner).acquire("db.t1", LockMode.W, timeout=20.0)
            cluster.crash(joiner)
            cluster.restart(joiner)
            manager = cluster.managers[joiner]
            assert manager.rejoin_report is not None
            assert manager.rejoin_report["locks_restored"] >= 1
            # The restored-then-disowned hold must not strand waiters.
            cluster.client(0).acquire("db.t1", LockMode.W, timeout=30.0)
            cluster.client(0).release("db.t1", LockMode.W)
            epoch, members = _assert_view_agreement(cluster)
            assert joiner in members

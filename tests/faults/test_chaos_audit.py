"""The post-drain cluster audit folded into chaos verdicts.

Fault-free (and crash-free) plans must converge to a healthy audit;
token-crash plans surface the documented blank-rejoin gap as *expected*
findings under a named gap, never as unexplained regressions.
"""

from __future__ import annotations

from repro.faults.chaos import (
    BLANK_REJOIN_GAP,
    BLANK_REJOIN_RULES,
    run_chaos,
)


def _audit(verdict):
    return verdict.data["cluster_audit"]


class TestFaultFreeAudit:
    def test_clean_plan_converges_to_healthy_audit(self):
        verdict = run_chaos(
            plan="none", seed=7, nodes=5, duration=20.0, locks=3
        )
        audit = _audit(verdict)
        assert verdict.ok
        assert audit["healthy"] is True
        assert audit["quiescent"] is True
        assert audit["findings"] == []
        assert audit["expected_findings"] == []
        assert audit["known_gaps"] == []
        assert audit["locks_checked"] == 3
        assert audit["nodes_checked"] == 5

    def test_lossy_but_crash_free_plan_still_healthy(self):
        verdict = run_chaos(
            plan="drop1", seed=7, nodes=5, duration=20.0, locks=3
        )
        audit = _audit(verdict)
        assert verdict.ok
        assert audit["healthy"] is True
        assert audit["findings"] == []
        # No crash happened, so nothing may hide behind the known gap.
        assert audit["expected_findings"] == []


class TestTokenCrashGap:
    def test_blank_rejoin_surfaces_as_named_expected_finding(self):
        # Seed 1 is pinned empirically: the crashed token home restarts
        # blank mid-run and its forgotten requests stay outstanding.
        verdict = run_chaos(
            plan="token-crash", seed=1, nodes=5, duration=20.0, locks=3
        )
        audit = _audit(verdict)
        # The gap is real: requests the crashed token node forgot stay
        # outstanding, so the overall verdict fails...
        assert not verdict.ok
        assert verdict.data["requests"]["outstanding"] > 0
        assert verdict.data["invariants"]["rule1_violations"] == 0
        # ...but the audit explains every finding as the documented
        # blank-rejoin gap — nothing unexpected.
        assert audit["healthy"] is True
        assert audit["findings"] == []
        assert audit["expected_findings"]
        assert audit["known_gaps"] == [BLANK_REJOIN_GAP]
        for finding in audit["expected_findings"]:
            assert finding["rule"] in BLANK_REJOIN_RULES
            assert finding["expected"] == BLANK_REJOIN_GAP

"""End-to-end lease scenarios through the chaos harness.

Two behaviours the lease/session layer exists for, checked on full
cluster runs:

* ``minority-partition`` — a never-healing partition strands a holder
  on the minority side; its leases expire, the majority revokes them
  Rule-1-safely, and the run still drains every majority-side request.
* durable ``token-crash`` with ``reclaim=True`` — a crashed node
  restarts from its journal and its surviving application session
  re-asserts the holds whose leases a pre-crash heartbeat advertised.

The regression seeds at the bottom pin three protocol bugs the lease
layer's altered timing originally exposed (ack-boot misattribution,
crossed parent/child lineage, missing old-parent notice on token
regeneration); each seed deadlocked or wedged before its fix.
"""

from __future__ import annotations

import pytest

from repro.faults.chaos import run_chaos
from repro.faults.recovery import RecoveryConfig

#: Fast heartbeats make lease advertisement near-certain between a grant
#: and the plan's crash, so reclaim is actually exercised (with the
#: default 1s interval most crashed holds die unadvertised and the run
#: degenerates to plain disownment).
FAST_HEARTBEATS = RecoveryConfig(heartbeat_interval=0.1)


class TestMinorityPartition:
    def test_minority_holder_is_expired_and_revoked(self):
        verdict = run_chaos(plan="minority-partition", seed=2)
        data = verdict.data
        assert verdict.ok, data
        leases = data["leases"]
        # The stranded minority node fenced itself...
        assert leases["fenced_nodes"] == [4]
        # ...and the majority revoked its leases instead of waiting for
        # a heal that never comes.
        assert leases["revoked"] > 0
        assert leases["renewals_sent"] > 0
        # Its in-flight request is accounted to expiry, not lost.
        assert data["requests"]["abandoned_by_expiry"] == 1
        assert data["requests"]["outstanding"] == 0
        # The revocations left no lease-level debris behind.
        rules = {f["rule"] for f in data["cluster_audit"]["findings"]}
        assert "expired-but-held" not in rules
        assert "double-active-lease" not in rules

    @pytest.mark.parametrize("seed", [0, 1, 3, 4, 5])
    def test_partition_sweep_converges(self, seed):
        verdict = run_chaos(plan="minority-partition", seed=seed)
        assert verdict.ok, verdict.data
        assert verdict.data["leases"]["fenced_nodes"] == [4]
        assert verdict.data["requests"]["abandoned_by_expiry"] >= 1


class TestDurableReclaim:
    @pytest.mark.parametrize("seed", [2, 13])
    def test_restarted_session_reowns_advertised_holds(self, seed):
        verdict = run_chaos(
            plan="token-crash",
            seed=seed,
            durable=True,
            reclaim=True,
            config=FAST_HEARTBEATS,
        )
        data = verdict.data
        assert verdict.ok, data
        assert data["durability"]["reclaim"] is True
        # The surviving session re-asserted at least one journaled hold
        # under a fresh lease instead of disowning it.
        assert data["leases"]["holds_reclaimed"] >= 1
        restarts = data["durability"]["restarts"]
        assert restarts and any(
            entry["rejoin"]["holds_reclaimed"] >= 1 for entry in restarts
        )

    def test_without_reclaim_restored_holds_are_disowned(self):
        verdict = run_chaos(
            plan="token-crash",
            seed=2,
            durable=True,
            reclaim=False,
            config=FAST_HEARTBEATS,
        )
        assert verdict.ok, verdict.data
        assert verdict.data["leases"]["holds_reclaimed"] == 0


class TestLeaseTimingRegressions:
    """Seeds that deadlocked before this layer's protocol fixes."""

    @pytest.mark.parametrize("seed", [9, 11])
    def test_fast_heartbeat_reclaim_seeds_converge(self, seed):
        # Seed 9: a restarted node's SessionAcks echoed the acked
        # frame's boot, so peers' ack traffic read as restarts and a
        # live in-stream was wiped mid-delivery (channel deadlock); the
        # same seed then exposed a stale self-announce surviving token
        # regeneration.  Seed 11: a crossed parent/child announce built
        # a mutual-phantom cycle that pinned both owned modes forever.
        verdict = run_chaos(
            plan="token-crash",
            seed=seed,
            durable=True,
            reclaim=True,
            config=FAST_HEARTBEATS,
        )
        assert verdict.ok, verdict.data
        assert verdict.data["requests"]["outstanding"] == 0

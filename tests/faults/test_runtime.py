"""Fault tolerance on the real-thread transports.

The acceptance bar: message drops AND duplicates must be survived on the
in-process threaded transport and over genuine TCP loopback sockets, not
just in the simulator.  Workloads here are small (wall-clock tests) but
every grant is audited by the compatibility monitor.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.modes import LockMode
from repro.errors import SimulationError
from repro.faults.plan import DROP, DUPLICATE, FaultPlan, FaultRule
from repro.faults.runtime import (
    FAST_RECOVERY,
    FaultyTransport,
    ResilientThreadedCluster,
)
from repro.runtime.tcp import TcpTransport
from repro.runtime.transport import ThreadedTransport
from repro.verification.invariants import CompatibilityMonitor

#: Light, bounded chaos: drops and duplicates stop after max_count, so
#: the run's tail is clean and convergence is guaranteed.
LOSSY_PLAN = FaultPlan(
    rules=(
        FaultRule(action=DROP, probability=0.10, max_count=15),
        FaultRule(action=DUPLICATE, probability=0.15, max_count=15),
    ),
    seed=11,
    name="test-lossy",
)


def _hammer(cluster, node: int, ops: int, errors: list) -> None:
    client = cluster.client(node)
    try:
        for i in range(ops):
            mode = LockMode.W if (node + i) % 4 == 0 else LockMode.R
            client.acquire("lock", mode, timeout=30.0)
            client.release("lock", mode)
    except Exception as exc:  # surfaced to the main thread
        errors.append((node, exc))


def _run_cluster(cluster, ops: int = 8):
    errors: list = []
    threads = [
        threading.Thread(
            target=_hammer, args=(cluster, node, ops, errors), daemon=True
        )
        for node in range(cluster.num_nodes)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads), "workload wedged"
    assert errors == []


class TestThreadedTransport:
    def test_drops_and_duplicates_survived(self):
        monitor = CompatibilityMonitor()
        with ResilientThreadedCluster(
            3, plan=LOSSY_PLAN, monitor=monitor
        ) as cluster:
            _run_cluster(cluster)
            injector = cluster.transport.injector
            assert injector.dropped > 0 or injector.duplicated > 0
            assert monitor.grants == 3 * 8

    def test_crash_and_restart(self):
        with ResilientThreadedCluster(3, plan=FaultPlan()) as cluster:
            cluster.client(1).acquire("lock", LockMode.R, timeout=10.0)
            cluster.client(1).release("lock", LockMode.R)
            cluster.crash(2)
            with pytest.raises(SimulationError, match="crashed"):
                cluster.client(2).acquire("lock", LockMode.R)
            # Survivors keep working while node 2 is down.
            cluster.client(0).acquire("lock", LockMode.W, timeout=10.0)
            cluster.client(0).release("lock", LockMode.W)
            cluster.restart(2)
            cluster.client(2).acquire("lock", LockMode.R, timeout=20.0)
            cluster.client(2).release("lock", LockMode.R)
            assert cluster.managers[2].boot == 1


class TestTcpTransport:
    def test_drops_and_duplicates_survived_over_tcp(self):
        monitor = CompatibilityMonitor()
        with ResilientThreadedCluster(
            3,
            plan=LOSSY_PLAN,
            transport=TcpTransport(),
            monitor=monitor,
        ) as cluster:
            _run_cluster(cluster, ops=6)
            injector = cluster.transport.injector
            assert injector.dropped > 0 or injector.duplicated > 0
            assert monitor.grants == 3 * 6


class TestFaultyTransport:
    def test_empty_plan_has_no_injector(self):
        transport = FaultyTransport(ThreadedTransport(), FaultPlan())
        assert transport.injector is None

    def test_crash_gate_blocks_both_directions(self):
        from repro.core.messages import Envelope
        from repro.faults.messages import HeartbeatMessage

        transport = FaultyTransport(ThreadedTransport(), None)
        received: list = []
        transport.register(0, lambda m: received.append(m) or [])
        transport.register(1, lambda m: [])
        transport.start()
        try:
            beat = HeartbeatMessage(lock_id="", sender=1)
            transport.crash(0)
            assert transport.is_crashed(0)
            # Into the crashed node: silently swallowed by the gate.
            transport.send(1, [Envelope(0, beat)])
            # Out of the crashed node: dropped at the source.
            transport.send(0, [Envelope(1, beat)])
            transport.drain()
            assert received == []
            transport.restart(0)
            assert not transport.is_crashed(0)
            transport.send(1, [Envelope(0, beat)])
            transport.drain()
            assert received == [beat]
        finally:
            transport.stop()

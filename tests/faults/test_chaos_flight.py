"""Flight recording wired into the chaos harness."""

from __future__ import annotations

import os

from repro.core.modes import LockMode
from repro.faults.chaos import run_chaos
from repro.faults.plan import CrashEvent, FaultPlan
from repro.obs.flightrec import NodeReplayer, bisect_timeline, load_dump
from repro.sim.engine import Process, Timeout


class TestChaosFlightRecording:
    def test_clean_run_records_but_does_not_dump(self, tmp_path):
        verdict = run_chaos(
            plan="token-crash",
            seed=3,
            nodes=4,
            duration=8.0,
            flight_dir=str(tmp_path),
        )
        assert verdict.ok
        flight = verdict.data["flight"]
        assert flight["recorded"] is True
        assert all(int(seq) > 0 for seq in flight["last_seq"].values())
        assert "dump" not in flight
        assert os.listdir(tmp_path) == []

    def test_no_flight_dir_means_no_flight_section(self):
        verdict = run_chaos(plan="smoke", seed=1, nodes=3, duration=4.0)
        assert "flight" not in verdict.data

    def test_failing_run_dumps_and_replay_verifies(self, tmp_path):
        # Crash a majority permanently AND stretch leases past the run:
        # the survivors can neither reach quorum to regenerate lost
        # tokens nor self-fence their way out, so their requests stay
        # outstanding and the verdict fails — the dump-on-failure path.
        from repro.faults.recovery import RecoveryConfig

        plan = FaultPlan(
            crashes=(
                CrashEvent(node=0, at=2.0),
                CrashEvent(node=1, at=2.0),
                CrashEvent(node=2, at=2.0),
            ),
            name="majority-crash",
        )
        verdict = run_chaos(
            plan=plan,
            seed=5,
            nodes=5,
            duration=6.0,
            grace=6.0,
            config=RecoveryConfig(lease_duration=1e6),
            flight_dir=str(tmp_path),
        )
        assert not verdict.ok
        flight = verdict.data["flight"]
        dump_path = flight["dump"]
        assert os.path.exists(dump_path)
        assert os.path.basename(dump_path) == "majority-crash-seed5.flight"
        dump = load_dump(dump_path)
        assert dump.meta["ok"] is False
        assert dump.meta["plan"] == "majority-crash"
        # Crash markers recorded for the dead nodes.
        for node in (0, 1, 2):
            kinds = [e["kind"] for e in dump.events[node]]
            assert "crash" in kinds
        # Recorded history from a *failing* chaos run still replays
        # deterministically — a failure is explained, not garbled.
        findings = []
        for node in dump.nodes():
            findings.extend(NodeReplayer.from_dump(dump, node).verify())
        assert findings == []

    def test_bisect_on_failing_crash_dump(self, tmp_path):
        """The acceptance path: bisect a real failing chaos dump.

        The audited rule is injected into recorded history (a forged
        token regeneration on a lock whose token is alive) and bisect
        must name exactly that event's node and seq.
        """

        from repro.faults.recovery import RecoveryConfig

        plan = FaultPlan(
            crashes=(
                CrashEvent(node=0, at=2.0),
                CrashEvent(node=1, at=2.0),
                CrashEvent(node=2, at=2.0),
            ),
            name="lease-crash",
        )
        verdict = run_chaos(
            plan=plan,
            seed=9,
            nodes=5,
            duration=6.0,
            grace=6.0,
            config=RecoveryConfig(lease_duration=1e6),
            flight_dir=str(tmp_path),
        )
        assert not verdict.ok
        flight = verdict.data["flight"]
        assert "dump" in flight
        dump = load_dump(flight["dump"])
        lock_id = None
        holder = None
        # Find a lock some surviving node believes it holds the token
        # for, and a different *surviving* node to forge a duplicate
        # token on (a crashed node's state is excluded from the audited
        # cluster view, so forging there would never fire the rule).
        crashed = {
            node
            for node in dump.nodes()
            if any(e["kind"] == "crash" for e in dump.events[node])
        }
        token_by_lock = {}
        for node in dump.nodes():
            state = NodeReplayer.from_dump(dump, node).state_at(1 << 60)
            for lock, lock_state in state["locks"]:
                if lock_state.get("token"):
                    token_by_lock[lock] = node
        for lock, node in token_by_lock.items():
            lock_id, holder = lock, node
            break
        assert lock_id is not None
        victim = next(
            n for n in dump.nodes() if n != holder and n not in crashed
        )
        events = dump.events[victim]
        last = max(e["seq"] for e in events)
        latest_t = max(
            float(e.get("t", 0.0))
            for node_events in dump.events.values()
            for e in node_events
        )
        events.append(
            {
                "seq": last + 1,
                "t": latest_t + 1.0,
                "kind": "op",
                "lock": lock_id,
                "op": "regenerate_token",
                "args": {"epoch": 999},
                "serials": [1 << 30],
            }
        )
        result = bisect_timeline(dump, "token-split", lock=str(lock_id))
        assert result["fires"]
        assert result["node"] == victim
        assert result["seq"] == last + 1


class TestRecordingIsBitIdentical:
    def test_message_counts_and_grant_order_unchanged(self):
        """Recording must not perturb the run (acceptance criterion)."""

        from repro.core.automaton import ProtocolOptions
        from repro.obs.flightrec import attach_recorders
        from repro.sim.cluster import SimHierarchicalCluster
        from repro.sim.engine import run_processes

        from repro.metrics import MetricsCollector
        from repro.verification.invariants import FifoObserver

        def drive(record):
            metrics = MetricsCollector()
            fifo = FifoObserver()
            cluster = SimHierarchicalCluster(
                4,
                seed=17,
                monitor=fifo,
                metrics=metrics,
                options=ProtocolOptions(recovery=True),
            )
            if record:
                attach_recorders(cluster, checkpoint_every=8)

            def body(node):
                client = cluster.client(node)
                for step in range(6):
                    yield client.acquire("t", LockMode.IR)
                    yield client.acquire(
                        f"r{(node + step) % 3}", LockMode.W
                    )
                    yield Timeout(cluster.sim, 0.002)
                    client.release(f"r{(node + step) % 3}", LockMode.W)
                    client.release("t", LockMode.IR)
                    yield Timeout(cluster.sim, 0.001)

            run_processes(cluster.sim, [body(n) for n in range(4)])
            grants = {
                lock_id: [(e.node, str(e.mode)) for e in events]
                for lock_id, events in fifo.grant_log.items()
            }
            return dict(metrics.message_counts), grants, cluster.sim.now

        assert drive(record=False) == drive(record=True)

"""ReliableChannel: ordering, dedup, retransmission, incarnations."""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.core.messages import RequestMessage, fresh_request_id
from repro.core.modes import LockMode
from repro.faults.channel import ReliableChannel
from repro.faults.messages import SessionAck, SessionMessage


class ManualScheduler:
    """Deterministic test clock: fire due callbacks on ``advance``."""

    def __init__(self) -> None:
        self.t = 0.0
        self._due: List[Tuple[float, int, Callable[[], None]]] = []
        self._serial = 0

    def now(self) -> float:
        return self.t

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        self._due.append((self.t + delay, self._serial, fn))
        self._serial += 1

    def advance(self, dt: float) -> None:
        self.t += dt
        due = sorted(e for e in self._due if e[0] <= self.t)
        self._due = [e for e in self._due if e[0] > self.t]
        for _, _, fn in due:
            fn()


def _payload(n: int) -> RequestMessage:
    return RequestMessage(
        lock_id="lock",
        sender=0,
        origin=0,
        mode=LockMode.R,
        request_id=fresh_request_id(n, 0),
    )


class _Pair:
    """Two channels joined by a controllable fabric."""

    def __init__(self, drop_next: int = 0) -> None:
        self.scheduler = ManualScheduler()
        self.delivered: List[RequestMessage] = []
        self.wire: List[Tuple[int, object]] = []  # (dest, frame) log
        self.drop_next = drop_next

        def fabric_for(src: int):
            def send(dest: int, frame) -> None:
                self.wire.append((dest, frame))
                if self.drop_next > 0 and isinstance(frame, SessionMessage):
                    self.drop_next -= 1
                    return
                target = self.b if dest == 1 else self.a
                target.handle(frame)

            return send

        self.a = ReliableChannel(
            node_id=0,
            scheduler=self.scheduler,
            send=fabric_for(0),
            deliver=lambda sender, payload: self.delivered.append(payload),
            retry_base=0.1,
            retry_cap=0.4,
        )
        self.b = ReliableChannel(
            node_id=1,
            scheduler=self.scheduler,
            send=fabric_for(1),
            deliver=lambda sender, payload: self.delivered.append(payload),
            retry_base=0.1,
            retry_cap=0.4,
        )


class TestDelivery:
    def test_in_order_exactly_once(self):
        pair = _Pair()
        messages = [_payload(n) for n in range(5)]
        for message in messages:
            pair.a.send(1, message)
        assert pair.delivered == messages
        assert pair.b.duplicates_dropped == 0

    def test_duplicate_frame_delivered_once(self):
        pair = _Pair()
        message = _payload(0)
        pair.a.send(1, message)
        frame = next(
            f for _, f in pair.wire if isinstance(f, SessionMessage)
        )
        pair.b.handle(frame)  # the network delivered a second copy
        assert pair.delivered == [message]
        assert pair.b.duplicates_dropped == 1

    def test_dropped_frame_is_retransmitted(self):
        pair = _Pair(drop_next=1)
        message = _payload(0)
        pair.a.send(1, message)
        assert pair.delivered == []  # first copy lost
        pair.scheduler.advance(0.11)  # past retry_base
        assert pair.delivered == [message]
        assert pair.a.retransmits >= 1

    def test_ack_quiesces_the_stream(self):
        pair = _Pair()
        pair.a.send(1, _payload(0))
        assert pair.a.idle()
        before = pair.a.retransmits
        pair.scheduler.advance(5.0)
        assert pair.a.retransmits == before

    def test_backoff_is_capped(self):
        pair = _Pair(drop_next=100)  # black-hole fabric
        pair.a.send(1, _payload(0))
        for _ in range(40):
            pair.scheduler.advance(0.4)
        # 16 seconds of silence with a 0.4 cap: at least ~16/0.4 retries
        # minus backoff warmup; far more than the 4 an uncapped doubling
        # schedule would manage.
        assert pair.a.retransmits > 10


class TestIncarnations:
    def test_stale_boot_frames_dropped(self):
        pair = _Pair()
        stale = SessionMessage(
            lock_id="lock", sender=0, seq=0, payload=_payload(0), boot=0
        )
        pair.b.handle(
            SessionMessage(
                lock_id="lock", sender=0, seq=0, payload=_payload(1), boot=1
            )
        )
        delivered_before = list(pair.delivered)
        pair.b.handle(stale)  # older incarnation must not regress the stream
        assert pair.delivered == delivered_before
        assert pair.b.duplicates_dropped >= 1

    def test_non_session_messages_ignored(self):
        pair = _Pair()
        assert pair.a.handle(_payload(0)) is False

    def test_stop_peer_discards_outstanding_state(self):
        pair = _Pair(drop_next=100)
        pair.a.send(1, _payload(0))
        assert not pair.a.idle()
        pair.a.stop_peer(1)
        assert pair.a.idle()


class TestAcks:
    def test_stale_ack_does_not_trim_new_stream(self):
        pair = _Pair(drop_next=100)
        pair.a.send(1, _payload(0))
        # An ack for a different incarnation of our stream is ignored.
        pair.a.handle(
            SessionAck(lock_id="lock", sender=1, ack=0, boot=99)
        )
        assert not pair.a.idle()

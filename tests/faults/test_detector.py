"""HeartbeatDetector: suspicion, grace, and revival."""

from __future__ import annotations

from repro.faults.detector import HeartbeatDetector


class TestHeartbeatDetector:
    def test_initial_grace_period(self):
        detector = HeartbeatDetector([1, 2], timeout=1.0, now=0.0)
        assert detector.check(0.5) == []
        assert detector.suspected == set()

    def test_silence_beyond_timeout_suspects(self):
        detector = HeartbeatDetector([1, 2], timeout=1.0, now=0.0)
        detector.beat(1, 0.9)
        assert detector.check(1.0) == [2]
        assert detector.is_suspected(2)
        assert not detector.is_suspected(1)
        assert detector.live_peers() == [1]

    def test_suspect_reported_once(self):
        detector = HeartbeatDetector([1], timeout=1.0, now=0.0)
        assert detector.check(2.0) == [1]
        assert detector.check(3.0) == []  # still dead, not news

    def test_beat_revives(self):
        detector = HeartbeatDetector([1], timeout=1.0, now=0.0)
        detector.check(2.0)
        assert detector.is_suspected(1)
        assert detector.beat(1, 2.5) is True  # revival reported
        assert not detector.is_suspected(1)
        assert detector.check(2.9) == []

    def test_beat_from_untracked_peer_ignored(self):
        detector = HeartbeatDetector([1], timeout=1.0, now=0.0)
        assert detector.beat(99, 0.5) is False
        assert detector.live_peers() == [1]

    def test_beat_while_live_returns_false(self):
        detector = HeartbeatDetector([1], timeout=1.0, now=0.0)
        assert detector.beat(1, 0.5) is False

"""The recovery stack end to end on the simulator.

The deterministic acceptance scenario lives here: crash the token node
while a request is outstanding, watch the survivors regenerate the token
under a fresh epoch, and require that every outstanding request is still
granted with Rule 1 intact throughout.
"""

from __future__ import annotations

import pytest

from repro.core.modes import LockMode
from repro.errors import ConfigurationError
from repro.faults.chaos import run_chaos
from repro.faults.plan import (
    DROP,
    DUPLICATE,
    CrashEvent,
    FaultPlan,
    FaultRule,
)
from repro.faults.recovery import RecoveryConfig
from repro.faults.simcluster import ResilientSimCluster
from repro.sim.engine import Process, Timeout
from repro.verification.invariants import CompatibilityMonitor

#: Sim-tuned recovery: everything fast enough that a 20-second scenario
#: covers suspicion, probing, settle and regeneration comfortably.
FAST_SIM = RecoveryConfig(
    heartbeat_interval=0.2,
    suspect_timeout=1.0,
    retry_base=0.3,
    retry_cap=1.2,
    channel_retry_base=0.2,
    channel_retry_cap=0.8,
    probe_timeout=0.5,
    orphan_interval=0.25,
    regen_settle=0.6,
)


def test_two_nodes_minimum():
    with pytest.raises(ConfigurationError, match="two nodes"):
        ResilientSimCluster(1)


class TestTokenCrashRegeneration:
    """The tentpole acceptance scenario, fully deterministic."""

    def _run(self):
        # Token home for every lock is node 0; crash it mid-flight.
        plan = FaultPlan(crashes=(CrashEvent(node=0, at=2.0),), seed=0)
        monitor = CompatibilityMonitor()
        cluster = ResilientSimCluster(
            4, plan=plan, seed=0, monitor=monitor, config=FAST_SIM
        )
        sim = cluster.sim
        grants = []

        def holder():
            # Node 1 takes R before the crash and sits on it across it.
            yield cluster.client(1).acquire("lock", LockMode.R)
            grants.append((sim.now, 1, LockMode.R))
            yield Timeout(sim, 6.0)
            cluster.client(1).release("lock", LockMode.R)

        def writer():
            # Node 2 wants W: incompatible with node 1's R, so this
            # request is outstanding at the token node when it dies.
            yield Timeout(sim, 1.0)
            yield cluster.client(2).acquire("lock", LockMode.W)
            grants.append((sim.now, 2, LockMode.W))
            yield Timeout(sim, 0.5)
            cluster.client(2).release("lock", LockMode.W)

        def late_reader():
            # Issued well after the crash: must route to the new token.
            yield Timeout(sim, 10.0)
            yield cluster.client(3).acquire("lock", LockMode.R)
            grants.append((sim.now, 3, LockMode.R))
            yield Timeout(sim, 0.5)
            cluster.client(3).release("lock", LockMode.R)

        Process(sim, holder())
        Process(sim, writer())
        Process(sim, late_reader())
        sim.run(until=30.0)
        return cluster, grants

    def test_all_outstanding_requests_granted(self):
        cluster, grants = self._run()
        assert [(n, m) for _, n, m in grants] == [
            (1, LockMode.R),
            (2, LockMode.W),
            (3, LockMode.R),
        ]

    def test_token_regenerated_under_new_epoch(self):
        cluster, _ = self._run()
        stats = cluster.recovery_stats()
        assert 0 in stats["suspected_nodes"]
        regenerations = stats["regenerations"]
        assert regenerations, "survivors never regenerated the token"
        assert all(r["epoch"] >= 1 for r in regenerations)
        # Exactly one live token, on a survivor, with the bumped epoch.
        holders = [
            n
            for n in cluster.live_nodes()
            if cluster.lockspaces[n].automaton("lock").has_token
        ]
        assert len(holders) == 1
        assert holders[0] != 0
        automaton = cluster.lockspaces[holders[0]].automaton("lock")
        assert automaton.token_epoch >= 1

    def test_rule1_held_throughout(self):
        # CompatibilityMonitor raises InvariantViolation the instant two
        # incompatible modes are concurrently held; a clean run IS the
        # assertion.  Confirm it actually audited something.
        cluster, _ = self._run()
        assert cluster.monitor.grants >= 3

    def test_deterministic_across_runs(self):
        _, first = self._run()
        _, second = self._run()
        assert first == second


class TestRestart:
    def test_restarted_node_rejoins_and_acquires(self):
        plan = FaultPlan(
            crashes=(CrashEvent(node=2, at=1.0, restart_at=3.0),), seed=0
        )
        monitor = CompatibilityMonitor()
        cluster = ResilientSimCluster(
            3, plan=plan, seed=0, monitor=monitor, config=FAST_SIM
        )
        sim = cluster.sim
        grants = []

        def reborn():
            yield Timeout(sim, 8.0)  # well after the restart
            yield cluster.client(2).acquire("lock", LockMode.W)
            grants.append(2)
            yield Timeout(sim, 0.2)
            cluster.client(2).release("lock", LockMode.W)

        Process(sim, reborn())
        sim.run(until=20.0)
        assert grants == [2]
        assert cluster.managers[2].boot == 1


class TestLossAndDuplication:
    def _workload(self, cluster, node, count=6):
        sim = cluster.sim

        def body():
            client = cluster.client(node)
            for i in range(count):
                mode = LockMode.W if (node + i) % 3 == 0 else LockMode.R
                yield client.acquire("lock", mode)
                yield Timeout(sim, 0.1)
                client.release("lock", mode)
                yield Timeout(sim, 0.15)

        return body()

    def _run_plan(self, plan):
        monitor = CompatibilityMonitor()
        cluster = ResilientSimCluster(
            3, plan=plan, seed=3, monitor=monitor, config=FAST_SIM
        )
        for node in range(3):
            Process(cluster.sim, self._workload(cluster, node))
        cluster.sim.run(until=60.0)  # monitor raises on any Rule-1 break
        for node in range(3):
            space = cluster.lockspaces[node]
            assert space.automaton("lock").pending_mode is LockMode.NONE
        return cluster

    def test_survives_message_drops(self):
        plan = FaultPlan(
            rules=(FaultRule(action=DROP, probability=0.05, until=20.0),),
            seed=3,
        )
        cluster = self._run_plan(plan)
        assert cluster.network.messages_dropped > 0

    def test_survives_message_duplication(self):
        plan = FaultPlan(
            rules=(
                FaultRule(action=DUPLICATE, probability=0.10, until=20.0),
            ),
            seed=3,
        )
        cluster = self._run_plan(plan)
        assert cluster.network.injector.duplicated > 0
        stats = cluster.recovery_stats()
        assert stats["duplicates_dropped"] > 0


class TestChaosVerdicts:
    @pytest.mark.parametrize("plan", ["none", "drop1", "dup1", "jitter"])
    def test_light_plans_converge(self, plan):
        verdict = run_chaos(
            plan=plan, seed=0, nodes=4, duration=6.0, grace=12.0
        )
        assert verdict.ok, verdict.to_json()
        assert verdict.data["invariants"]["rule1_violations"] == 0

    @pytest.mark.chaos
    def test_token_crash_plan(self):
        verdict = run_chaos(
            plan="token-crash", seed=7, nodes=4, duration=10.0
        )
        assert verdict.ok, verdict.to_json()
        assert verdict.data["recovery"]["regenerations"]

    @pytest.mark.chaos
    def test_partition_heals_with_quorum(self):
        verdict = run_chaos(
            plan="partition", seed=0, nodes=8, duration=10.0
        )
        assert verdict.ok, verdict.to_json()
        assert verdict.data["invariants"]["rule1_violations"] == 0

    def test_verdict_is_deterministic(self):
        first = run_chaos(plan="smoke", seed=5, nodes=3, duration=5.0)
        second = run_chaos(plan="smoke", seed=5, nodes=3, duration=5.0)
        assert first.data == second.data

"""Shared configuration for the benchmark harness.

Figure-scale benchmarks run one full deterministic sweep per session
(cached here) and register a single pedantic timing round — re-running a
multi-minute sweep many times would add no statistical value since the
simulation itself is deterministic under its seed.
"""

from __future__ import annotations

import os

import pytest

from repro.workload.spec import WorkloadSpec

#: Set REPRO_BENCH_QUICK=1 to run the CI-scale sweeps instead.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

#: Node counts for the paper-scale figures.
FULL_COUNTS = (2, 5, 10, 20, 40, 60, 80, 100, 120)
QUICK_COUNTS = (2, 4, 8, 16)


@pytest.fixture(scope="session")
def node_counts():
    """Sweep points (paper scale unless REPRO_BENCH_QUICK=1)."""

    return QUICK_COUNTS if QUICK else FULL_COUNTS


@pytest.fixture(scope="session")
def paper_spec():
    """The paper's workload parameters (Section 4)."""

    return WorkloadSpec(ops_per_node=15 if QUICK else 30, seed=2003)

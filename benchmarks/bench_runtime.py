"""Deployment benches: lock-service throughput on the real runtimes.

The figure benches measure the *protocol* in virtual time; these measure
the *deployments* in wall time — uncontended and contended operation
throughput through the threaded in-memory cluster and the TCP loopback
cluster.  They guard the engineering (transport framing, per-node
serialization, blocking-client plumbing) against regressions.
"""

from __future__ import annotations

import threading

from repro.core.modes import LockMode
from repro.runtime.cluster import ThreadedHierarchicalCluster
from repro.runtime.tcp import TcpTransport

OPS = 200
TIMEOUT = 30.0


def _uncontended(cluster) -> int:
    client = cluster.client(1)
    for index in range(OPS):
        client.acquire("t", LockMode.R, timeout=TIMEOUT)
        client.release("t", LockMode.R)
    return OPS


def _contended(cluster) -> int:
    def worker(node: int) -> None:
        client = cluster.client(node)
        for _ in range(OPS // 4):
            client.acquire("t", LockMode.W, timeout=TIMEOUT)
            client.release("t", LockMode.W)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return OPS


def test_threaded_uncontended_reads(benchmark):
    """Acquire/release cycles of a shared R lock (in-memory transport)."""

    with ThreadedHierarchicalCluster(4) as cluster:
        _uncontended(cluster)  # warm the copyset path
        count = benchmark.pedantic(
            _uncontended, args=(cluster,), rounds=3, iterations=1
        )
    assert count == OPS


def test_threaded_contended_writes(benchmark):
    """Four nodes fighting over one exclusive lock (in-memory transport)."""

    with ThreadedHierarchicalCluster(4) as cluster:
        count = benchmark.pedantic(
            _contended, args=(cluster,), rounds=3, iterations=1
        )
    assert count == OPS


def test_tcp_uncontended_reads(benchmark):
    """The same uncontended cycle over real loopback TCP sockets."""

    with ThreadedHierarchicalCluster(4, transport=TcpTransport()) as cluster:
        _uncontended(cluster)
        count = benchmark.pedantic(
            _uncontended, args=(cluster,), rounds=3, iterations=1
        )
    assert count == OPS


def test_tcp_contended_writes(benchmark):
    """Contended exclusive traffic over real loopback TCP sockets."""

    with ThreadedHierarchicalCluster(4, transport=TcpTransport()) as cluster:
        count = benchmark.pedantic(
            _contended, args=(cluster,), rounds=3, iterations=1
        )
    assert count == OPS

"""Record the recovery stack's overhead baseline into BENCH_faults.json.

Runs the deterministic chaos workload three times per seed — fault-free
(plan ``none``), under a 1 % drop plan (``drop1``), and under the
``token-crash`` plan with WAL durability on — and records message
overhead, grant latency, and journaling cost (WAL appends per request)
for each, plus the drop1/none delta.  Later PRs rerun with ``--check``
to diff the fresh summary against the checked-in file and fail loudly on
>10 % drift — catching recovery-path regressions (retransmission storms,
latency blowups, journal write amplification) that the pass/fail chaos
verdict alone would hide.

The chaos harness is fully seed-deterministic, so on unchanged code a
rerun reproduces the recorded summary exactly; the 10 % tolerance exists
for intentional protocol changes, which must re-record the baseline
(and say so in the PR).

Usage::

    PYTHONPATH=src python benchmarks/record_faults_baseline.py            # record
    PYTHONPATH=src python benchmarks/record_faults_baseline.py --check   # verify
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Dict, List, Sequence

from repro.faults.chaos import run_chaos

SEEDS = (0, 7, 13)
PLANS = ("none", "drop1")
NODES = 5
DURATION = 20.0
LOCKS = 3

#: The durable crash-restart group: same workload, token-crash plan,
#: WAL journaling on.  Every run must converge clean (durability makes
#: blank-rejoin findings hard failures), so the baseline also gates the
#: write-side cost of journaling (WAL appends per request).
DURABLE_GROUP = "token-crash-durable"

#: The lease-expiry group: minority-partition (the cut never heals), so
#: the stranded holder's leases expire and the majority must revoke to
#: make progress.  Gates the renewal piggyback cost and the time from
#: lease deadline to revocation.  Seeds are chosen so the minority node
#: actually holds leased modes at cut time — a seed where it holds
#: nothing exercises nothing.
LEASE_GROUP = "lease-expiry"
LEASE_SEEDS = (2, 3, 7)

#: The membership-churn group: the three named churn plans (a rolling
#: join, a graceful drain with a replacement join, and a crash followed
#: by decommission + replacement) run under load.  Gates the message
#: cost of view changes plus the two user-facing latencies of dynamic
#: membership: how long a joiner takes to install a view containing
#: itself, and how long a graceful drain takes from begin to removal.
CHURN_GROUP = "membership-churn"
CHURN_PLANS = ("rolling-join", "graceful-drain", "kill-and-replace")
CHURN_SEEDS = (0, 1)

#: Relative drift beyond which ``--check`` fails.
TOLERANCE = 0.10

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(_ROOT, "BENCH_faults.json")

#: Summary metrics diffed by ``--check``, per plan.
PLAN_METRICS = ("messages_per_request", "latency_mean", "latency_p95")

#: Summary metrics of the durable group (adds journaling cost).
DURABLE_METRICS = PLAN_METRICS + ("wal_appends_per_request",)

#: Summary metrics of the lease-expiry group.
LEASE_METRICS = (
    "messages_per_request",
    "lease_revoke_latency_mean",
    "lease_renewals_per_request",
)

#: Summary metrics of the membership-churn group.
CHURN_METRICS = (
    "messages_per_request",
    "join_settle_mean",
    "drain_latency_mean",
)

#: Cross-plan overhead factors diffed by ``--check``.
OVERHEAD_METRICS = ("messages_per_request_factor", "latency_mean_factor")


def _one_run(plan: str, seed: int, durable: bool = False) -> Dict[str, object]:
    verdict = run_chaos(
        plan=plan, seed=seed, nodes=NODES, duration=DURATION, locks=LOCKS,
        durable=durable,
    )
    data = verdict.data
    requests = data["requests"]
    recovery = data["recovery"]
    faults = data["faults"]
    issued = int(requests["issued"])  # type: ignore[index]
    sent = int(faults["messages_sent"])  # type: ignore[index]
    run = {
        "seed": seed,
        "ok": data["ok"],
        "requests": issued,
        "granted": requests["granted"],  # type: ignore[index]
        "messages_sent": sent,
        "messages_per_request": round(sent / issued, 3) if issued else None,
        "messages_dropped": faults["messages_dropped"],  # type: ignore[index]
        "latency_mean": data["latency"]["mean"],  # type: ignore[index]
        "latency_p95": data["latency"]["p95"],  # type: ignore[index]
        "app_retransmits": recovery["app_retransmits"],  # type: ignore[index]
        "channel_retransmits": recovery["channel_retransmits"],  # type: ignore[index]
        "duplicates_dropped": recovery["duplicates_dropped"],  # type: ignore[index]
    }
    if durable:
        durability = data["durability"]
        wal = durability["wal"]  # type: ignore[index]
        appends = int(wal["appends"])  # type: ignore[index]
        run["wal_appends"] = appends
        run["wal_appends_per_request"] = (
            round(appends / issued, 3) if issued else None
        )
        run["wal_snapshots"] = wal["snapshots"]  # type: ignore[index]
        run["durable_restarts"] = len(durability["restarts"])  # type: ignore[arg-type]
    leases = data["leases"]
    if leases["revoked"] or leases["renewals_sent"]:  # type: ignore[index]
        renewals = int(leases["renewals_sent"])  # type: ignore[index]
        run["leases_revoked"] = leases["revoked"]  # type: ignore[index]
        run["lease_revoke_latency_mean"] = leases["revoke_latency_mean"]  # type: ignore[index]
        run["lease_renewals_per_request"] = (
            round(renewals / issued, 3) if issued else None
        )
    membership = data.get("membership")
    if membership is not None:
        run["view_epochs"] = membership["view_epochs"]  # type: ignore[index]
        run["join_settle"] = [
            float(entry["settle_latency"])
            for entry in membership["join_settle"]  # type: ignore[index]
            if entry["settle_latency"] is not None
        ]
        run["drain_latency"] = [
            float(entry["drain_latency"])
            for entry in membership["drain_latency"]  # type: ignore[index]
            if entry["drain_latency"] is not None
        ]
    return run


def measure() -> Dict[str, object]:
    """Run the chaos matrix; return ``{"summary": ..., "runs": ...}``."""

    runs: Dict[str, List[Dict[str, object]]] = {p: [] for p in PLANS}
    for plan in PLANS:
        for seed in SEEDS:
            runs[plan].append(_one_run(plan, seed))
    runs[DURABLE_GROUP] = [
        _one_run("token-crash", seed, durable=True) for seed in SEEDS
    ]
    failed = [r["seed"] for r in runs[DURABLE_GROUP] if not r["ok"]]
    if failed:
        raise SystemExit(
            f"durable token-crash runs failed for seeds {failed}: "
            "durability must converge clean before its cost is recorded"
        )
    runs[LEASE_GROUP] = [
        _one_run("minority-partition", seed) for seed in LEASE_SEEDS
    ]
    bad = [
        r["seed"]
        for r in runs[LEASE_GROUP]
        if not r["ok"] or not r.get("leases_revoked")
    ]
    if bad:
        raise SystemExit(
            f"lease-expiry runs for seeds {bad} failed or revoked "
            "nothing: the group must exercise expiry before its cost "
            "is recorded"
        )
    churn_rows: List[Dict[str, object]] = []
    for plan in CHURN_PLANS:
        for seed in CHURN_SEEDS:
            row = _one_run(plan, seed)
            row["plan"] = plan
            churn_rows.append(row)
    runs[CHURN_GROUP] = churn_rows
    bad_churn = [
        (r["plan"], r["seed"]) for r in churn_rows if not r["ok"]
    ]
    if bad_churn:
        raise SystemExit(
            f"membership-churn runs failed: {bad_churn}; churn must "
            "converge clean before its cost is recorded"
        )
    churn_settles = [
        value for r in churn_rows for value in r.get("join_settle", ())
    ]
    churn_drains = [
        value for r in churn_rows for value in r.get("drain_latency", ())
    ]
    if not churn_settles or not churn_drains:
        raise SystemExit(
            "membership-churn recorded no join settle or drain latency: "
            "the plans must exercise both before their cost is recorded"
        )

    def _mean(plan: str, field: str) -> float:
        values = [float(r[field]) for r in runs[plan]]  # type: ignore[arg-type]
        return round(sum(values) / len(values), 4)

    summary: Dict[str, Dict[str, float]] = {
        plan: {metric: _mean(plan, metric) for metric in PLAN_METRICS}
        for plan in PLANS
    }
    summary[DURABLE_GROUP] = {
        metric: _mean(DURABLE_GROUP, metric) for metric in DURABLE_METRICS
    }
    summary[LEASE_GROUP] = {
        metric: _mean(LEASE_GROUP, metric) for metric in LEASE_METRICS
    }
    churn_msgs = [
        float(r["messages_per_request"]) for r in churn_rows  # type: ignore[arg-type]
    ]
    summary[CHURN_GROUP] = {
        "messages_per_request": round(
            sum(churn_msgs) / len(churn_msgs), 4
        ),
        "join_settle_mean": round(
            sum(churn_settles) / len(churn_settles), 4
        ),
        "drain_latency_mean": round(
            sum(churn_drains) / len(churn_drains), 4
        ),
    }
    clean, lossy = summary["none"], summary["drop1"]
    summary["overhead"] = {
        "messages_per_request_factor": round(
            lossy["messages_per_request"] / clean["messages_per_request"], 3
        ),
        "latency_mean_factor": round(
            lossy["latency_mean"] / clean["latency_mean"], 3
        ),
    }
    return {"summary": summary, "runs": runs}


def compare_summary(
    baseline: Dict[str, object],
    current: Dict[str, Dict[str, float]],
    tolerance: float = TOLERANCE,
) -> List[str]:
    """Return one human-readable line per out-of-tolerance summary metric.

    Empty list means the fresh *current* summary matches the checked-in
    *baseline* within *tolerance* relative drift everywhere.  A missing
    plan or metric is reported as drift too — a baseline that no longer
    describes the matrix is stale, not passing.
    """

    problems: List[str] = []
    base_summary = baseline.get("summary", {})
    groups = [(plan, PLAN_METRICS) for plan in PLANS]
    groups.append((DURABLE_GROUP, DURABLE_METRICS))
    groups.append((LEASE_GROUP, LEASE_METRICS))
    groups.append((CHURN_GROUP, CHURN_METRICS))
    groups.append(("overhead", OVERHEAD_METRICS))
    for group, metrics in groups:
        base_group = base_summary.get(group)  # type: ignore[union-attr]
        cur_group = current.get(group)
        if base_group is None:
            problems.append(f"faults_baseline: {group!r} not in baseline")
            continue
        if cur_group is None:
            problems.append(f"faults_baseline: {group!r} not measured")
            continue
        for metric in metrics:
            if metric not in base_group:
                problems.append(
                    f"faults_baseline/{group}: {metric!r} not in baseline"
                )
                continue
            base_f = float(base_group[metric])
            cur_f = float(cur_group.get(metric, 0.0))
            if base_f == 0.0:
                drift = abs(cur_f)
            else:
                drift = abs(cur_f - base_f) / abs(base_f)
            if drift > tolerance:
                problems.append(
                    f"faults_baseline/{group}/{metric}: {cur_f:.4f} vs "
                    f"baseline {base_f:.4f} ({drift:+.1%} drift, "
                    f"tolerance {tolerance:.0%})"
                )
    return problems


def _load(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check(path: str) -> int:
    """Measure a fresh matrix, diff against the checked-in baseline."""

    if not os.path.exists(path):
        print(
            f"missing baseline file {path} (run without --check to "
            "record it)",
            file=sys.stderr,
        )
        return 1
    measured = measure()
    problems = compare_summary(_load(path), measured["summary"])
    if problems:
        print("FAULTS BASELINE DRIFT — recovery overhead moved beyond "
              "tolerance:", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        print(
            "If this change is intentional, re-record with "
            "`PYTHONPATH=src python benchmarks/record_faults_baseline.py` "
            "and commit the updated BENCH_faults.json.",
            file=sys.stderr,
        )
        return 1
    print("faults baseline OK: chaos overhead within "
          f"{TOLERANCE:.0%} of checked-in values")
    return 0


def record(out_path: str) -> Dict[str, object]:
    """Measure and write the baseline file; return the report."""

    measured = measure()
    report = {
        "benchmark": "faults_baseline",
        "config": {
            "plans": list(PLANS),
            "durable_plan": "token-crash",
            "lease_plan": "minority-partition",
            "churn_plans": list(CHURN_PLANS),
            "seeds": list(SEEDS),
            "lease_seeds": list(LEASE_SEEDS),
            "churn_seeds": list(CHURN_SEEDS),
            "nodes": NODES,
            "duration": DURATION,
            "locks": LOCKS,
        },
        "summary": measured["summary"],
        "runs": measured["runs"],
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=BASELINE_PATH, metavar="PATH")
    parser.add_argument(
        "--check", action="store_true",
        help="compare a fresh run against the checked-in baseline "
        "instead of rewriting it; exit 1 on >10%% drift",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check(args.out)
    report = record(args.out)
    summary = report["summary"]
    for plan in PLANS:
        stats = summary[plan]  # type: ignore[index]
        print(
            f"{plan:>6}: {stats['messages_per_request']:.2f} msgs/req, "
            f"mean latency {stats['latency_mean'] * 1000:.1f} ms, "
            f"p95 {stats['latency_p95'] * 1000:.1f} ms"
        )
    durable = summary[DURABLE_GROUP]  # type: ignore[index]
    print(
        f"{DURABLE_GROUP}: {durable['messages_per_request']:.2f} msgs/req, "
        f"mean latency {durable['latency_mean'] * 1000:.1f} ms, "
        f"{durable['wal_appends_per_request']:.2f} WAL appends/req"
    )
    lease = summary[LEASE_GROUP]  # type: ignore[index]
    print(
        f"{LEASE_GROUP}: {lease['messages_per_request']:.2f} msgs/req, "
        f"revoke latency {lease['lease_revoke_latency_mean'] * 1000:.0f} ms, "
        f"{lease['lease_renewals_per_request']:.2f} renewals/req"
    )
    churn = summary[CHURN_GROUP]  # type: ignore[index]
    print(
        f"{CHURN_GROUP}: {churn['messages_per_request']:.2f} msgs/req, "
        f"join settle {churn['join_settle_mean'] * 1000:.0f} ms, "
        f"drain {churn['drain_latency_mean'] * 1000:.0f} ms"
    )
    overhead = summary["overhead"]  # type: ignore[index]
    print(
        f"drop1/none: {overhead['messages_per_request_factor']}x messages, "
        f"{overhead['latency_mean_factor']}x mean latency -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Record the recovery stack's overhead baseline into BENCH_faults.json.

Runs the deterministic chaos workload twice per seed — once fault-free
(plan ``none``) and once under a 1 % drop plan (``drop1``) — and records
message overhead and grant latency for each, plus the delta.  Later PRs
diff against the checked-in file to catch recovery-path regressions
(retransmission storms, latency blowups) that the pass/fail chaos
verdict alone would hide.

Usage::

    PYTHONPATH=src python benchmarks/record_faults_baseline.py \
        [--out BENCH_faults.json]

Everything is seed-deterministic, so reruns on the same code produce an
identical file (the environment block excepted).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Dict, List

from repro.faults.chaos import run_chaos

SEEDS = (0, 7, 13)
PLANS = ("none", "drop1")
NODES = 5
DURATION = 20.0
LOCKS = 3


def _one_run(plan: str, seed: int) -> Dict[str, object]:
    verdict = run_chaos(
        plan=plan, seed=seed, nodes=NODES, duration=DURATION, locks=LOCKS
    )
    data = verdict.data
    requests = data["requests"]
    recovery = data["recovery"]
    faults = data["faults"]
    issued = int(requests["issued"])  # type: ignore[index]
    sent = int(faults["messages_sent"])  # type: ignore[index]
    return {
        "seed": seed,
        "ok": data["ok"],
        "requests": issued,
        "granted": requests["granted"],  # type: ignore[index]
        "messages_sent": sent,
        "messages_per_request": round(sent / issued, 3) if issued else None,
        "messages_dropped": faults["messages_dropped"],  # type: ignore[index]
        "latency_mean": data["latency"]["mean"],  # type: ignore[index]
        "latency_p95": data["latency"]["p95"],  # type: ignore[index]
        "app_retransmits": recovery["app_retransmits"],  # type: ignore[index]
        "channel_retransmits": recovery["channel_retransmits"],  # type: ignore[index]
        "duplicates_dropped": recovery["duplicates_dropped"],  # type: ignore[index]
    }


def record(out_path: str) -> Dict[str, object]:
    runs: Dict[str, List[Dict[str, object]]] = {p: [] for p in PLANS}
    for plan in PLANS:
        for seed in SEEDS:
            runs[plan].append(_one_run(plan, seed))

    def _mean(plan: str, field: str) -> float:
        values = [float(r[field]) for r in runs[plan]]  # type: ignore[arg-type]
        return round(sum(values) / len(values), 4)

    summary = {
        plan: {
            "messages_per_request": _mean(plan, "messages_per_request"),
            "latency_mean": _mean(plan, "latency_mean"),
            "latency_p95": _mean(plan, "latency_p95"),
        }
        for plan in PLANS
    }
    clean, lossy = summary["none"], summary["drop1"]
    summary["overhead"] = {
        "messages_per_request_factor": round(
            lossy["messages_per_request"] / clean["messages_per_request"], 3
        ),
        "latency_mean_factor": round(
            lossy["latency_mean"] / clean["latency_mean"], 3
        ),
    }

    report = {
        "benchmark": "faults_baseline",
        "config": {
            "plans": list(PLANS),
            "seeds": list(SEEDS),
            "nodes": NODES,
            "duration": DURATION,
            "locks": LOCKS,
        },
        "summary": summary,
        "runs": runs,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_faults.json")
    args = parser.parse_args(argv)
    report = record(args.out)
    summary = report["summary"]
    for plan in PLANS:
        stats = summary[plan]  # type: ignore[index]
        print(
            f"{plan:>6}: {stats['messages_per_request']:.2f} msgs/req, "
            f"mean latency {stats['latency_mean'] * 1000:.1f} ms, "
            f"p95 {stats['latency_p95'] * 1000:.1f} ms"
        )
    overhead = summary["overhead"]  # type: ignore[index]
    print(
        f"drop1/none: {overhead['messages_per_request_factor']}x messages, "
        f"{overhead['latency_mean_factor']}x mean latency -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Microbenchmarks of the protocol kernel.

These time the hot operations a deployment would care about: the
zero-message local path (Rule 2), the rule-table lookups, a full
request/grant/release round trip through the automata, and queue churn at
the token node.  Unlike the figure sweeps these use pytest-benchmark's
statistical rounds — they are microsecond-scale operations.
"""

from __future__ import annotations

from repro.core.automaton import HierarchicalLockAutomaton
from repro.core.clock import LamportClock
from repro.core.messages import RequestMessage, fresh_request_id
from repro.core.modes import (
    LockMode,
    REAL_MODES,
    child_can_grant,
    compatible,
    freeze_set,
    should_queue,
)
from repro.naimi.automaton import NaimiAutomaton


def _token_node():
    return HierarchicalLockAutomaton(
        node_id=0, lock_id="L", clock=LamportClock(),
        parent=None, has_token=True,
    )


def test_mode_compatibility_lookup(benchmark):
    """One Table 1(a) check (the innermost protocol operation)."""

    result = benchmark(compatible, LockMode.IR, LockMode.IW)
    assert result is True


def test_rule_kernel_full_scan(benchmark):
    """All four rule tables evaluated over every mode pair."""

    def scan():
        count = 0
        for left in REAL_MODES:
            for right in REAL_MODES:
                count += compatible(left, right)
                count += child_can_grant(left, right)
                count += should_queue(left, right)
                count += len(freeze_set(left, right))
        return count

    assert benchmark(scan) > 0


def test_local_reacquisition_path(benchmark):
    """Rule 2's zero-message acquire/release cycle at the token node."""

    automaton = _token_node()

    def cycle():
        automaton.request(LockMode.IR)
        automaton.release(LockMode.IR)

    benchmark(cycle)
    assert automaton.owned_mode() is LockMode.NONE


def test_remote_grant_round_trip(benchmark):
    """Request → copy grant → release over two automata (no transport)."""

    token = _token_node()
    token.request(LockMode.R)  # anchor: R copy grants stay at the token
    child_clock = LamportClock()

    def round_trip():
        child = HierarchicalLockAutomaton(
            node_id=1, lock_id="L", clock=child_clock,
            parent=0, has_token=False,
        )
        out = child.request(LockMode.R)
        grant = token.handle(out[0].message)
        child.handle(grant[0].message)
        release = child.release(LockMode.R)
        token.handle(release[0].message)

    benchmark(round_trip)


def test_token_queue_churn(benchmark):
    """Queueing and draining 50 conflicting requests at the token."""

    def churn():
        token = _token_node()
        token.request(LockMode.W)
        for index in range(50):
            token.handle(
                RequestMessage(
                    lock_id="L", sender=index + 1, origin=index + 1,
                    mode=LockMode.IR,
                    request_id=fresh_request_id(index + 1, index + 1),
                )
            )
        assert token.queue_length == 50
        out = token.release(LockMode.W)
        # The head IR grant is a token transfer (owned NONE < IR) that
        # carries the remaining queue along with it.
        assert len(out) == 1
        assert token.queue_length == 0
        return token

    token = benchmark(churn)
    assert not token.has_token  # the token (and queue) moved on


def test_naimi_round_trip(benchmark):
    """Baseline request → token → release hand-off between two nodes."""

    def round_trip():
        root = NaimiAutomaton(node_id=0, lock_id="L", last=None)
        peer = NaimiAutomaton(node_id=1, lock_id="L", last=0)
        granted = []
        peer._listener = lambda lock, ctx: granted.append(1)
        out = peer.request()
        token_out = root.handle(out[0].message)
        peer.handle(token_out[0].message)
        peer.release()
        return granted

    assert benchmark(round_trip) == [1]

"""Extension bench: strict priority arbitration (intro claim, [11, 12]).

One high-priority client vs a low-priority crowd on one exclusive lock.
Priority scheduling must cut the high-priority client's latency relative
to FIFO, at some cost to the crowd (the documented trade-off).
"""

from __future__ import annotations

from repro.experiments.priority import run_priority_study


def test_priority_arbitration(benchmark):
    """Run the FIFO-vs-priority study once and time it."""

    result = benchmark.pedantic(
        run_priority_study,
        kwargs={"num_nodes": 12, "ops_per_node": 25},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert result.speedup > 1.1
    # The crowd pays for the VIP treatment (or at worst breaks even).
    assert result.priority_crowd_latency >= result.fifo_crowd_latency * 0.9

"""Microbenchmarks of the simulation substrate.

The figure sweeps process hundreds of thousands of events; these benches
track the kernel's raw event throughput and the network's per-message
cost so regressions in the substrate are visible independently of the
protocol.
"""

from __future__ import annotations

from repro.core.messages import Envelope, ReleaseMessage
from repro.core.modes import LockMode
from repro.sim.engine import Simulator, Timeout, run_processes
from repro.sim.network import Network
from repro.sim.rng import Exponential, derive_rng


def test_event_heap_throughput(benchmark):
    """Schedule and drain 10k bare callbacks."""

    def run():
        sim = Simulator()
        for index in range(10_000):
            sim.schedule(index * 1e-4, lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 10_000


def test_process_switching(benchmark):
    """1000 coroutine context switches through Timeout events."""

    def run():
        sim = Simulator()

        def worker():
            for _ in range(100):
                yield Timeout(sim, 0.001)

        run_processes(sim, [worker() for _ in range(10)])
        return sim.events_processed

    assert benchmark(run) > 1000


def test_network_message_cost(benchmark):
    """5000 messages through the latency model with FIFO bookkeeping."""

    def run():
        sim = Simulator()
        network = Network(
            sim, latency=Exponential(0.150), rng=derive_rng(1, "bench")
        )
        delivered = []
        network.register(0, lambda msg: [])
        network.register(1, lambda msg: delivered.append(1) or [])
        message = ReleaseMessage(lock_id="L", sender=0, new_mode=LockMode.NONE)
        for _ in range(5_000):
            network.send(0, [Envelope(1, message)])
        sim.run()
        return len(delivered)

    assert benchmark(run) == 5_000

"""E1-E4 — regenerate Tables 1(a), 1(b), 2(a) and 2(b).

The tables are derived artifacts of the mode algebra; the benchmark both
times the derivation (a microbenchmark of the rule kernel) and verifies
every cell against the reconstruction oracle, printing the rendered
tables as the paper shows them.
"""

from __future__ import annotations

from repro.experiments.tables import (
    EXPECTED_TABLE_1A,
    EXPECTED_TABLE_1B,
    EXPECTED_TABLE_2A,
    EXPECTED_TABLE_2B,
    render_all,
    table_1a_matrix,
    table_1b_matrix,
    table_2a_matrix,
    table_2b_matrix,
)


def test_table_1a(benchmark):
    """Table 1(a): the compatibility matrix."""

    result = benchmark(table_1a_matrix)
    assert result == EXPECTED_TABLE_1A


def test_table_1b(benchmark):
    """Table 1(b): child-grant legality (Rule 3.1)."""

    result = benchmark(table_1b_matrix)
    assert result == EXPECTED_TABLE_1B


def test_table_2a(benchmark):
    """Table 2(a): queue-vs-forward decisions (Rule 4.1)."""

    result = benchmark(table_2a_matrix)
    assert result == EXPECTED_TABLE_2A


def test_table_2b(benchmark):
    """Table 2(b): frozen-mode sets (Rule 6)."""

    result = benchmark(table_2b_matrix)
    assert result == EXPECTED_TABLE_2B


def test_render_all_tables(benchmark):
    """Render all four tables (the harness output for EXPERIMENTS.md)."""

    rendered = benchmark(render_all)
    assert rendered.count("[PASS]") == 4
    print()
    print(rendered)

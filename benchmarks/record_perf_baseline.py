"""Record quick-run Figure 5/6 perf baselines into BENCH_fig5/6.json.

Runs the CI-scale figure sweep once per protocol (the runs are shared:
one sweep yields both the Figure 5 message overhead and the Figure 6
latency factor) at fixed seed and node counts, and writes the two
checked-in baseline files.  Later PRs rerun with ``--check`` to diff the
fresh numbers against the checked-in ones and fail loudly on >10 %
drift — catching perf regressions (message blowups, latency creep) that
the qualitative shape checks alone would hide.

The simulation is fully seed-deterministic, so on unchanged code a
rerun reproduces the recorded series exactly; the 10 % tolerance exists
for intentional protocol changes, which must re-record the baselines
(and say so in the PR).

Usage::

    PYTHONPATH=src python benchmarks/record_perf_baseline.py            # record
    PYTHONPATH=src python benchmarks/record_perf_baseline.py --check   # verify
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Dict, List, Sequence

from repro.experiments.common import sweep
from repro.workload.spec import WorkloadSpec

#: Quick-run sweep shape: CI scale, a couple of seconds per protocol.
NODE_COUNTS = (2, 4, 8, 16, 24)
OPS_PER_NODE = 15
SEED = 2003
PROTOCOLS = ("hierarchical", "naimi-pure", "naimi-same-work")

#: Relative drift beyond which ``--check`` fails.
TOLERANCE = 0.10

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIG5_PATH = os.path.join(_ROOT, "BENCH_fig5.json")
FIG6_PATH = os.path.join(_ROOT, "BENCH_fig6.json")


def measure() -> Dict[str, Dict[str, List[float]]]:
    """Run the shared sweep; return per-figure series keyed by protocol."""

    spec = WorkloadSpec(ops_per_node=OPS_PER_NODE, seed=SEED)
    overhead: Dict[str, List[float]] = {}
    latency: Dict[str, List[float]] = {}
    for protocol in PROTOCOLS:
        runs = sweep(protocol, NODE_COUNTS, spec, check_invariants=True)
        overhead[protocol] = [round(r.message_overhead(), 6) for r in runs]
        latency[protocol] = [round(r.latency_factor(), 6) for r in runs]
    return {"fig5": overhead, "fig6": latency}


def _report(benchmark: str, metric: str,
            series: Dict[str, List[float]]) -> Dict[str, object]:
    return {
        "benchmark": benchmark,
        "metric": metric,
        "config": {
            "node_counts": list(NODE_COUNTS),
            "ops_per_node": OPS_PER_NODE,
            "seed": SEED,
            "protocols": list(PROTOCOLS),
        },
        "series": series,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
    }


def compare_series(
    baseline: Dict[str, object],
    current: Dict[str, List[float]],
    tolerance: float = TOLERANCE,
) -> List[str]:
    """Return one human-readable line per out-of-tolerance data point.

    Empty list means the fresh *current* series match the checked-in
    *baseline* within *tolerance* relative drift everywhere.  Missing or
    extra protocols and length mismatches are reported as drift too — a
    baseline that no longer describes the sweep is stale, not passing.
    """

    problems: List[str] = []
    name = baseline.get("benchmark", "?")
    base_series = baseline.get("series", {})
    counts: Sequence[int] = baseline.get("config", {}).get(  # type: ignore[union-attr]
        "node_counts", NODE_COUNTS
    )
    for protocol in sorted(set(base_series) | set(current)):
        if protocol not in base_series:
            problems.append(f"{name}: protocol {protocol!r} not in baseline")
            continue
        if protocol not in current:
            problems.append(f"{name}: protocol {protocol!r} not measured")
            continue
        base_values = base_series[protocol]
        cur_values = current[protocol]
        if len(base_values) != len(cur_values):
            problems.append(
                f"{name}/{protocol}: {len(cur_values)} points measured, "
                f"baseline has {len(base_values)}"
            )
            continue
        for nodes, base_v, cur_v in zip(counts, base_values, cur_values):
            base_f, cur_f = float(base_v), float(cur_v)
            if base_f == 0.0:
                drift = abs(cur_f)
            else:
                drift = abs(cur_f - base_f) / abs(base_f)
            if drift > tolerance:
                problems.append(
                    f"{name}/{protocol} @ n={nodes}: {cur_f:.4f} vs "
                    f"baseline {base_f:.4f} ({drift:+.1%} drift, "
                    f"tolerance {tolerance:.0%})"
                )
    return problems


def _load(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check(fig5_path: str, fig6_path: str) -> int:
    """Measure fresh numbers, diff against the checked-in baselines."""

    measured = measure()
    problems: List[str] = []
    for path, key in ((fig5_path, "fig5"), (fig6_path, "fig6")):
        if not os.path.exists(path):
            problems.append(f"missing baseline file {path} (run without "
                            "--check to record it)")
            continue
        problems.extend(compare_series(_load(path), measured[key]))
    if problems:
        print("PERF BASELINE DRIFT — figures moved beyond tolerance:",
              file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        print(
            "If this change is intentional, re-record with "
            "`PYTHONPATH=src python benchmarks/record_perf_baseline.py` "
            "and commit the updated BENCH_fig5.json / BENCH_fig6.json.",
            file=sys.stderr,
        )
        return 1
    print("perf baselines OK: fig5/fig6 within "
          f"{TOLERANCE:.0%} of checked-in values")
    return 0


def record(fig5_path: str, fig6_path: str) -> None:
    """Measure and write both baseline files."""

    measured = measure()
    for path, key, metric in (
        (fig5_path, "fig5", "messages_per_request"),
        (fig6_path, "fig6", "latency_factor"),
    ):
        report = _report(f"{key}_quick_baseline", metric, measured[key])
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")
        for protocol in PROTOCOLS:
            values = ", ".join(f"{v:.3f}" for v in measured[key][protocol])
            print(f"  {protocol:>16}: [{values}]")


def main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="compare a fresh run against the checked-in baselines "
        "instead of rewriting them; exit 1 on >10%% drift",
    )
    parser.add_argument("--fig5-out", default=FIG5_PATH, metavar="PATH")
    parser.add_argument("--fig6-out", default=FIG6_PATH, metavar="PATH")
    args = parser.parse_args(list(argv))
    if args.check:
        return check(args.fig5_out, args.fig6_out)
    record(args.fig5_out, args.fig6_out)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

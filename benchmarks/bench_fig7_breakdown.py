"""E7 / Figure 7 — message-type breakdown for our protocol (full sweep).

Regenerates the per-type decomposition: requests stabilize after an
initial rise, copy grants dominate token transfers at scale, release
traffic tracks grants, and freeze messages stay a small constant.
"""

from __future__ import annotations

from repro.experiments.fig7_breakdown import run_fig7


def test_fig7_breakdown(benchmark, node_counts, paper_spec):
    """Run the breakdown sweep once and time it."""

    result = benchmark.pedantic(
        run_fig7,
        args=(node_counts, paper_spec),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    failures = [name for name, ok in result.checks() if not ok]
    assert not failures, f"figure 7 shape checks failed: {failures}"

"""E5 / Figure 5 — message overhead vs. number of nodes (full sweep).

Regenerates the paper's central scalability figure and asserts its
qualitative claims: our protocol flattens near ~3 messages per lock
request, below Naimi pure (~4), while Naimi same-work grows superlinearly.
"""

from __future__ import annotations

from repro.experiments.fig5_message_overhead import run_fig5


def test_fig5_message_overhead(benchmark, node_counts, paper_spec):
    """Run the three-protocol sweep once and time it."""

    result = benchmark.pedantic(
        run_fig5,
        args=(node_counts, paper_spec),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    failures = [name for name, ok in result.checks() if not ok]
    assert not failures, f"figure 5 shape checks failed: {failures}"

"""E8 / Section 6 — the headline comparison at the largest cluster size.

Paper: at 120 nodes, ~3 messages per request for our protocol vs. ~4 for
Naimi's base protocol, and a latency factor of ~90 vs. ~160.
"""

from __future__ import annotations

from repro.experiments.headline import run_headline
from benchmarks.conftest import QUICK


def test_headline_comparison(benchmark, paper_spec):
    """Run the three protocols at the max node count and compare."""

    nodes = 16 if QUICK else 120
    result = benchmark.pedantic(
        run_headline, args=(nodes, paper_spec), rounds=1, iterations=1
    )
    print()
    print(result.render())
    failures = [name for name, ok in result.checks() if not ok]
    assert not failures, f"headline checks failed: {failures}"

"""A1-A4 — ablation benches for the design choices DESIGN.md calls out.

Each bench disables one protocol mechanism (freezing, local queues, child
grants, local re-entry) and reports the regression relative to the full
protocol, turning the paper's qualitative design arguments into numbers.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    ablate_child_grants,
    ablate_freezing,
    ablate_local_queues,
    ablate_local_reentry,
)


def _report(result):
    print()
    print(result.render())


def test_ablation_freezing(benchmark):
    """A1 — Rule 6 off: the §3.3 starvation scenario becomes visible."""

    result = benchmark.pedantic(
        ablate_freezing, kwargs={"num_nodes": 16, "ops_per_node": 40},
        rounds=1, iterations=1,
    )
    _report(result)
    # Removing Rule 6 must produce strictly more conflicting-mode
    # overtakes (the §3.3 starvation mechanism).
    assert result.regression > 1.2


def test_ablation_local_queues(benchmark):
    """A2 — Rule 4.1 off: requests always chase the token."""

    result = benchmark.pedantic(
        ablate_local_queues, kwargs={"num_nodes": 24, "ops_per_node": 30},
        rounds=1, iterations=1,
    )
    _report(result)
    assert result.regression >= 0.95


def test_ablation_child_grants(benchmark):
    """A3 — Rule 3.1 off: only the token node grants."""

    result = benchmark.pedantic(
        ablate_child_grants, kwargs={"num_nodes": 24, "ops_per_node": 30},
        rounds=1, iterations=1,
    )
    _report(result)
    assert result.regression >= 0.9


def test_ablation_local_reentry(benchmark):
    """A4 — Rule 2's zero-message path off."""

    result = benchmark.pedantic(
        ablate_local_reentry, kwargs={"num_nodes": 24, "ops_per_node": 30},
        rounds=1, iterations=1,
    )
    _report(result)
    assert result.regression >= 0.95

"""§5 related-work bench: dynamic (Naimi) vs. static (Raymond) trees.

Measures the paper's related-work claim — "Raymond's algorithm uses a
non-adaptive logical structure while we use a dynamic one, which results
in dynamic path compression" — with strictly sequential isolated
requests so every request pays its protocol's true path cost.
"""

from __future__ import annotations

from repro.experiments.related_work import run_related_work
from benchmarks.conftest import QUICK


def test_dynamic_vs_static_trees(benchmark):
    """Run the Naimi-vs-Raymond sweep once and time it."""

    counts = (2, 4, 8, 16) if QUICK else (2, 4, 8, 16, 32, 64)
    result = benchmark.pedantic(
        run_related_work,
        kwargs={"node_counts": counts, "rounds": 30 if QUICK else 60},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    failures = [name for name, ok in result.checks() if not ok]
    assert not failures, f"related-work shape checks failed: {failures}"

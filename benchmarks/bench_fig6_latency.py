"""E6 / Figure 6 — request latency factor vs. number of nodes (full sweep).

Regenerates the response-time comparison: our protocol grows roughly
linearly with the lowest constant; Naimi pure is linear but worse; Naimi
same-work is superlinear (ordered multi-lock acquisition).
"""

from __future__ import annotations

from repro.experiments.fig6_latency import run_fig6


def test_fig6_latency(benchmark, node_counts, paper_spec):
    """Run the three-protocol latency sweep once and time it."""

    result = benchmark.pedantic(
        run_fig6,
        args=(node_counts, paper_spec),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    failures = [name for name, ok in result.checks() if not ok]
    assert not failures, f"figure 6 shape checks failed: {failures}"

"""Setuptools shim: enables editable installs where the ``wheel`` package
is unavailable (``pip install -e . --no-build-isolation`` falls back to the
legacy ``setup.py develop`` path through this file)."""

from setuptools import setup

setup()

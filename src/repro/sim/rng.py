"""Seeded randomness helpers for reproducible simulations.

Every stochastic quantity in the paper's evaluation — critical-section
length, inter-request idle time, network latency, request mode, entry
choice — draws from an independent, deterministically derived stream so
that changing one workload knob does not perturb the others (variance
reduction across sweep points).
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple, TypeVar

T = TypeVar("T")


def derive_rng(seed: int, *labels: object) -> random.Random:
    """Return a :class:`random.Random` derived from *seed* and *labels*.

    The derivation hashes the labels into the seed deterministically (no
    process salt), so ``derive_rng(7, "latency", 3)`` is the same stream in
    every run and every process.
    """

    digest = seed & 0xFFFFFFFF
    for label in labels:
        for char in repr(label):
            digest = (digest * 1_000_003 + ord(char)) & 0xFFFFFFFFFFFF
    return random.Random(digest)


class Distribution:
    """A positive-valued distribution with a known mean."""

    def __init__(self, mean: float) -> None:
        if mean < 0:
            raise ValueError("mean must be non-negative")
        self.mean = mean

    def sample(self, rng: random.Random) -> float:
        """Draw one value."""

        raise NotImplementedError


class Exponential(Distribution):
    """Exponential inter-arrival/latency model (memoryless, heavy-ish tail)."""

    def sample(self, rng: random.Random) -> float:
        if self.mean == 0:
            return 0.0
        return rng.expovariate(1.0 / self.mean)


class Uniform(Distribution):
    """Uniform on ``[low, high]``; mean is ``(low + high) / 2``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        super().__init__((low + high) / 2.0)
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class Fixed(Distribution):
    """Degenerate distribution: always the mean (useful in tests)."""

    def sample(self, rng: random.Random) -> float:
        return self.mean


def weighted_choice(
    rng: random.Random, items: Sequence[Tuple[T, float]]
) -> T:
    """Pick one item according to its weight (weights need not sum to 1)."""

    total = sum(weight for _item, weight in items)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.uniform(0.0, total)
    acc = 0.0
    for item, weight in items:
        acc += weight
        if point <= acc:
            return item
    return items[-1][0]

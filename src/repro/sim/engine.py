"""A small deterministic discrete-event simulation kernel.

The kernel is deliberately SimPy-like: simulation *processes* are plain
Python generators that ``yield`` waitables (:class:`SimEvent` instances,
e.g. :class:`Timeout`), and the :class:`Simulator` advances virtual time
through a binary heap of scheduled callbacks.

Determinism: events scheduled for the same instant fire in scheduling
order (a monotonically increasing sequence number breaks ties), and all
randomness comes from seeded :class:`random.Random` streams owned by the
caller — two runs with the same seed produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..errors import SimulationError


class Simulator:
    """The event loop: a heap of ``(time, seq, callback)`` entries."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        #: Optional observability hook called as ``(now, events_processed)``
        #: after every callback; ``None`` keeps the loop untouched.
        self.tick_hook: Optional[Callable[[float, int], None]] = None

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""

        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""

        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of callbacks still scheduled."""

        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* ``delay`` seconds from now (``delay >= 0``)."""

        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), callback))

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain the event heap.

        Stops when the heap empties, when virtual time would pass *until*,
        or after *max_events* callbacks — whichever comes first.
        """

        budget = max_events if max_events is not None else float("inf")
        while self._heap and budget > 0:
            time, _seq, callback = self._heap[0]
            if until is not None and time > until:
                self._now = until
                return
            heapq.heappop(self._heap)
            self._now = time
            # Count the event as soon as it is dequeued so the counter
            # stays accurate even if the callback raises.
            self._processed += 1
            budget -= 1
            callback()
            if self.tick_hook is not None:
                self.tick_hook(self._now, self._processed)
        if self._heap and budget <= 0:
            raise SimulationError(
                f"simulation exceeded the event budget at t={self._now:.3f}; "
                "this usually indicates livelock (messages chasing forever)"
            )
        if until is not None and self._now < until:
            self._now = until


class SimEvent:
    """A one-shot waitable: triggers once, then replays to late waiters."""

    __slots__ = ("_sim", "_callbacks", "_triggered", "_value")

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._callbacks: List[Callable[[Any], None]] = []
        self._triggered = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        """Whether :meth:`trigger` has been called."""

        return self._triggered

    @property
    def value(self) -> Any:
        """The value the event was triggered with (``None`` before)."""

        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking every current and future waiter."""

        if self._triggered:
            raise SimulationError("SimEvent triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._sim.schedule(0.0, lambda cb=callback: cb(self._value))

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke *callback(value)* when (or if already) triggered."""

        if self._triggered:
            self._sim.schedule(0.0, lambda: callback(self._value))
        else:
            self._callbacks.append(callback)


class Timeout(SimEvent):
    """An event that self-triggers after a fixed virtual delay."""

    def __init__(self, sim: Simulator, delay: float) -> None:
        super().__init__(sim)
        sim.schedule(delay, self.trigger)


class AllOf(SimEvent):
    """An event that triggers once every constituent event has triggered."""

    def __init__(self, sim: Simulator, events: List[SimEvent]) -> None:
        super().__init__(sim)
        self._remaining = len(events)
        if self._remaining == 0:
            self.trigger([])
            return
        self._values: List[Any] = [None] * len(events)
        for index, event in enumerate(events):
            event.add_callback(lambda value, i=index: self._one_done(i, value))

    def _one_done(self, index: int, value: Any) -> None:
        self._values[index] = value
        self._remaining -= 1
        if self._remaining == 0:
            self.trigger(list(self._values))


#: A simulation process body: a generator yielding SimEvents.
ProcessBody = Generator[SimEvent, Any, None]


class Process:
    """Drives a generator body, resuming it whenever its waitable fires."""

    def __init__(self, sim: Simulator, body: ProcessBody) -> None:
        self._sim = sim
        self._body = body
        self.done = SimEvent(sim)
        self.error: Optional[BaseException] = None
        sim.schedule(0.0, lambda: self._step(None))

    def _step(self, value: Any) -> None:
        try:
            waitable = self._body.send(value)
        except StopIteration:
            self.done.trigger()
            return
        except BaseException as exc:
            # Do NOT re-raise: this runs inside a scheduled callback, and
            # unwinding Simulator.run mid-drain would abandon every other
            # process.  The crash is captured here and surfaced by
            # run_processes (or whoever inspects ``error``).
            self.error = exc
            self.done.trigger()
            return
        if not isinstance(waitable, SimEvent):
            self.error = SimulationError(
                f"process yielded {type(waitable).__name__}, expected SimEvent"
            )
            self._body.close()
            self.done.trigger()
            return
        waitable.add_callback(self._step)


def run_processes(sim: Simulator, bodies: List[ProcessBody],
                  max_events: Optional[int] = None) -> List[Process]:
    """Spawn *bodies* as processes and run the simulation to completion."""

    processes = [Process(sim, body) for body in bodies]
    sim.run(max_events=max_events)
    for process in processes:
        if process.error is not None:
            raise SimulationError(
                f"a simulation process crashed: "
                f"{type(process.error).__name__}: {process.error}"
            ) from process.error
    for process in processes:
        if not process.done.triggered:
            raise SimulationError(
                "simulation drained but a process is still blocked "
                "(deadlock or lost grant)"
            )
    return processes

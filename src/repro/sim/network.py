"""Point-to-point network model for the simulated cluster.

Models the paper's testbed: a switched full-duplex LAN where disjoint
point-to-point transfers proceed in parallel, with per-message latency
randomized around a mean of 150 ms.  Links are FIFO per ordered node pair
(as TCP connections are), which the hierarchical protocol's freeze
propagation relies on.

The network is where *all* protocol messages cross, so it doubles as the
measurement point: an optional observer is invoked for every send with the
sender, destination and message, and the metrics collector plugs in there.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..core.messages import Envelope, NodeId
from ..errors import SimulationError
from .engine import Simulator
from .rng import Distribution, Exponential

#: Handler installed per node: takes a message, returns reply envelopes.
MessageHandler = Callable[[object], List[Envelope]]

#: Observer signature: ``(sender, dest, message)``.
MessageObserver = Callable[[NodeId, NodeId, object], None]


class Network:
    """Delivers envelopes between registered nodes with random latency."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[Distribution] = None,
        rng: Optional[random.Random] = None,
        observer: Optional[MessageObserver] = None,
        local_delivery_instant: bool = True,
        loss_filter: Optional[Callable[[NodeId, NodeId, object], bool]] = None,
    ) -> None:
        self._sim = sim
        self._latency = latency if latency is not None else Exponential(0.150)
        self._rng = rng if rng is not None else random.Random(0)
        self._observer = observer
        self._local_instant = local_delivery_instant
        # Fault injection: return True to silently drop a message.  The
        # protocol assumes reliable delivery (like its TCP testbed), so
        # this hook exists to *demonstrate* that assumption in tests, not
        # to model a supported failure mode.
        self._loss_filter = loss_filter
        self._handlers: Dict[NodeId, MessageHandler] = {}
        self._last_arrival: Dict[Tuple[NodeId, NodeId], float] = {}
        self._messages_sent = 0
        self._messages_dropped = 0

    @property
    def messages_dropped(self) -> int:
        """Messages discarded by the fault-injection filter."""

        return self._messages_dropped

    @property
    def messages_sent(self) -> int:
        """Total envelopes transmitted (excluding node-local deliveries)."""

        return self._messages_sent

    @property
    def mean_latency(self) -> float:
        """Mean of the configured latency distribution (seconds)."""

        return self._latency.mean

    def register(self, node_id: NodeId, handler: MessageHandler) -> None:
        """Attach *handler* as the message sink of *node_id*."""

        if node_id in self._handlers:
            raise SimulationError(f"node {node_id} registered twice")
        self._handlers[node_id] = handler

    def send(self, sender: NodeId, envelopes: List[Envelope]) -> None:
        """Transmit *envelopes* from *sender*, FIFO per destination pair."""

        for envelope in envelopes:
            self._send_one(sender, envelope)

    def _send_one(self, sender: NodeId, envelope: Envelope) -> None:
        dest = envelope.dest
        if dest not in self._handlers:
            raise SimulationError(f"message to unregistered node {dest}")
        if dest == sender and self._local_instant:
            # A node talking to itself does not cross the wire.
            self._sim.schedule(0.0, lambda: self._deliver(sender, envelope))
            return
        if self._loss_filter is not None and self._loss_filter(
            sender, dest, envelope.message
        ):
            self._messages_dropped += 1
            return
        self._messages_sent += 1
        if self._observer is not None:
            self._observer(sender, dest, envelope.message)
        delay = self._latency.sample(self._rng)
        arrival = self._sim.now + delay
        # FIFO per ordered pair: never deliver before an earlier message.
        key = (sender, dest)
        floor = self._last_arrival.get(key, 0.0)
        if arrival < floor:
            arrival = floor
        self._last_arrival[key] = arrival
        self._sim.schedule(
            arrival - self._sim.now, lambda: self._deliver(sender, envelope)
        )

    def _deliver(self, sender: NodeId, envelope: Envelope) -> None:
        handler = self._handlers[envelope.dest]
        replies = handler(envelope.message)
        if replies:
            self.send(envelope.dest, replies)

"""Point-to-point network model for the simulated cluster.

Models the paper's testbed: a switched full-duplex LAN where disjoint
point-to-point transfers proceed in parallel, with per-message latency
randomized around a mean of 150 ms.  Links are FIFO per ordered node pair
(as TCP connections are), which the hierarchical protocol's freeze
propagation relies on.

The network is where *all* protocol messages cross, so it doubles as the
measurement point: an optional observer is invoked for every send with the
sender, destination and message, and the metrics collector plugs in there.

Fault injection is first-class: pass a
:class:`~repro.faults.plan.FaultPlan` as ``faults`` and the network
drops, duplicates, delays and reorders matching messages, severs
partitioned pairs, and silences crashed nodes (:meth:`crash` /
:meth:`restart`).  The injector draws from its own seeded RNG stream, so
a run with ``faults=None`` (or an empty plan) is bit-identical to one on
the pre-fault network — the latency RNG never sees a fault-layer draw.
"""

from __future__ import annotations

import random
import warnings
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.messages import Envelope, NodeId
from ..errors import SimulationError
from .engine import Simulator
from .rng import Distribution, Exponential

#: Handler installed per node: takes a message, returns reply envelopes.
MessageHandler = Callable[[object], List[Envelope]]

#: Observer signature: ``(sender, dest, message)``.
MessageObserver = Callable[[NodeId, NodeId, object], None]


class Network:
    """Delivers envelopes between registered nodes with random latency."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[Distribution] = None,
        rng: Optional[random.Random] = None,
        observer: Optional[MessageObserver] = None,
        local_delivery_instant: bool = True,
        loss_filter: Optional[Callable[[NodeId, NodeId, object], bool]] = None,
        faults: Optional["FaultPlan"] = None,
        tracer: Optional["MessageTracer"] = None,
    ) -> None:
        self._sim = sim
        self._latency = latency if latency is not None else Exponential(0.150)
        self._rng = rng if rng is not None else random.Random(0)
        self._observer = observer
        #: Optional causal tracer (:mod:`repro.obs.tracing`).  Stamps a
        #: trace context onto every envelope at the same point the
        #: observer fires; draws no randomness and sends nothing, so
        #: traced runs stay bit-identical to untraced ones.
        self.tracer = tracer
        self._local_instant = local_delivery_instant
        if loss_filter is not None:
            # Deprecated predecessor of the fault layer: an ad-hoc drop
            # predicate.  It now rides the same injector as every other
            # fault, as a single unconditional drop rule.
            warnings.warn(
                "Network(loss_filter=...) is deprecated; pass "
                "faults=FaultPlan(...) (see repro.faults.plan, e.g. "
                "plan_from_loss_filter) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if faults is not None:
                raise SimulationError(
                    "pass either faults= or the deprecated loss_filter=, "
                    "not both"
                )
            from ..faults.plan import plan_from_loss_filter

            faults = plan_from_loss_filter(loss_filter)
        self._injector = None
        if faults is not None and not faults.is_empty():
            from ..faults.plan import FaultInjector

            self._injector = FaultInjector(faults)
        self._handlers: Dict[NodeId, MessageHandler] = {}
        self._crashed: Set[NodeId] = set()
        self._last_arrival: Dict[Tuple[NodeId, NodeId], float] = {}
        self._messages_sent = 0
        self._messages_dropped = 0

    @property
    def messages_dropped(self) -> int:
        """Messages discarded by faults (rules, partitions, crashed nodes)."""

        return self._messages_dropped

    @property
    def messages_sent(self) -> int:
        """Total envelopes transmitted (excluding node-local deliveries)."""

        return self._messages_sent

    @property
    def mean_latency(self) -> float:
        """Mean of the configured latency distribution (seconds)."""

        return self._latency.mean

    @property
    def injector(self):
        """The active :class:`~repro.faults.plan.FaultInjector`, if any."""

        return self._injector

    def register(self, node_id: NodeId, handler: MessageHandler) -> None:
        """Attach *handler* as the message sink of *node_id*."""

        if node_id in self._handlers:
            raise SimulationError(f"node {node_id} registered twice")
        self._handlers[node_id] = handler

    # -- crash / restart ---------------------------------------------------

    def crash(self, node_id: NodeId) -> None:
        """Silence *node_id*: nothing in, nothing out, in-flight included."""

        if node_id not in self._handlers:
            raise SimulationError(f"cannot crash unregistered node {node_id}")
        self._crashed.add(node_id)

    def restart(
        self, node_id: NodeId, handler: Optional[MessageHandler] = None
    ) -> None:
        """Bring *node_id* back, optionally with a fresh handler (the
        restarted node's new, blank protocol state)."""

        if node_id not in self._crashed:
            raise SimulationError(f"node {node_id} is not crashed")
        self._crashed.discard(node_id)
        if handler is not None:
            self._handlers[node_id] = handler

    def is_crashed(self, node_id: NodeId) -> bool:
        """Whether *node_id* is currently crashed."""

        return node_id in self._crashed

    # -- transmission ------------------------------------------------------

    def send(self, sender: NodeId, envelopes: List[Envelope]) -> None:
        """Transmit *envelopes* from *sender*, FIFO per destination pair."""

        for envelope in envelopes:
            self._send_one(sender, envelope)

    def _send_one(self, sender: NodeId, envelope: Envelope) -> None:
        dest = envelope.dest
        if dest not in self._handlers:
            raise SimulationError(f"message to unregistered node {dest}")
        if sender in self._crashed or dest in self._crashed:
            self._messages_dropped += 1
            return
        if dest == sender and self._local_instant:
            # A node talking to itself does not cross the wire.
            self._sim.schedule(0.0, lambda: self._deliver(sender, envelope))
            return
        if self._injector is not None:
            decision = self._injector.decide(
                self._sim.now, sender, dest, envelope.message
            )
            if decision.drop:
                self._messages_dropped += 1
                return
        else:
            decision = None
        self._messages_sent += 1
        if self._observer is not None:
            self._observer(sender, dest, envelope.message)
        if self.tracer is not None:
            envelope = self.tracer.outbound(sender, envelope)
        copies = 1 if decision is None else decision.copies
        extra = 0.0 if decision is None else decision.extra_delay
        reorder = decision is not None and decision.reorder
        key = (sender, dest)
        for _ in range(copies):
            delay = self._latency.sample(self._rng) + extra
            arrival = self._sim.now + delay
            if not reorder:
                # FIFO per ordered pair: never deliver before an earlier
                # message.  A reordered message deliberately skips the
                # floor (and does not raise it for its successors).
                floor = self._last_arrival.get(key, 0.0)
                if arrival < floor:
                    arrival = floor
                self._last_arrival[key] = arrival
            self._sim.schedule(
                arrival - self._sim.now,
                lambda: self._deliver(sender, envelope),
            )

    def _deliver(self, sender: NodeId, envelope: Envelope) -> None:
        if envelope.dest in self._crashed:
            # Crashed while the message was in flight.
            self._messages_dropped += 1
            return
        handler = self._handlers[envelope.dest]
        tracer = self.tracer
        if tracer is None:
            replies = handler(envelope.message)
            if replies:
                self.send(envelope.dest, replies)
            return
        tracer.delivered(envelope.dest, envelope.message)
        # Scope stays open through the reply sends so replies without a
        # parent hint still land on this message's causal chain.
        tracer.begin_delivery(envelope.dest, envelope.message)
        try:
            replies = handler(envelope.message)
            if replies:
                self.send(envelope.dest, replies)
        finally:
            tracer.end_delivery(envelope.dest)

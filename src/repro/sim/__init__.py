"""Discrete-event simulation substrate (engine, network, clusters)."""

from .cluster import (
    HierClient,
    NaimiClient,
    RaymondClient,
    SimHierarchicalCluster,
    SimNaimiCluster,
    SimRaymondCluster,
)
from .engine import AllOf, Process, SimEvent, Simulator, Timeout, run_processes
from .network import Network
from .rng import Distribution, Exponential, Fixed, Uniform, derive_rng, weighted_choice

__all__ = [
    "AllOf",
    "Distribution",
    "Exponential",
    "Fixed",
    "HierClient",
    "NaimiClient",
    "Network",
    "Process",
    "RaymondClient",
    "SimRaymondCluster",
    "SimEvent",
    "SimHierarchicalCluster",
    "SimNaimiCluster",
    "Simulator",
    "Timeout",
    "Uniform",
    "derive_rng",
    "run_processes",
    "weighted_choice",
]

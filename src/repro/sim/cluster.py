"""Simulated clusters: N nodes, a network, and per-node lock clients.

Two cluster flavours share the same shape:

* :class:`SimHierarchicalCluster` — every node runs a
  :class:`~repro.core.lockspace.LockSpace` (the paper's protocol),
* :class:`SimNaimiCluster` — every node runs a
  :class:`~repro.naimi.lockspace.NaimiLockSpace` (the baseline).

Clients expose coroutine-friendly ``acquire`` (returns a
:class:`~repro.sim.engine.SimEvent` to ``yield`` on), plus synchronous
``release``.  Grants and releases are reported to an optional
:class:`~repro.verification.invariants.Monitor`, and every wire message to
an optional :class:`~repro.metrics.MetricsCollector` — the measurement
points for all reproduced figures.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Optional

from ..core.automaton import FULL_PROTOCOL, ProtocolOptions
from ..core.lockspace import LockSpace, TokenHomeFn, default_token_home
from ..core.messages import LockId, NodeId, message_type_label
from ..core.modes import LockMode
from ..errors import ConfigurationError, InvariantViolation
from ..metrics import MetricsCollector
from ..obs.sink import ObsSink
from ..naimi.lockspace import NaimiLockSpace
from ..naimi.messages import naimi_message_type_label
from ..raymond.lockspace import RaymondLockSpace
from ..raymond.messages import raymond_message_type_label
from ..raymond.topology import Topology, balanced_binary_tree, validate
from ..verification.invariants import Monitor
from .engine import SimEvent, Simulator
from .network import Network
from .rng import Distribution, Exponential


@dataclasses.dataclass
class _GrantCtx:
    """Listener context: the waiter event plus bookkeeping flags."""

    event: SimEvent
    is_upgrade: bool = False


class _BaseCluster:
    """State shared by both cluster flavours."""

    #: Protocol tag stamped into cluster views (set per subclass).
    PROTOCOL = "?"

    def __init__(
        self,
        num_nodes: int,
        sim: Optional[Simulator] = None,
        latency: Optional[Distribution] = None,
        seed: int = 0,
        monitor: Optional[Monitor] = None,
        metrics: Optional[MetricsCollector] = None,
        obs: Optional[ObsSink] = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        #: Current membership (mutated by ``add_node``/``remove_node``).
        self.members = list(range(num_nodes))
        #: Chronological record of membership changes (``at`` is sim time).
        self.membership_log = []
        self._next_node_id = num_nodes
        self._departed: set = set()
        # Spliced-out lockspaces, kept referenced so their (still
        # registered) network handlers stay valid: any stray message to a
        # ghost raises loudly instead of vanishing.
        self._ghosts: Dict[NodeId, object] = {}
        self.sim = sim if sim is not None else Simulator()
        self.monitor = monitor
        self.metrics = metrics
        #: Observability sink shared by every automaton, the network
        #: observer and the engine tick hook (None = not collecting).
        self.obs = obs
        if obs is not None:
            self.sim.tick_hook = obs.engine_tick
        self._latency = latency if latency is not None else Exponential(0.150)
        self.network = Network(
            self.sim,
            latency=self._latency,
            rng=random.Random(seed ^ 0x5EED),
            observer=self._observe_message,
            tracer=getattr(obs, "tracer", None) if obs is not None else None,
        )

    @property
    def mean_latency(self) -> float:
        """Mean point-to-point latency (the Figure 6 normalizer)."""

        return self._latency.mean

    def _observe_message(self, sender: NodeId, dest: NodeId, message) -> None:
        if self.metrics is not None:
            self.metrics.count_message(self._label(message))
        if self.obs is not None:
            # Same observation point and same label as the metrics
            # counter, so per-type totals in traces match
            # MetricsCollector.message_overhead_by_type exactly.
            self.obs.message(sender, dest, self._label(message))

    def _label(self, message) -> str:  # overridden per protocol
        raise NotImplementedError

    def _record_request(self, node: NodeId, lock_id: LockId, mode: LockMode) -> None:
        if self.monitor is not None:
            self.monitor.on_request(self.sim.now, node, lock_id, mode)

    def _record_grant(self, node: NodeId, lock_id: LockId, mode: LockMode) -> None:
        if self.monitor is not None:
            self.monitor.on_grant(self.sim.now, node, lock_id, mode)

    def _record_release(self, node: NodeId, lock_id: LockId, mode: LockMode) -> None:
        if self.monitor is not None:
            self.monitor.on_release(self.sim.now, node, lock_id, mode)

    def cluster_view(self):
        """Capture a :class:`repro.obs.live.ClusterView` of all members.

        A pure read over every member's lock state — the simulator is
        single-threaded, so no locking is needed and the capture is an
        exact instant in simulated time.  Spliced-out ghosts are
        excluded.
        """

        from ..obs.live import ClusterView, snapshot_node

        return ClusterView(
            protocol=self.PROTOCOL,
            captured_at=self.sim.now,
            nodes=tuple(
                snapshot_node(node_id, self.lockspaces[node_id])
                for node_id in sorted(self.members)
            ),
        )

    # -- membership plumbing shared by the per-protocol splices ----------

    def _check_departed(self, node_id: NodeId) -> None:
        if node_id in self._departed:
            raise ConfigurationError(
                f"node {node_id} has left the cluster"
            )

    def _log_membership(self, event: str, node: NodeId, **extra) -> None:
        entry = {"event": event, "node": node, "at": self.sim.now}
        entry.update(extra)
        self.membership_log.append(entry)
        if self.obs is not None:
            self.obs.fault(event, node)

    def _pick_successor(
        self, leaving: NodeId, successor: Optional[NodeId]
    ) -> NodeId:
        if len(self.members) < 2:
            raise ConfigurationError(
                "cannot remove the last member of the cluster"
            )
        if successor is None:
            return min(m for m in self.members if m != leaving)
        if successor == leaving or successor not in self.members:
            raise ConfigurationError(
                f"successor {successor} is not another live member"
            )
        return successor

    def _require_removable(self, node_id: NodeId) -> None:
        if node_id not in self.members:
            raise ConfigurationError(f"node {node_id} is not a member")

    def _retire_member(self, node_id: NodeId) -> None:
        self.members.remove(node_id)
        self._departed.add(node_id)
        self._ghosts[node_id] = self.lockspaces.pop(node_id)


class HierClient:
    """Per-node client of the hierarchical protocol (coroutine style)."""

    def __init__(self, cluster: "SimHierarchicalCluster", node_id: NodeId) -> None:
        self._cluster = cluster
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        """This client's node."""

        return self._node_id

    def acquire(
        self, lock_id: LockId, mode: LockMode, priority: int = 0
    ) -> SimEvent:
        """Request *lock_id* in *mode*; yield the returned event to wait.

        *priority* participates in arbitration only when the cluster runs
        with ``ProtocolOptions.priority_scheduling``.
        """

        cluster = self._cluster
        cluster._check_departed(self._node_id)
        cluster._record_request(self._node_id, lock_id, mode)
        event = SimEvent(cluster.sim)
        ctx = _GrantCtx(event=event)
        out = cluster.lockspaces[self._node_id].request(
            lock_id, mode, ctx, priority
        )
        cluster.network.send(self._node_id, out)
        return event

    def release(self, lock_id: LockId, mode: LockMode) -> None:
        """Release one hold of *mode* on *lock_id*."""

        cluster = self._cluster
        cluster._check_departed(self._node_id)
        cluster._record_release(self._node_id, lock_id, mode)
        out = cluster.lockspaces[self._node_id].release(lock_id, mode)
        cluster.network.send(self._node_id, out)

    def upgrade(self, lock_id: LockId) -> SimEvent:
        """Upgrade a held ``U`` on *lock_id* to ``W``; yields like acquire."""

        cluster = self._cluster
        cluster._check_departed(self._node_id)
        event = SimEvent(cluster.sim)
        ctx = _GrantCtx(event=event, is_upgrade=True)
        out = cluster.lockspaces[self._node_id].upgrade(lock_id, ctx)
        cluster.network.send(self._node_id, out)
        return event


class SimHierarchicalCluster(_BaseCluster):
    """A simulated cluster running the paper's hierarchical protocol."""

    PROTOCOL = "hierarchical"

    def __init__(
        self,
        num_nodes: int,
        sim: Optional[Simulator] = None,
        latency: Optional[Distribution] = None,
        seed: int = 0,
        token_home: TokenHomeFn = default_token_home,
        monitor: Optional[Monitor] = None,
        metrics: Optional[MetricsCollector] = None,
        options: ProtocolOptions = FULL_PROTOCOL,
        obs: Optional[ObsSink] = None,
    ) -> None:
        super().__init__(
            num_nodes, sim=sim, latency=latency, seed=seed,
            monitor=monitor, metrics=metrics, obs=obs,
        )
        self._options = options
        self._base_token_home = token_home
        # Membership splices re-route token homes: per-lock pins for
        # locks instantiated before a removal, per-node redirects for
        # locks whose home node left before anyone touched them.
        self._home_override: Dict[LockId, NodeId] = {}
        self._node_redirect: Dict[NodeId, NodeId] = {}
        self.lockspaces: Dict[NodeId, LockSpace] = {}
        for node_id in range(num_nodes):
            self._add_lockspace(node_id)
        self.clients = [HierClient(self, n) for n in range(num_nodes)]

    def _resolve_home(self, lock_id: LockId) -> NodeId:
        """Token-home fn handed to every lockspace, splice-aware."""

        override = self._home_override.get(lock_id)
        if override is not None:
            return override
        home = self._base_token_home(lock_id)
        seen = set()
        while home in self._node_redirect and home not in seen:
            seen.add(home)
            home = self._node_redirect[home]
        return home

    def _add_lockspace(self, node_id: NodeId) -> LockSpace:
        lockspace = LockSpace(
            node_id=node_id,
            token_home=self._resolve_home,
            listener=self._make_listener(node_id),
            options=self._options,
        )
        lockspace.obs = self.obs
        self.lockspaces[node_id] = lockspace
        self.network.register(node_id, lockspace.handle)
        return lockspace

    def _label(self, message) -> str:
        return message_type_label(message)

    def _make_listener(self, node_id: NodeId):
        def listener(lock_id: LockId, mode: LockMode, ctx: object) -> None:
            if isinstance(ctx, _GrantCtx):
                if ctx.is_upgrade:
                    self._record_release(node_id, lock_id, LockMode.U)
                self._record_grant(node_id, lock_id, mode)
                ctx.event.trigger(mode)
            else:
                self._record_grant(node_id, lock_id, mode)

        return listener

    def client(self, node_id: NodeId) -> HierClient:
        """Return the client object of *node_id*."""

        return self.clients[node_id]

    # -- membership splices (valid at quiescence only) -------------------

    def add_node(self) -> NodeId:
        """Join a fresh node; returns its id.

        Nothing to transplant: the joiner's automata are created lazily
        with their parent pointing at the (splice-aware) token home, the
        paper's normal lazy-attach path.
        """

        node_id = self._next_node_id
        self._next_node_id += 1
        self._add_lockspace(node_id)
        self.members.append(node_id)
        self.clients.append(HierClient(self, node_id))
        self._log_membership("join", node_id)
        return node_id

    def remove_node(
        self, node_id: NodeId, successor: Optional[NodeId] = None
    ) -> NodeId:
        """Splice *node_id* out of every copyset tree at quiescence.

        The node must have released all holds first (drained).  Per
        lock: a token held there transplants to one of its copyset
        children (falling back to *successor*), which adopts the
        remaining children; a non-token node's children migrate to its
        parent.  Stale lazy parent pointers anywhere re-point to the
        replacement, and future automaton creation is re-homed so no
        fresh automaton ever points at (or claims a token for) the
        removed node.  Returns the fallback successor used.
        """

        self._require_removable(node_id)
        space = self.lockspaces[node_id]
        for automaton in space.automata():
            if (
                automaton.held_modes
                or automaton.pending_mode is not LockMode.NONE
                or automaton.queue_length
            ):
                raise ConfigurationError(
                    f"node {node_id} is still active on "
                    f"{automaton.lock_id!r}; drain before removal"
                )
        fallback = self._pick_successor(node_id, successor)
        lock_ids = sorted(
            {
                lock_id
                for member in self.members
                for lock_id in self.lockspaces[member].lock_ids
            }
        )
        leaver_locks = set(space.lock_ids)
        for lock_id in lock_ids:
            leaver = (
                space.automaton(lock_id) if lock_id in leaver_locks else None
            )
            if leaver is not None and leaver.has_token:
                kids = {
                    child: mode
                    for child, mode in leaver.children.items()
                    if child in self.members
                }
                succ = min(kids) if kids else fallback
                root = self.lockspaces[succ].automaton(lock_id)
                root.splice_token(frozen=leaver.frozen_modes)
                for child, mode in kids.items():
                    if child == succ:
                        continue
                    root.splice_adopt_child(
                        child, mode, leaver.child_attachment_seq(child)
                    )
                replacement = succ
            elif leaver is not None:
                parent = leaver.parent
                adopter = self.lockspaces[parent].automaton(lock_id)
                for child, mode in leaver.children.items():
                    if child == parent or child not in self.members:
                        continue
                    adopter.splice_adopt_child(
                        child, mode, leaver.child_attachment_seq(child)
                    )
                self.network.send(parent, adopter.splice_drop_child(node_id))
                replacement = parent
            else:
                replacement = fallback
            # Re-home fresh automata before retiring: any lock whose
            # home still resolves to the leaver pins to its current
            # token node (a later fresh automaton there returns the
            # existing, token-holding instance — never a duplicate).
            if self._resolve_home(lock_id) == node_id:
                holders = [
                    member
                    for member in self.members
                    if member != node_id
                    and lock_id in set(self.lockspaces[member].lock_ids)
                    and self.lockspaces[member].automaton(lock_id).has_token
                ]
                self._home_override[lock_id] = (
                    holders[0] if holders else replacement
                )
            for member in self.members:
                if member == node_id:
                    continue
                member_space = self.lockspaces[member]
                if lock_id not in set(member_space.lock_ids):
                    continue
                automaton = member_space.automaton(lock_id)
                if automaton.parent == node_id:
                    automaton.splice_parent(replacement)
            if leaver is not None:
                leaver.splice_retire(replacement)
        # Virgin locks whose home was the leaver re-home to the fallback.
        self._node_redirect[node_id] = fallback
        self._retire_member(node_id)
        self._log_membership("removed", node_id, successor=fallback)
        return fallback

    # -- structural checks (valid at quiescence only) --------------------

    def assert_quiescent_invariants(self) -> None:
        """Verify tree/token structure after the network has drained.

        Checks, per instantiated lock: exactly one token node; no pending
        requests or queued entries anywhere; parent/child records mutually
        consistent; each parent's recorded child mode equal to the child's
        actual owned mode.
        """

        lock_ids = set()
        for lockspace in self.lockspaces.values():
            lock_ids.update(lockspace.lock_ids)
        for lock_id in sorted(lock_ids):
            automata = {
                node_id: space.automaton(lock_id)
                for node_id, space in self.lockspaces.items()
            }
            tokens = [n for n, a in automata.items() if a.has_token]
            if len(tokens) != 1:
                raise InvariantViolation(
                    f"lock {lock_id!r}: {len(tokens)} token nodes ({tokens})"
                )
            for node_id, automaton in automata.items():
                if automaton.pending_mode is not LockMode.NONE:
                    raise InvariantViolation(
                        f"lock {lock_id!r}: node {node_id} still pending "
                        f"{automaton.pending_mode} at quiescence"
                    )
                if automaton.queue_length:
                    raise InvariantViolation(
                        f"lock {lock_id!r}: node {node_id} still queues "
                        f"{automaton.queue_length} requests at quiescence"
                    )
                for child, recorded in automaton.children.items():
                    actual = automata[child].owned_mode()
                    if actual is not recorded:
                        raise InvariantViolation(
                            f"lock {lock_id!r}: node {node_id} records child "
                            f"{child} as {recorded} but it owns {actual}"
                        )
                    if automata[child].parent != node_id:
                        raise InvariantViolation(
                            f"lock {lock_id!r}: child {child} of {node_id} "
                            f"points at parent {automata[child].parent}"
                        )


class NaimiClient:
    """Per-node client of the Naimi baseline (coroutine style)."""

    def __init__(self, cluster: "SimNaimiCluster", node_id: NodeId) -> None:
        self._cluster = cluster
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        """This client's node."""

        return self._node_id

    def acquire(self, lock_id: LockId) -> SimEvent:
        """Request the (exclusive) lock; yield the event to wait."""

        cluster = self._cluster
        cluster._check_departed(self._node_id)
        event = SimEvent(cluster.sim)
        out = cluster.lockspaces[self._node_id].request(lock_id, event)
        cluster.network.send(self._node_id, out)
        return event

    def release(self, lock_id: LockId) -> None:
        """Leave the critical section of *lock_id*."""

        cluster = self._cluster
        cluster._check_departed(self._node_id)
        cluster._record_release(self._node_id, lock_id, LockMode.W)
        out = cluster.lockspaces[self._node_id].release(lock_id)
        cluster.network.send(self._node_id, out)


class SimNaimiCluster(_BaseCluster):
    """A simulated cluster running the Naimi-Tréhel baseline."""

    PROTOCOL = "naimi"

    def __init__(
        self,
        num_nodes: int,
        sim: Optional[Simulator] = None,
        latency: Optional[Distribution] = None,
        seed: int = 0,
        token_home: TokenHomeFn = default_token_home,
        monitor: Optional[Monitor] = None,
        metrics: Optional[MetricsCollector] = None,
        obs: Optional[ObsSink] = None,
    ) -> None:
        super().__init__(
            num_nodes, sim=sim, latency=latency, seed=seed,
            monitor=monitor, metrics=metrics, obs=obs,
        )
        self._base_token_home = token_home
        self._home_override: Dict[LockId, NodeId] = {}
        self._node_redirect: Dict[NodeId, NodeId] = {}
        self.lockspaces: Dict[NodeId, NaimiLockSpace] = {}
        for node_id in range(num_nodes):
            self._add_lockspace(node_id)
        self.clients = [NaimiClient(self, n) for n in range(num_nodes)]

    def _resolve_home(self, lock_id: LockId) -> NodeId:
        """Token-home fn handed to every lockspace, splice-aware."""

        override = self._home_override.get(lock_id)
        if override is not None:
            return override
        home = self._base_token_home(lock_id)
        seen = set()
        while home in self._node_redirect and home not in seen:
            seen.add(home)
            home = self._node_redirect[home]
        return home

    def _add_lockspace(self, node_id: NodeId) -> NaimiLockSpace:
        lockspace = NaimiLockSpace(
            node_id=node_id,
            token_home=self._resolve_home,
            listener=self._make_listener(node_id),
        )
        lockspace.obs = self.obs
        self.lockspaces[node_id] = lockspace
        self.network.register(node_id, lockspace.handle)
        return lockspace

    def _label(self, message) -> str:
        return naimi_message_type_label(message)

    def _make_listener(self, node_id: NodeId):
        def listener(lock_id: LockId, ctx: object) -> None:
            # Naimi grants are exclusive; record them as W for monitors.
            self._record_grant(node_id, lock_id, LockMode.W)
            if isinstance(ctx, SimEvent):
                ctx.trigger(None)

        return listener

    def client(self, node_id: NodeId) -> NaimiClient:
        """Return the client object of *node_id*."""

        return self.clients[node_id]

    # -- membership splices (valid at quiescence only) -------------------

    def add_node(self) -> NodeId:
        """Join a fresh node; returns its id.

        Nothing to transplant: the joiner's automata are created lazily
        with ``last`` pointing at the (splice-aware) token home.
        """

        node_id = self._next_node_id
        self._next_node_id += 1
        self._add_lockspace(node_id)
        self.members.append(node_id)
        self.clients.append(NaimiClient(self, node_id))
        self._log_membership("join", node_id)
        return node_id

    def remove_node(
        self, node_id: NodeId, successor: Optional[NodeId] = None
    ) -> NodeId:
        """Splice *node_id* out of every last-pointer forest at quiescence.

        The node must be idle on every lock.  A token resting there
        transplants to the successor; ``last`` hints pointing at the
        leaver re-route to the leaver's own hint (or the successor),
        and future automaton creation is re-homed away from the leaver.
        Returns the fallback successor used.
        """

        self._require_removable(node_id)
        space = self.lockspaces[node_id]
        for automaton in space.automata():
            if not automaton.is_idle():
                raise ConfigurationError(
                    f"node {node_id} is still active on "
                    f"{automaton.lock_id!r}; drain before removal"
                )
        fallback = self._pick_successor(node_id, successor)
        lock_ids = sorted(
            {
                automaton.lock_id
                for member in self.members
                for automaton in self.lockspaces[member].automata()
            },
            key=str,
        )
        leaver_locks = {a.lock_id for a in space.automata()}
        for lock_id in lock_ids:
            leaver = (
                space.automaton(lock_id) if lock_id in leaver_locks else None
            )
            if leaver is not None and leaver.has_token:
                self.lockspaces[fallback].automaton(lock_id).splice_take_token()
                replacement = fallback
            elif leaver is not None:
                replacement = leaver.last
                if replacement not in self.members:
                    replacement = fallback
            else:
                replacement = fallback
            if self._resolve_home(lock_id) == node_id:
                holders = [
                    member
                    for member in self.members
                    if member != node_id
                    and lock_id in {
                        a.lock_id for a in self.lockspaces[member].automata()
                    }
                    and self.lockspaces[member].automaton(lock_id).has_token
                ]
                self._home_override[lock_id] = (
                    holders[0] if holders else replacement
                )
            for member in self.members:
                if member == node_id:
                    continue
                member_space = self.lockspaces[member]
                if lock_id not in {
                    a.lock_id for a in member_space.automata()
                }:
                    continue
                automaton = member_space.automaton(lock_id)
                if automaton.last == node_id:
                    target = replacement if replacement != member else fallback
                    if target == member:
                        raise ConfigurationError(
                            f"lock {lock_id!r}: no valid re-route for the "
                            f"probable-owner hint of node {member}"
                        )
                    automaton.splice_last(target)
            if leaver is not None:
                leaver.splice_retire(
                    replacement if replacement != node_id else fallback
                )
        self._node_redirect[node_id] = fallback
        self._retire_member(node_id)
        self._log_membership("removed", node_id, successor=fallback)
        return fallback

    def assert_quiescent_invariants(self) -> None:
        """Verify single-token / idle structure after the network drains."""

        lock_ids = set()
        for lockspace in self.lockspaces.values():
            lock_ids.update(a.lock_id for a in lockspace.automata())
        for lock_id in sorted(lock_ids):
            automata = {
                node_id: space.automaton(lock_id)
                for node_id, space in self.lockspaces.items()
            }
            tokens = [n for n, a in automata.items() if a.has_token]
            if len(tokens) != 1:
                raise InvariantViolation(
                    f"lock {lock_id!r}: {len(tokens)} token holders ({tokens})"
                )
            stuck = [n for n, a in automata.items() if not a.is_idle()]
            if stuck:
                raise InvariantViolation(
                    f"lock {lock_id!r}: nodes {stuck} not idle at quiescence"
                )


class RaymondClient:
    """Per-node client of the Raymond baseline (coroutine style)."""

    def __init__(self, cluster: "SimRaymondCluster", node_id: NodeId) -> None:
        self._cluster = cluster
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        """This client's node."""

        return self._node_id

    def acquire(self, lock_id: LockId) -> SimEvent:
        """Request the (exclusive) privilege; yield the event to wait."""

        cluster = self._cluster
        cluster._check_departed(self._node_id)
        cluster._record_request(self._node_id, lock_id, LockMode.W)
        event = SimEvent(cluster.sim)
        out = cluster.lockspaces[self._node_id].request(lock_id, event)
        cluster.network.send(self._node_id, out)
        return event

    def release(self, lock_id: LockId) -> None:
        """Leave the critical section of *lock_id*."""

        cluster = self._cluster
        cluster._check_departed(self._node_id)
        cluster._record_release(self._node_id, lock_id, LockMode.W)
        out = cluster.lockspaces[self._node_id].release(lock_id)
        cluster.network.send(self._node_id, out)


class SimRaymondCluster(_BaseCluster):
    """A simulated cluster running Raymond's static-tree baseline."""

    PROTOCOL = "raymond"

    def __init__(
        self,
        num_nodes: int,
        sim: Optional[Simulator] = None,
        latency: Optional[Distribution] = None,
        seed: int = 0,
        topology: Optional[Topology] = None,
        monitor: Optional[Monitor] = None,
        metrics: Optional[MetricsCollector] = None,
        obs: Optional[ObsSink] = None,
    ) -> None:
        super().__init__(
            num_nodes, sim=sim, latency=latency, seed=seed,
            monitor=monitor, metrics=metrics, obs=obs,
        )
        self.topology = (
            topology if topology is not None else balanced_binary_tree(num_nodes)
        )
        validate(self.topology)
        self.lockspaces: Dict[NodeId, RaymondLockSpace] = {}
        for node_id in range(num_nodes):
            lockspace = RaymondLockSpace(
                node_id=node_id,
                topology=self.topology,
                listener=self._make_listener(node_id),
            )
            lockspace.obs = obs
            self.lockspaces[node_id] = lockspace
            self.network.register(node_id, lockspace.handle)
        self.clients = [RaymondClient(self, n) for n in range(num_nodes)]

    def _label(self, message) -> str:
        return raymond_message_type_label(message)

    def _make_listener(self, node_id: NodeId):
        def listener(lock_id: LockId, ctx: object) -> None:
            self._record_grant(node_id, lock_id, LockMode.W)
            if isinstance(ctx, SimEvent):
                ctx.trigger(None)

        return listener

    def client(self, node_id: NodeId) -> RaymondClient:
        """Return the client object of *node_id*."""

        return self.clients[node_id]

    # -- membership splices (valid at quiescence only) -------------------

    def add_node(self, attach_to: Optional[NodeId] = None) -> NodeId:
        """Join a fresh node as a new leaf under *attach_to*.

        The shared topology dict is spliced in place, so every
        lockspace sees the new edge at once.  Fresh automata on the
        joiner default their ``holder`` toward the attachment point —
        correct, because the privilege can never be in a subtree it has
        never visited.
        """

        if attach_to is None:
            attach_to = min(self.members)
        elif attach_to not in self.members:
            raise ConfigurationError(
                f"attachment point {attach_to} is not a member"
            )
        node_id = self._next_node_id
        self._next_node_id += 1
        self.topology[node_id] = attach_to
        validate(self.topology)
        lockspace = RaymondLockSpace(
            node_id=node_id,
            topology=self.topology,
            listener=self._make_listener(node_id),
        )
        lockspace.obs = self.obs
        self.lockspaces[node_id] = lockspace
        self.network.register(node_id, lockspace.handle)
        self.members.append(node_id)
        self.clients.append(RaymondClient(self, node_id))
        self._log_membership("join", node_id, attached_to=attach_to)
        return node_id

    def remove_node(
        self, node_id: NodeId, successor: Optional[NodeId] = None
    ) -> NodeId:
        """Splice *node_id* out of the static tree at quiescence.

        The node must be idle on every lock.  Its tree children re-hang
        under its parent (or, when removing the root, under one promoted
        child); per lock, a privilege resting at the leaver moves out
        first — to the topology replacement — and every ``holder``
        pointer at the leaver re-routes toward the privilege's new
        position.  Returns the topology replacement.
        """

        self._require_removable(node_id)
        space = self.lockspaces[node_id]
        for automaton in space.automata():
            if not automaton.is_idle():
                raise ConfigurationError(
                    f"node {node_id} is still active on "
                    f"{automaton.lock_id!r}; drain before removal"
                )
        self._pick_successor(node_id, successor)  # membership sanity
        parent = self.topology[node_id]
        children = sorted(
            n for n, p in self.topology.items() if p == node_id
        )
        if parent is not None:
            replacement = parent
            for child in children:
                self.topology[child] = parent
        else:
            if successor is not None and successor in children:
                replacement = successor
            else:
                replacement = children[0]
            self.topology[replacement] = None
            for child in children:
                if child != replacement:
                    self.topology[child] = replacement
        del self.topology[node_id]
        validate(self.topology)
        lock_ids = sorted(
            {
                automaton.lock_id
                for member in self.members
                for automaton in self.lockspaces[member].automata()
            },
            key=str,
        )
        leaver_locks = {a.lock_id for a in space.automata()}
        for lock_id in lock_ids:
            leaver = (
                space.automaton(lock_id) if lock_id in leaver_locks else None
            )
            direction: Optional[NodeId] = None
            if leaver is not None and leaver.has_privilege:
                # Privilege out first: the replacement takes it.  Its
                # automaton may be created here under the *new* topology
                # (a fresh root is already privileged; a fresh non-root
                # is pointed up and corrected below).
                target = self.lockspaces[replacement].automaton(lock_id)
                target.splice_holder(None)
                leaver.splice_holder(replacement)
            elif leaver is not None:
                direction = leaver.holder
                if (
                    self.topology.get(replacement) is None
                    and direction != replacement
                    and lock_id not in {
                        a.lock_id
                        for a in self.lockspaces[replacement].automata()
                    }
                ):
                    # Promoted root with no automaton yet, privilege in
                    # another ex-child's subtree: pre-create it pointed
                    # the right way, or a later lazy creation would
                    # claim a second privilege.
                    fresh = self.lockspaces[replacement].automaton(lock_id)
                    fresh.splice_holder(direction)
            for member in self.members:
                if member == node_id:
                    continue
                member_space = self.lockspaces[member]
                if lock_id not in {
                    a.lock_id for a in member_space.automata()
                }:
                    continue
                automaton = member_space.automaton(lock_id)
                if automaton.holder != node_id:
                    continue
                if direction is not None and member == replacement:
                    automaton.splice_holder(direction)
                else:
                    automaton.splice_holder(replacement)
            if leaver is not None and not leaver.has_privilege:
                leaver.splice_holder(replacement)
        self._retire_member(node_id)
        self._log_membership("removed", node_id, successor=replacement)
        return replacement

    def assert_quiescent_invariants(self) -> None:
        """Verify single-privilege / idle structure after draining."""

        lock_ids = set()
        for lockspace in self.lockspaces.values():
            lock_ids.update(a.lock_id for a in lockspace.automata())
        for lock_id in sorted(lock_ids):
            automata = {
                node_id: space.automaton(lock_id)
                for node_id, space in self.lockspaces.items()
            }
            privileged = [n for n, a in automata.items() if a.has_privilege]
            if len(privileged) != 1:
                raise InvariantViolation(
                    f"lock {lock_id!r}: {len(privileged)} privilege "
                    f"holders ({privileged})"
                )
            stuck = [n for n, a in automata.items() if not a.is_idle()]
            if stuck:
                raise InvariantViolation(
                    f"lock {lock_id!r}: nodes {stuck} not idle at quiescence"
                )

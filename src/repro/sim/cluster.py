"""Simulated clusters: N nodes, a network, and per-node lock clients.

Two cluster flavours share the same shape:

* :class:`SimHierarchicalCluster` — every node runs a
  :class:`~repro.core.lockspace.LockSpace` (the paper's protocol),
* :class:`SimNaimiCluster` — every node runs a
  :class:`~repro.naimi.lockspace.NaimiLockSpace` (the baseline).

Clients expose coroutine-friendly ``acquire`` (returns a
:class:`~repro.sim.engine.SimEvent` to ``yield`` on), plus synchronous
``release``.  Grants and releases are reported to an optional
:class:`~repro.verification.invariants.Monitor`, and every wire message to
an optional :class:`~repro.metrics.MetricsCollector` — the measurement
points for all reproduced figures.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Optional

from ..core.automaton import FULL_PROTOCOL, ProtocolOptions
from ..core.lockspace import LockSpace, TokenHomeFn, default_token_home
from ..core.messages import LockId, NodeId, message_type_label
from ..core.modes import LockMode
from ..errors import ConfigurationError, InvariantViolation
from ..metrics import MetricsCollector
from ..obs.sink import ObsSink
from ..naimi.lockspace import NaimiLockSpace
from ..naimi.messages import naimi_message_type_label
from ..raymond.lockspace import RaymondLockSpace
from ..raymond.messages import raymond_message_type_label
from ..raymond.topology import Topology, balanced_binary_tree, validate
from ..verification.invariants import Monitor
from .engine import SimEvent, Simulator
from .network import Network
from .rng import Distribution, Exponential


@dataclasses.dataclass
class _GrantCtx:
    """Listener context: the waiter event plus bookkeeping flags."""

    event: SimEvent
    is_upgrade: bool = False


class _BaseCluster:
    """State shared by both cluster flavours."""

    #: Protocol tag stamped into cluster views (set per subclass).
    PROTOCOL = "?"

    def __init__(
        self,
        num_nodes: int,
        sim: Optional[Simulator] = None,
        latency: Optional[Distribution] = None,
        seed: int = 0,
        monitor: Optional[Monitor] = None,
        metrics: Optional[MetricsCollector] = None,
        obs: Optional[ObsSink] = None,
    ) -> None:
        if num_nodes < 1:
            raise ConfigurationError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.sim = sim if sim is not None else Simulator()
        self.monitor = monitor
        self.metrics = metrics
        #: Observability sink shared by every automaton, the network
        #: observer and the engine tick hook (None = not collecting).
        self.obs = obs
        if obs is not None:
            self.sim.tick_hook = obs.engine_tick
        self._latency = latency if latency is not None else Exponential(0.150)
        self.network = Network(
            self.sim,
            latency=self._latency,
            rng=random.Random(seed ^ 0x5EED),
            observer=self._observe_message,
            tracer=getattr(obs, "tracer", None) if obs is not None else None,
        )

    @property
    def mean_latency(self) -> float:
        """Mean point-to-point latency (the Figure 6 normalizer)."""

        return self._latency.mean

    def _observe_message(self, sender: NodeId, dest: NodeId, message) -> None:
        if self.metrics is not None:
            self.metrics.count_message(self._label(message))
        if self.obs is not None:
            # Same observation point and same label as the metrics
            # counter, so per-type totals in traces match
            # MetricsCollector.message_overhead_by_type exactly.
            self.obs.message(sender, dest, self._label(message))

    def _label(self, message) -> str:  # overridden per protocol
        raise NotImplementedError

    def _record_request(self, node: NodeId, lock_id: LockId, mode: LockMode) -> None:
        if self.monitor is not None:
            self.monitor.on_request(self.sim.now, node, lock_id, mode)

    def _record_grant(self, node: NodeId, lock_id: LockId, mode: LockMode) -> None:
        if self.monitor is not None:
            self.monitor.on_grant(self.sim.now, node, lock_id, mode)

    def _record_release(self, node: NodeId, lock_id: LockId, mode: LockMode) -> None:
        if self.monitor is not None:
            self.monitor.on_release(self.sim.now, node, lock_id, mode)

    def cluster_view(self):
        """Capture a :class:`repro.obs.live.ClusterView` of all nodes.

        A pure read over every node's lock state — the simulator is
        single-threaded, so no locking is needed and the capture is an
        exact instant in simulated time.
        """

        from ..obs.live import ClusterView, snapshot_node

        return ClusterView(
            protocol=self.PROTOCOL,
            captured_at=self.sim.now,
            nodes=tuple(
                snapshot_node(node_id, self.lockspaces[node_id])
                for node_id in sorted(self.lockspaces)
            ),
        )


class HierClient:
    """Per-node client of the hierarchical protocol (coroutine style)."""

    def __init__(self, cluster: "SimHierarchicalCluster", node_id: NodeId) -> None:
        self._cluster = cluster
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        """This client's node."""

        return self._node_id

    def acquire(
        self, lock_id: LockId, mode: LockMode, priority: int = 0
    ) -> SimEvent:
        """Request *lock_id* in *mode*; yield the returned event to wait.

        *priority* participates in arbitration only when the cluster runs
        with ``ProtocolOptions.priority_scheduling``.
        """

        cluster = self._cluster
        cluster._record_request(self._node_id, lock_id, mode)
        event = SimEvent(cluster.sim)
        ctx = _GrantCtx(event=event)
        out = cluster.lockspaces[self._node_id].request(
            lock_id, mode, ctx, priority
        )
        cluster.network.send(self._node_id, out)
        return event

    def release(self, lock_id: LockId, mode: LockMode) -> None:
        """Release one hold of *mode* on *lock_id*."""

        cluster = self._cluster
        cluster._record_release(self._node_id, lock_id, mode)
        out = cluster.lockspaces[self._node_id].release(lock_id, mode)
        cluster.network.send(self._node_id, out)

    def upgrade(self, lock_id: LockId) -> SimEvent:
        """Upgrade a held ``U`` on *lock_id* to ``W``; yields like acquire."""

        cluster = self._cluster
        event = SimEvent(cluster.sim)
        ctx = _GrantCtx(event=event, is_upgrade=True)
        out = cluster.lockspaces[self._node_id].upgrade(lock_id, ctx)
        cluster.network.send(self._node_id, out)
        return event


class SimHierarchicalCluster(_BaseCluster):
    """A simulated cluster running the paper's hierarchical protocol."""

    PROTOCOL = "hierarchical"

    def __init__(
        self,
        num_nodes: int,
        sim: Optional[Simulator] = None,
        latency: Optional[Distribution] = None,
        seed: int = 0,
        token_home: TokenHomeFn = default_token_home,
        monitor: Optional[Monitor] = None,
        metrics: Optional[MetricsCollector] = None,
        options: ProtocolOptions = FULL_PROTOCOL,
        obs: Optional[ObsSink] = None,
    ) -> None:
        super().__init__(
            num_nodes, sim=sim, latency=latency, seed=seed,
            monitor=monitor, metrics=metrics, obs=obs,
        )
        self.lockspaces: Dict[NodeId, LockSpace] = {}
        for node_id in range(num_nodes):
            lockspace = LockSpace(
                node_id=node_id,
                token_home=token_home,
                listener=self._make_listener(node_id),
                options=options,
            )
            lockspace.obs = obs
            self.lockspaces[node_id] = lockspace
            self.network.register(node_id, lockspace.handle)
        self.clients = [HierClient(self, n) for n in range(num_nodes)]

    def _label(self, message) -> str:
        return message_type_label(message)

    def _make_listener(self, node_id: NodeId):
        def listener(lock_id: LockId, mode: LockMode, ctx: object) -> None:
            if isinstance(ctx, _GrantCtx):
                if ctx.is_upgrade:
                    self._record_release(node_id, lock_id, LockMode.U)
                self._record_grant(node_id, lock_id, mode)
                ctx.event.trigger(mode)
            else:
                self._record_grant(node_id, lock_id, mode)

        return listener

    def client(self, node_id: NodeId) -> HierClient:
        """Return the client object of *node_id*."""

        return self.clients[node_id]

    # -- structural checks (valid at quiescence only) --------------------

    def assert_quiescent_invariants(self) -> None:
        """Verify tree/token structure after the network has drained.

        Checks, per instantiated lock: exactly one token node; no pending
        requests or queued entries anywhere; parent/child records mutually
        consistent; each parent's recorded child mode equal to the child's
        actual owned mode.
        """

        lock_ids = set()
        for lockspace in self.lockspaces.values():
            lock_ids.update(lockspace.lock_ids)
        for lock_id in sorted(lock_ids):
            automata = {
                node_id: space.automaton(lock_id)
                for node_id, space in self.lockspaces.items()
            }
            tokens = [n for n, a in automata.items() if a.has_token]
            if len(tokens) != 1:
                raise InvariantViolation(
                    f"lock {lock_id!r}: {len(tokens)} token nodes ({tokens})"
                )
            for node_id, automaton in automata.items():
                if automaton.pending_mode is not LockMode.NONE:
                    raise InvariantViolation(
                        f"lock {lock_id!r}: node {node_id} still pending "
                        f"{automaton.pending_mode} at quiescence"
                    )
                if automaton.queue_length:
                    raise InvariantViolation(
                        f"lock {lock_id!r}: node {node_id} still queues "
                        f"{automaton.queue_length} requests at quiescence"
                    )
                for child, recorded in automaton.children.items():
                    actual = automata[child].owned_mode()
                    if actual is not recorded:
                        raise InvariantViolation(
                            f"lock {lock_id!r}: node {node_id} records child "
                            f"{child} as {recorded} but it owns {actual}"
                        )
                    if automata[child].parent != node_id:
                        raise InvariantViolation(
                            f"lock {lock_id!r}: child {child} of {node_id} "
                            f"points at parent {automata[child].parent}"
                        )


class NaimiClient:
    """Per-node client of the Naimi baseline (coroutine style)."""

    def __init__(self, cluster: "SimNaimiCluster", node_id: NodeId) -> None:
        self._cluster = cluster
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        """This client's node."""

        return self._node_id

    def acquire(self, lock_id: LockId) -> SimEvent:
        """Request the (exclusive) lock; yield the event to wait."""

        cluster = self._cluster
        event = SimEvent(cluster.sim)
        out = cluster.lockspaces[self._node_id].request(lock_id, event)
        cluster.network.send(self._node_id, out)
        return event

    def release(self, lock_id: LockId) -> None:
        """Leave the critical section of *lock_id*."""

        cluster = self._cluster
        cluster._record_release(self._node_id, lock_id, LockMode.W)
        out = cluster.lockspaces[self._node_id].release(lock_id)
        cluster.network.send(self._node_id, out)


class SimNaimiCluster(_BaseCluster):
    """A simulated cluster running the Naimi-Tréhel baseline."""

    PROTOCOL = "naimi"

    def __init__(
        self,
        num_nodes: int,
        sim: Optional[Simulator] = None,
        latency: Optional[Distribution] = None,
        seed: int = 0,
        token_home: TokenHomeFn = default_token_home,
        monitor: Optional[Monitor] = None,
        metrics: Optional[MetricsCollector] = None,
        obs: Optional[ObsSink] = None,
    ) -> None:
        super().__init__(
            num_nodes, sim=sim, latency=latency, seed=seed,
            monitor=monitor, metrics=metrics, obs=obs,
        )
        self.lockspaces: Dict[NodeId, NaimiLockSpace] = {}
        for node_id in range(num_nodes):
            lockspace = NaimiLockSpace(
                node_id=node_id,
                token_home=token_home,
                listener=self._make_listener(node_id),
            )
            lockspace.obs = obs
            self.lockspaces[node_id] = lockspace
            self.network.register(node_id, lockspace.handle)
        self.clients = [NaimiClient(self, n) for n in range(num_nodes)]

    def _label(self, message) -> str:
        return naimi_message_type_label(message)

    def _make_listener(self, node_id: NodeId):
        def listener(lock_id: LockId, ctx: object) -> None:
            # Naimi grants are exclusive; record them as W for monitors.
            self._record_grant(node_id, lock_id, LockMode.W)
            if isinstance(ctx, SimEvent):
                ctx.trigger(None)

        return listener

    def client(self, node_id: NodeId) -> NaimiClient:
        """Return the client object of *node_id*."""

        return self.clients[node_id]

    def assert_quiescent_invariants(self) -> None:
        """Verify single-token / idle structure after the network drains."""

        lock_ids = set()
        for lockspace in self.lockspaces.values():
            lock_ids.update(a.lock_id for a in lockspace.automata())
        for lock_id in sorted(lock_ids):
            automata = {
                node_id: space.automaton(lock_id)
                for node_id, space in self.lockspaces.items()
            }
            tokens = [n for n, a in automata.items() if a.has_token]
            if len(tokens) != 1:
                raise InvariantViolation(
                    f"lock {lock_id!r}: {len(tokens)} token holders ({tokens})"
                )
            stuck = [n for n, a in automata.items() if not a.is_idle()]
            if stuck:
                raise InvariantViolation(
                    f"lock {lock_id!r}: nodes {stuck} not idle at quiescence"
                )


class RaymondClient:
    """Per-node client of the Raymond baseline (coroutine style)."""

    def __init__(self, cluster: "SimRaymondCluster", node_id: NodeId) -> None:
        self._cluster = cluster
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        """This client's node."""

        return self._node_id

    def acquire(self, lock_id: LockId) -> SimEvent:
        """Request the (exclusive) privilege; yield the event to wait."""

        cluster = self._cluster
        cluster._record_request(self._node_id, lock_id, LockMode.W)
        event = SimEvent(cluster.sim)
        out = cluster.lockspaces[self._node_id].request(lock_id, event)
        cluster.network.send(self._node_id, out)
        return event

    def release(self, lock_id: LockId) -> None:
        """Leave the critical section of *lock_id*."""

        cluster = self._cluster
        cluster._record_release(self._node_id, lock_id, LockMode.W)
        out = cluster.lockspaces[self._node_id].release(lock_id)
        cluster.network.send(self._node_id, out)


class SimRaymondCluster(_BaseCluster):
    """A simulated cluster running Raymond's static-tree baseline."""

    PROTOCOL = "raymond"

    def __init__(
        self,
        num_nodes: int,
        sim: Optional[Simulator] = None,
        latency: Optional[Distribution] = None,
        seed: int = 0,
        topology: Optional[Topology] = None,
        monitor: Optional[Monitor] = None,
        metrics: Optional[MetricsCollector] = None,
        obs: Optional[ObsSink] = None,
    ) -> None:
        super().__init__(
            num_nodes, sim=sim, latency=latency, seed=seed,
            monitor=monitor, metrics=metrics, obs=obs,
        )
        self.topology = (
            topology if topology is not None else balanced_binary_tree(num_nodes)
        )
        validate(self.topology)
        self.lockspaces: Dict[NodeId, RaymondLockSpace] = {}
        for node_id in range(num_nodes):
            lockspace = RaymondLockSpace(
                node_id=node_id,
                topology=self.topology,
                listener=self._make_listener(node_id),
            )
            lockspace.obs = obs
            self.lockspaces[node_id] = lockspace
            self.network.register(node_id, lockspace.handle)
        self.clients = [RaymondClient(self, n) for n in range(num_nodes)]

    def _label(self, message) -> str:
        return raymond_message_type_label(message)

    def _make_listener(self, node_id: NodeId):
        def listener(lock_id: LockId, ctx: object) -> None:
            self._record_grant(node_id, lock_id, LockMode.W)
            if isinstance(ctx, SimEvent):
                ctx.trigger(None)

        return listener

    def client(self, node_id: NodeId) -> RaymondClient:
        """Return the client object of *node_id*."""

        return self.clients[node_id]

    def assert_quiescent_invariants(self) -> None:
        """Verify single-privilege / idle structure after draining."""

        lock_ids = set()
        for lockspace in self.lockspaces.values():
            lock_ids.update(a.lock_id for a in lockspace.automata())
        for lock_id in sorted(lock_ids):
            automata = {
                node_id: space.automaton(lock_id)
                for node_id, space in self.lockspaces.items()
            }
            privileged = [n for n, a in automata.items() if a.has_privilege]
            if len(privileged) != 1:
                raise InvariantViolation(
                    f"lock {lock_id!r}: {len(privileged)} privilege "
                    f"holders ({privileged})"
                )
            stuck = [n for n, a in automata.items() if not a.is_idle()]
            if stuck:
                raise InvariantViolation(
                    f"lock {lock_id!r}: nodes {stuck} not idle at quiescence"
                )

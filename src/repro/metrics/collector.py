"""Measurement plumbing: message counters and latency records.

The collector is deliberately protocol-agnostic: the network calls
:meth:`MetricsCollector.count_message` for every envelope that crosses the
wire, and workload clients call :meth:`MetricsCollector.record_request`
once per application-level lock request (see DESIGN.md §6 for the exact
definition of "lock request" per protocol — it is the denominator of every
figure in the paper).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Optional

from .stats import Summary, summarize


@dataclasses.dataclass(frozen=True)
class RequestRecord:
    """One completed lock request."""

    node: int
    kind: str           # e.g. "IR", "R", "U", "IW", "W", "entry", "table"
    issued_at: float
    granted_at: float
    lock: str = ""      # the lock the request was for (fairness analysis)

    @property
    def latency(self) -> float:
        """Seconds from issue to grant."""

        return self.granted_at - self.issued_at


class MetricsCollector:
    """Accumulates message counts and request latencies for one run."""

    def __init__(self) -> None:
        self.message_counts: Counter = Counter()
        self.requests: List[RequestRecord] = []
        self.operations = 0

    # -- message side ---------------------------------------------------

    def count_message(self, label: str) -> None:
        """Record one wire message of type *label*."""

        self.message_counts[label] += 1

    @property
    def total_messages(self) -> int:
        """Total wire messages observed."""

        return sum(self.message_counts.values())

    # -- request side ---------------------------------------------------

    def record_request(
        self,
        node: int,
        kind: str,
        issued_at: float,
        granted_at: float,
        lock: str = "",
    ) -> None:
        """Record one completed lock request."""

        self.requests.append(
            RequestRecord(
                node=node,
                kind=kind,
                issued_at=issued_at,
                granted_at=granted_at,
                lock=lock,
            )
        )

    def record_operation(self) -> None:
        """Record one completed application-level operation."""

        self.operations += 1

    # -- derived figures --------------------------------------------------

    @property
    def total_requests(self) -> int:
        """Number of completed lock requests (the paper's denominator)."""

        return len(self.requests)

    def message_overhead(self) -> float:
        """Average wire messages per lock request (Figure 5's y-axis)."""

        if not self.requests:
            return 0.0
        return self.total_messages / len(self.requests)

    def message_overhead_by_type(self) -> Dict[str, float]:
        """Per-type messages per lock request (Figure 7's y-axis)."""

        if not self.requests:
            return {}
        count = len(self.requests)
        return {
            label: total / count
            for label, total in sorted(self.message_counts.items())
        }

    def latency_summary(self, kind: Optional[str] = None) -> Summary:
        """Summarize request latencies, optionally for one request kind."""

        values = [
            r.latency for r in self.requests if kind is None or r.kind == kind
        ]
        return summarize(values)

    def latency_factor(self, base_latency: float) -> float:
        """Mean latency as a multiple of *base_latency* (Figure 6's y-axis)."""

        if not self.requests or base_latency <= 0:
            return 0.0
        return self.latency_summary().mean / base_latency

"""Measurement plumbing: message counters and latency records.

The collector is deliberately protocol-agnostic: the network calls
:meth:`MetricsCollector.count_message` for every envelope that crosses the
wire, and workload clients call :meth:`MetricsCollector.record_request`
once per application-level lock request (see DESIGN.md §6 for the exact
definition of "lock request" per protocol — it is the denominator of every
figure in the paper).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from ..obs.sink import GRANTED, ISSUED
from ..obs.spans import RequestSpan
from .stats import Summary, summarize


class RequestRecord:
    """One completed lock request, backed by its lifecycle phases.

    Historically a flat ``(issued_at, granted_at)`` pair; now a thin view
    over a span's ``(phase, timestamp)`` transitions so richer phases
    (enqueued, frozen, released) survive into the metrics layer.  The old
    constructor shape — ``RequestRecord(node, kind, issued_at, granted_at,
    lock)`` — still works and produces a two-phase record.
    """

    __slots__ = ("node", "kind", "lock", "phases")

    def __init__(
        self,
        node: int,
        kind: str,          # e.g. "IR", "R", "U", "IW", "W", "entry", "table"
        issued_at: Optional[float] = None,
        granted_at: Optional[float] = None,
        lock: str = "",     # the lock the request was for (fairness analysis)
        phases: Optional[Iterable[Tuple[str, float]]] = None,
    ) -> None:
        if phases is None:
            if issued_at is None or granted_at is None:
                raise ValueError(
                    "RequestRecord needs issued_at+granted_at or phases"
                )
            phases = ((ISSUED, issued_at), (GRANTED, granted_at))
        self.node = node
        self.kind = kind
        self.lock = lock
        self.phases: Tuple[Tuple[str, float], ...] = tuple(
            (name, float(time)) for name, time in phases
        )

    @classmethod
    def from_span(
        cls, span: RequestSpan, kind: Optional[str] = None, lock: str = ""
    ) -> "RequestRecord":
        """Build a record from an observability span (must be granted)."""

        if span.granted_at is None:
            raise ValueError("cannot record a span that was never granted")
        return cls(
            node=span.node,
            kind=kind if kind is not None else span.kind,
            lock=lock or span.lock,
            phases=span.phases,
        )

    def time_of(self, phase: str) -> Optional[float]:
        """Timestamp of the first transition into *phase*, if recorded."""

        for name, time in self.phases:
            if name == phase:
                return time
        return None

    @property
    def issued_at(self) -> float:
        """When the request was issued (first phase as a fallback)."""

        issued = self.time_of(ISSUED)
        return issued if issued is not None else self.phases[0][1]

    @property
    def granted_at(self) -> float:
        """When the request was granted (last phase as a fallback)."""

        granted = self.time_of(GRANTED)
        return granted if granted is not None else self.phases[-1][1]

    @property
    def latency(self) -> float:
        """Seconds from issue to grant."""

        return self.granted_at - self.issued_at

    def _key(self) -> Tuple:
        return (self.node, self.kind, self.lock, self.phases)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestRecord):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RequestRecord(node={self.node}, kind={self.kind!r}, "
            f"lock={self.lock!r}, phases={self.phases!r})"
        )


class MetricsCollector:
    """Accumulates message counts and request latencies for one run."""

    def __init__(self) -> None:
        self.message_counts: Counter = Counter()
        self.requests: List[RequestRecord] = []
        self.operations = 0

    # -- message side ---------------------------------------------------

    def count_message(self, label: str) -> None:
        """Record one wire message of type *label*."""

        self.message_counts[label] += 1

    @property
    def total_messages(self) -> int:
        """Total wire messages observed."""

        return sum(self.message_counts.values())

    # -- request side ---------------------------------------------------

    def record_request(
        self,
        node: int,
        kind: str,
        issued_at: float,
        granted_at: float,
        lock: str = "",
    ) -> None:
        """Record one completed lock request."""

        self.requests.append(
            RequestRecord(
                node=node,
                kind=kind,
                issued_at=issued_at,
                granted_at=granted_at,
                lock=lock,
            )
        )

    def record_span(
        self, span: RequestSpan, kind: Optional[str] = None, lock: str = ""
    ) -> None:
        """Record one completed request straight from its span."""

        self.requests.append(RequestRecord.from_span(span, kind=kind, lock=lock))

    def record_operation(self) -> None:
        """Record one completed application-level operation."""

        self.operations += 1

    # -- derived figures --------------------------------------------------

    @property
    def total_requests(self) -> int:
        """Number of completed lock requests (the paper's denominator)."""

        return len(self.requests)

    def message_overhead(self) -> float:
        """Average wire messages per lock request (Figure 5's y-axis)."""

        if not self.requests:
            return 0.0
        return self.total_messages / len(self.requests)

    def message_overhead_by_type(self) -> Dict[str, float]:
        """Per-type messages per lock request (Figure 7's y-axis)."""

        if not self.requests:
            return {}
        count = len(self.requests)
        return {
            label: total / count
            for label, total in sorted(self.message_counts.items())
        }

    def latency_summary(self, kind: Optional[str] = None) -> Summary:
        """Summarize request latencies, optionally for one request kind."""

        values = [
            r.latency for r in self.requests if kind is None or r.kind == kind
        ]
        return summarize(values)

    def latency_factor(self, base_latency: float) -> float:
        """Mean latency as a multiple of *base_latency* (Figure 6's y-axis).

        Raises :class:`ValueError` on a non-positive *base_latency*: a
        zero baseline means the experiment never measured one, and
        silently returning 0.0 used to render a flat-zero latency curve
        instead of flagging the misconfiguration.
        """

        if base_latency <= 0:
            raise ValueError(
                f"base_latency must be positive, got {base_latency!r} "
                "(was the baseline latency ever measured?)"
            )
        if not self.requests:
            return 0.0
        return self.latency_summary().mean / base_latency

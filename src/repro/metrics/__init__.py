"""Metrics collection and summary statistics."""

from .collector import MetricsCollector, RequestRecord
from .stats import Summary, mean_confidence_halfwidth, percentile, summarize

__all__ = [
    "MetricsCollector",
    "RequestRecord",
    "Summary",
    "mean_confidence_halfwidth",
    "percentile",
    "summarize",
]

"""Small statistics helpers (mean, percentiles, confidence half-widths).

Kept dependency-free on purpose: numpy is available in this environment,
but these run in inner loops of tests where plain Python is fast enough
and the semantics (e.g. nearest-rank percentiles) stay explicit.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence


@dataclasses.dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4f} sd={self.stdev:.4f} "
            f"min={self.minimum:.4f} p50={self.p50:.4f} "
            f"p95={self.p95:.4f} max={self.maximum:.4f}"
        )


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty sample."""

    if not sorted_values:
        raise ValueError("empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rank = max(0, min(len(sorted_values) - 1, math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary` (all-zero for an empty sample)."""

    if not values:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered: List[float] = sorted(values)
    count = len(ordered)
    mean = sum(ordered) / count
    variance = sum((v - mean) ** 2 for v in ordered) / count
    return Summary(
        count=count,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=ordered[0],
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
        maximum=ordered[-1],
    )


def mean_confidence_halfwidth(values: Sequence[float], z: float = 1.96) -> float:
    """Approximate normal half-width of the mean's confidence interval."""

    if len(values) < 2:
        return 0.0
    count = len(values)
    mean = sum(values) / count
    variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    return z * math.sqrt(variance / count)

"""Exposition of live cluster health: Prometheus metrics + JSON views.

:class:`MonitorServer` runs a stdlib :class:`~http.server.ThreadingHTTPServer`
on a daemon thread next to a threaded/TCP cluster and serves:

* ``GET /metrics``   — Prometheus text format: the run observer's
  counters/gauges/histograms plus view-derived cluster gauges (node
  liveness, token believers, queue occupancy) and the audit verdict.
* ``GET /cluster``   — ``{"view": ClusterView, "audit": AuditReport}``
  as JSON, the machine-readable twin of the health table.
* ``GET /healthz``   — ``200 ok`` iff the latest audit found no
  violations, ``503`` otherwise (load-balancer / CI friendly).

Every request triggers one fresh :meth:`~repro.obs.live.LiveMonitor.poll`
— the server holds no cache, so what you scrape is what the cluster
believes right now.

:func:`render_health_table` is the human rendering the
``python -m repro monitor`` CLI refreshes in a loop.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple

from .live import AuditReport, ClusterView, LiveMonitor


# ---------------------------------------------------------------------------
# Prometheus text exposition.
# ---------------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _sample(name: str, value, labels: Optional[dict] = None) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(val)}"' for key, val in labels.items()
        )
        return f"{name}{{{rendered}}} {value}"
    return f"{name} {value}"


def render_prometheus(
    view: ClusterView,
    report: AuditReport,
    observer=None,
) -> str:
    """Render one scrape in Prometheus text exposition format.

    Counter/gauge/histogram series come from the optional run
    *observer* (the same instruments ``--trace-out`` exports); the
    cluster-shape gauges and the audit verdict come from *view* and
    *report*.
    """

    lines: List[str] = []

    def emit(name: str, kind: str, help_text: str, samples: List[str]) -> None:
        if not samples:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    if observer is not None:
        for cname, counter in observer.counters().items():
            emit(
                f"repro_{cname}_total",
                "counter",
                f"Cumulative {cname.replace('_', ' ')} observed this run.",
                [
                    _sample(
                        f"repro_{cname}_total", total, {"label": label}
                    )
                    for label, total in counter.totals().items()
                ],
            )
        for gname, gauge in observer.gauges().items():
            timeline = gauge.timeline()
            emit(
                f"repro_{gname}",
                "gauge",
                f"Latest windowed mean of {gname.replace('_', ' ')}.",
                [_sample(f"repro_{gname}", timeline[-1][1])],
            )
            emit(
                f"repro_{gname}_peak",
                "gauge",
                f"Largest {gname.replace('_', ' ')} sampled this run.",
                [_sample(f"repro_{gname}_peak", gauge.peak())],
            )
        for hname, histogram in observer.histograms().items():
            base = f"repro_{hname}_seconds"
            emit(
                base,
                "summary",
                f"Distribution of {hname.replace('_', ' ')} (seconds).",
                [
                    _sample(base, histogram.quantile(q), {"quantile": str(q)})
                    for q in (0.5, 0.9, 0.99)
                ]
                + [
                    _sample(f"{base}_sum", histogram.total),
                    _sample(f"{base}_count", histogram.count),
                ],
            )

    alive = len(view.alive_nodes())
    emit(
        "repro_cluster_nodes",
        "gauge",
        "Cluster membership by liveness.",
        [
            _sample("repro_cluster_nodes", alive, {"state": "alive"}),
            _sample(
                "repro_cluster_nodes",
                len(view.nodes) - alive,
                {"state": "crashed"},
            ),
        ],
    )
    emit(
        "repro_token_believers",
        "gauge",
        "Alive nodes believing they hold the token, per lock (1 = healthy).",
        [
            _sample(
                "repro_token_believers",
                len(view.token_believers(lock_id)),
                {"lock": str(lock_id)},
            )
            for lock_id in view.lock_ids()
        ],
    )
    emit(
        "repro_queue_entries",
        "gauge",
        "Locally queued requests per node.",
        [
            _sample(
                "repro_queue_entries",
                sum(len(snap.queue) for snap in node.locks),
                {"node": str(node.node)},
            )
            for node in view.nodes
            if node.alive
        ],
    )
    backlog = [
        _sample(
            "repro_channel_backlog",
            node.recovery.channel_backlog,
            {"node": str(node.node)},
        )
        for node in view.nodes
        if node.alive and node.recovery is not None
    ]
    emit(
        "repro_channel_backlog",
        "gauge",
        "Session-channel frames awaiting acknowledgement, per node.",
        backlog,
    )
    lease_rows = [
        (node, node.recovery.leases)
        for node in view.nodes
        if node.alive
        and node.recovery is not None
        and node.recovery.leases is not None
    ]
    emit(
        "repro_leases_active",
        "gauge",
        "Active leases per node: own = this node's granted holds, "
        "remote = leases mirrored from peers' heartbeats.",
        [
            _sample(
                "repro_leases_active",
                len(info.get("own", ())),
                {"node": str(node.node), "table": "own"},
            )
            for node, info in lease_rows
        ]
        + [
            _sample(
                "repro_leases_active",
                len(info.get("remote", ())),
                {"node": str(node.node), "table": "remote"},
            )
            for node, info in lease_rows
        ],
    )
    emit(
        "repro_lease_fenced",
        "gauge",
        "1 iff the node lease-fenced itself (quorum-silent past expiry).",
        [
            _sample(
                "repro_lease_fenced",
                1 if info.get("fenced") else 0,
                {"node": str(node.node)},
            )
            for node, info in lease_rows
        ],
    )
    emit(
        "repro_view_epoch",
        "gauge",
        "Installed membership view epoch per node (skew = propagating "
        "view change; persistent skew = partitioned member).",
        [
            _sample(
                "repro_view_epoch",
                node.recovery.view_epoch,
                {"node": str(node.node)},
            )
            for node in view.nodes
            if node.alive and node.recovery is not None
        ],
    )
    emit(
        "repro_view_members",
        "gauge",
        "Member count of the installed view per node.",
        [
            _sample(
                "repro_view_members",
                len(node.recovery.view_members),
                {"node": str(node.node)},
            )
            for node in view.nodes
            if node.alive and node.recovery is not None
        ],
    )
    emit(
        "repro_audit_ok",
        "gauge",
        "1 iff the latest online invariant audit found no violations.",
        [_sample("repro_audit_ok", 1 if report.ok else 0)],
    )
    emit(
        "repro_audit_findings",
        "gauge",
        "Findings of the latest online invariant audit, by severity.",
        [
            _sample(
                "repro_audit_findings",
                len(report.violations()),
                {"severity": "violation"},
            ),
            _sample(
                "repro_audit_findings",
                len(report.warnings()),
                {"severity": "warning"},
            ),
        ],
    )
    emit(
        "repro_snapshot_timestamp_seconds",
        "gauge",
        "Capture time of the exposed cluster view (cluster timebase).",
        [_sample("repro_snapshot_timestamp_seconds", view.captured_at)],
    )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Human rendering (the `repro monitor` health table).
# ---------------------------------------------------------------------------


def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    out = [fmt(headers), fmt(["-" * w for w in widths])]
    out.extend(fmt(row) for row in rows)
    return "\n".join(out)


def render_health_table(
    view: ClusterView,
    report: AuditReport,
    flight: Optional[dict] = None,
) -> str:
    """Render one poll as the monitor CLI's health table + verdict.

    *flight*, when given, maps node ids to flight-recorder stats (the
    ``/flightrec`` endpoint's payload) and adds a last-seq column.
    """

    def flight_cell(node_id) -> str:
        if flight is None:
            return "-"
        stats = flight.get(str(node_id), flight.get(node_id))
        if not stats:
            return "-"
        cell = f"seq={stats.get('last_seq', 0)}"
        if stats.get("dropped"):
            cell += f" dropped={stats['dropped']}"
        return cell

    rows: List[List[str]] = []
    for node in view.nodes:
        if not node.alive:
            row = [str(node.node), "DOWN", "-", "-", "-", "-", "-", "-"]
            if flight is not None:
                row.append(flight_cell(node.node))
            rows.append(row)
            continue
        view_cell = "-"
        if node.recovery is not None:
            view_cell = (
                f"e{node.recovery.view_epoch}"
                f"/{len(node.recovery.view_members)}n"
            )
        tokens = sorted(
            str(snap.lock) for snap in node.locks if snap.believes_token
        )
        held = sorted(
            f"{snap.lock}:{mode}x{count}"
            for snap in node.locks
            for mode, count in snap.held
        )
        queued = sum(len(snap.queue) for snap in node.locks)
        frozen = sum(len(snap.frozen) for snap in node.locks)
        recovery = "-"
        if node.recovery is not None:
            suspected = ",".join(str(p) for p in node.recovery.suspected)
            recovery = (
                f"boot={node.recovery.boot} "
                f"backlog={node.recovery.channel_backlog}"
            )
            if suspected:
                recovery += f" suspects=[{suspected}]"
            durability = node.recovery.durability
            if durability is not None:
                recovery += (
                    f" wal={durability.get('appends', 0)}a"
                    f"/{durability.get('compactions', 0)}c"
                )
            if node.recovery.custody_pending:
                pending = ",".join(
                    str(lock) for lock in node.recovery.custody_pending
                )
                recovery += f" fencing=[{pending}]"
            leases = node.recovery.leases
            if leases is not None:
                recovery += (
                    f" leases={len(leases.get('own', ()))}o"
                    f"/{len(leases.get('remote', ()))}r"
                )
                if leases.get("revoked"):
                    recovery += f" revoked={leases['revoked']}"
                if leases.get("reclaimed"):
                    recovery += f" reclaimed={leases['reclaimed']}"
                if leases.get("fenced"):
                    recovery += " FENCED"
        row = [
            str(node.node),
            "up",
            view_cell,
            ",".join(tokens) if tokens else "-",
            ",".join(held) if held else "-",
            str(queued),
            str(frozen),
            recovery,
        ]
        if flight is not None:
            row.append(flight_cell(node.node))
        rows.append(row)
    headers = ["node", "state", "view", "tokens", "held", "queued",
               "frozen", "recovery"]
    if flight is not None:
        headers.append("flight")
    lines = [
        f"cluster: protocol={view.protocol} t={view.captured_at:.3f} "
        f"nodes={len(view.nodes)} locks={len(view.lock_ids())}",
        _table(headers, rows),
        f"audit: {report.verdict()}",
    ]
    for finding in report.findings:
        lines.append(f"  {finding}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The background HTTP endpoint.
# ---------------------------------------------------------------------------


class MonitorServer:
    """Serves live metrics and cluster views for one :class:`LiveMonitor`.

    Binds ``host:port`` (port 0 = ephemeral; read :attr:`port` after
    construction), answers from daemon threads, and never touches the
    cluster except through the monitor's poll — which is a pure read.
    """

    def __init__(
        self,
        monitor: LiveMonitor,
        observer=None,
        host: str = "127.0.0.1",
        port: int = 0,
        flight=None,
    ) -> None:
        self._monitor = monitor
        self._observer = observer
        #: Optional node→FlightRecorder mapping served at ``/flightrec``.
        self._flight = flight
        self._thread: Optional[threading.Thread] = None

        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    status, content_type, body = server._respond(self.path)
                except Exception as exc:  # pragma: no cover - last resort
                    status, content_type = 500, "text/plain; charset=utf-8"
                    body = f"internal error: {exc}\n".encode()
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # Silence stderr chatter.
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True

    # -- request handling --------------------------------------------------

    def _respond(self, path: str) -> Tuple[int, str, bytes]:
        path = path.split("?", 1)[0]
        if path == "/metrics":
            view, report = self._monitor.poll()
            body = render_prometheus(view, report, self._observer)
            return 200, "text/plain; version=0.0.4; charset=utf-8", body.encode()
        if path == "/cluster":
            view, report = self._monitor.poll()
            payload = {"view": view.to_payload(), "audit": report.to_payload()}
            return (
                200,
                "application/json; charset=utf-8",
                (json.dumps(payload, indent=2) + "\n").encode(),
            )
        if path == "/healthz":
            _view, report = self._monitor.poll()
            if report.ok:
                return 200, "text/plain; charset=utf-8", b"ok\n"
            return 503, "text/plain; charset=utf-8", b"unhealthy\n"
        if path == "/flightrec":
            if self._flight is None:
                return (
                    404,
                    "text/plain; charset=utf-8",
                    b"flight recording not enabled\n",
                )
            payload = {
                str(node): recorder.stats()
                for node, recorder in sorted(self._flight.items())
            }
            return (
                200,
                "application/json; charset=utf-8",
                (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(),
            )
        return 404, "text/plain; charset=utf-8", b"not found\n"

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port."""

        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint."""

        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve from a daemon thread."""

        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-monitor-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop serving and join the thread."""

        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MonitorServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

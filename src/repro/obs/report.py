"""Text-table reporting over reloaded run traces (`repro report`).

Renders, per run section of a JSONL trace file:

* **per-phase latency percentiles** — each lifecycle segment a request
  can spend time in (issue→grant, enqueue→grant, freeze→grant,
  grant→release) summarized over all completed spans;
* **Fig. 7-style message breakdown** — wire messages by type, with
  per-request averages using the run's recorded request count;
* **causal chains** — hop-count histogram, critical-path-length
  percentiles and a latency-by-segment decomposition (transit /
  queue-wait / freeze-wait / recovery-stall) over every granted
  request's traced chain, plus per-request waterfalls for the slowest
  grants (see docs/TRACING.md for the reading guide);
* **fault / recovery activity** — injector actions and recovery events
  (suspects, retransmissions, token regenerations) when recorded;
* **queue-depth timeline** — the windowed gauge as (time, mean, max)
  rows, condensed to a bounded number of lines;
* engine throughput and wire-level sections when the corresponding
  series were recorded.

Everything is plain text for terminals and log files; no plotting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.stats import summarize
from .export import RunTrace
from .series import GaugeSeries
from .sink import ENQUEUED, FROZEN, GRANTED, ISSUED, RELEASED
from .spans import RequestSpan
from .tracing import PATH_SEGMENTS, TraceChain, critical_path

#: Lifecycle segments reported, as (label, start_phase, end_phase).
SEGMENTS: Tuple[Tuple[str, str, str], ...] = (
    ("issued->granted", ISSUED, GRANTED),
    ("issued->enqueued", ISSUED, ENQUEUED),
    ("enqueued->granted", ENQUEUED, GRANTED),
    ("frozen->granted", FROZEN, GRANTED),
    ("granted->released", GRANTED, RELEASED),
)

#: Longest timeline rendered before adjacent windows get merged.
MAX_TIMELINE_ROWS = 40

#: Slowest granted chains rendered as waterfalls by default.
DEFAULT_WATERFALLS = 3


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a padded text table (first column left-aligned)."""

    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _phase_rows(spans: Sequence[RequestSpan]) -> List[List[str]]:
    rows: List[List[str]] = []
    for label, start, end in SEGMENTS:
        samples = [w for s in spans if (w := s.wait(start, end)) is not None]
        if not samples:
            continue
        stats = summarize(samples)
        rows.append(
            [
                label,
                str(stats.count),
                f"{stats.mean:.4f}",
                f"{stats.p50:.4f}",
                f"{stats.p95:.4f}",
                f"{stats.maximum:.4f}",
            ]
        )
    return rows


def _message_rows(run: RunTrace) -> List[List[str]]:
    totals = run.message_totals()
    if not totals:
        return []
    requests = run.requests
    grand_total = sum(totals.values())
    rows = []
    for label, count in sorted(totals.items(), key=lambda kv: -kv[1]):
        per_request = count / requests if requests else 0.0
        share = 100.0 * count / grand_total if grand_total else 0.0
        rows.append([label, str(count), f"{per_request:.3f}", f"{share:.1f}%"])
    per_request = grand_total / requests if requests else 0.0
    rows.append(["TOTAL", str(grand_total), f"{per_request:.3f}", "100.0%"])
    return rows


def _condense(
    timeline: List[Tuple[float, float, float]], max_rows: int
) -> List[Tuple[float, float, float]]:
    """Merge adjacent windows until at most *max_rows* remain."""

    if len(timeline) <= max_rows:
        return timeline
    stride = -(-len(timeline) // max_rows)  # ceil division
    merged: List[Tuple[float, float, float]] = []
    for start in range(0, len(timeline), stride):
        chunk = timeline[start : start + stride]
        mean = sum(row[1] for row in chunk) / len(chunk)
        peak = max(row[2] for row in chunk)
        merged.append((chunk[0][0], mean, peak))
    return merged


def _timeline_rows(gauge: GaugeSeries) -> List[List[str]]:
    return [
        [f"{time:.1f}", f"{mean:.2f}", f"{peak:.0f}"]
        for time, mean, peak in _condense(gauge.timeline(), MAX_TIMELINE_ROWS)
    ]


def _frozen_lookup(run: RunTrace) -> Dict[str, float]:
    """Span-key → freeze timestamp, for chain critical paths."""

    frozen: Dict[str, float] = {}
    for span in run.spans:
        if span.key is None:
            continue
        at = span.time_of(FROZEN)
        if at is not None:
            frozen[span.key] = at
    return frozen


def _quantile(ordered: List[float], q: float) -> float:
    """Nearest-rank quantile of an ascending-sorted sample."""

    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _chain_rows(run: RunTrace) -> List[str]:
    """The causal-chain aggregate section (histogram + percentiles +
    latency by critical-path segment)."""

    request_chains = [c for c in run.chains if c.kind == "request"]
    total_hops = sum(c.hop_count for c in run.chains)
    requests = run.requests
    mean_hops = total_hops / requests if requests else 0.0
    out: List[str] = []
    out.append(
        f"-- causal chains ({len(request_chains)} request chains, "
        f"{total_hops} hops, {mean_hops:.3f} hops/request) --"
    )

    histogram: Dict[int, int] = {}
    for chain in request_chains:
        histogram[chain.hop_count] = histogram.get(chain.hop_count, 0) + 1
    if histogram:
        out.append(
            _table(
                ["hops", "chains", "share"],
                [
                    [
                        str(hops),
                        str(count),
                        f"{100.0 * count / len(request_chains):.1f}%",
                    ]
                    for hops, count in sorted(histogram.items())
                ],
            )
        )

    frozen = _frozen_lookup(run)
    paths = []
    for chain in request_chains:
        decomposition = critical_path(
            chain, frozen_at=frozen.get(chain.span_key)
        )
        if decomposition is not None:
            paths.append(decomposition)
    if not paths:
        return out

    lengths = sorted(p["path_hops"] for p in paths)
    out.append("")
    out.append(
        f"-- critical paths ({len(paths)} granted chains) "
        f"length p50 {_quantile(lengths, 0.5):.0f} "
        f"p95 {_quantile(lengths, 0.95):.0f} "
        f"max {lengths[-1]:.0f} --"
    )
    grand_total = sum(p["total"] for p in paths)
    rows = []
    for name in PATH_SEGMENTS:
        samples = sorted(p["segments"][name] for p in paths)
        seg_total = sum(samples)
        share = 100.0 * seg_total / grand_total if grand_total else 0.0
        rows.append(
            [
                name,
                f"{seg_total / len(samples):.4f}",
                f"{_quantile(samples, 0.5):.4f}",
                f"{_quantile(samples, 0.95):.4f}",
                f"{share:.1f}%",
            ]
        )
    rows.append(
        [
            "TOTAL",
            f"{grand_total / len(paths):.4f}",
            "",
            "",
            "100.0%",
        ]
    )
    out.append(_table(["segment", "mean", "p50", "p95", "share"], rows))
    return out


def _waterfall(chain: TraceChain) -> str:
    """Per-request waterfall: one row per hop, parent-linked."""

    rows: List[List[str]] = []
    for hop in chain.hops:
        transit = (
            f"{hop.recv_at - hop.sent_at:.4f}"
            if hop.sent_at is not None and hop.recv_at is not None
            else "-"
        )
        note = hop.kind if hop.kind != "send" else ""
        if hop.duplicates:
            note = (note + f" dup×{hop.duplicates}").strip()
        rows.append(
            [
                f"{hop.hop}",
                f"{hop.parent}",
                f"{hop.sender}->{hop.dest}",
                hop.label,
                f"{hop.sent_at - chain.issued_at:.4f}"
                if hop.sent_at is not None
                else "-",
                transit,
                note,
            ]
        )
    latency = (
        f"{chain.granted_at - chain.issued_at:.4f}s"
        if chain.granted_at is not None
        else "ungranted"
    )
    header = (
        f"trace {chain.trace_id} (origin {chain.origin}, "
        f"lock {chain.lock!r}, {latency})"
    )
    return header + "\n" + _table(
        ["hop", "par", "link", "message", "+sent", "transit", "note"], rows
    )


def _fault_rows(run: RunTrace) -> List[List[str]]:
    counter = run.counters.get("faults")
    if counter is None:
        return []
    return [
        [kind, str(count)]
        for kind, count in sorted(
            counter.totals().items(), key=lambda kv: -kv[1]
        )
    ]


def _meta_line(run: RunTrace) -> str:
    parts = []
    for key in ("protocol", "nodes", "ops", "seed", "requests", "sim_time"):
        value = run.meta.get(key)
        if value is not None:
            parts.append(f"{key}={value}")
    return "  ".join(parts)


def render_run(run: RunTrace, waterfalls: int = DEFAULT_WATERFALLS) -> str:
    """Render the full report for one run section.

    *waterfalls* bounds the number of per-request hop waterfalls shown
    (slowest granted chains first); 0 disables them.
    """

    out: List[str] = []
    out.append(f"== {run.label} ==")
    meta = _meta_line(run)
    if meta:
        out.append(meta)

    completed = [s for s in run.spans if s.granted_at is not None]
    out.append("")
    out.append(f"-- request phases ({len(completed)} completed spans) --")
    phase_rows = _phase_rows(run.spans)
    if phase_rows:
        out.append(
            _table(["segment", "n", "mean", "p50", "p95", "max"], phase_rows)
        )
    else:
        out.append("(no spans recorded)")

    message_rows = _message_rows(run)
    out.append("")
    out.append(f"-- message breakdown (per {run.requests} requests) --")
    if message_rows:
        out.append(
            _table(["message", "count", "msgs/req", "share"], message_rows)
        )
    else:
        out.append("(no messages recorded)")

    if run.chains:
        out.append("")
        out.extend(_chain_rows(run))
        granted = [
            chain
            for chain in run.chains
            if chain.kind == "request" and chain.granted_at is not None
        ]
        granted.sort(key=lambda c: c.granted_at - c.issued_at, reverse=True)
        for chain in granted[:waterfalls]:
            out.append("")
            out.append(_waterfall(chain))

    fault_rows = _fault_rows(run)
    if fault_rows:
        out.append("")
        out.append("-- fault / recovery activity --")
        out.append(_table(["event", "count"], fault_rows))

    queue = run.gauges.get("queue_depth")
    if queue is not None:
        out.append("")
        out.append(f"-- queue depth timeline (peak {queue.peak():.0f}) --")
        out.append(_table(["t", "mean", "max"], _timeline_rows(queue)))

    for name, title in (
        ("copyset_size", "copyset size"),
        ("freeze_size", "freeze occupancy"),
    ):
        gauge = run.gauges.get(name)
        if gauge is not None:
            out.append("")
            out.append(f"-- {title} (peak {gauge.peak():.0f}) --")
            out.append(_table(["t", "mean", "max"], _timeline_rows(gauge)))

    engine = run.counters.get("engine_events")
    if engine is not None:
        rows = engine.items()
        total = engine.total()
        span_seconds = (
            rows[-1][0] - rows[0][0] + engine.window if rows else 0.0
        )
        rate = total / span_seconds if span_seconds > 0 else 0.0
        out.append("")
        out.append(
            f"-- engine: {total} events over {span_seconds:.1f}s "
            f"({rate:.0f} events/s) --"
        )

    wire = run.counters.get("wire_bytes")
    latency = run.histograms.get("send_latency")
    if wire is not None or latency is not None:
        out.append("")
        sent = wire.total("sent") if wire is not None else 0
        received = wire.total("received") if wire is not None else 0
        line = f"-- wire: {sent} B sent, {received} B received"
        if latency is not None and latency.count:
            line += (
                f"; send latency mean {latency.mean * 1e6:.1f}us"
                f" p95 {latency.quantile(0.95) * 1e6:.1f}us"
            )
        out.append(line + " --")

    return "\n".join(out)


def render_report(
    runs: Sequence[RunTrace], waterfalls: int = DEFAULT_WATERFALLS
) -> str:
    """Render every run section of a trace file."""

    if not runs:
        return "(empty trace: no run sections found)"
    return "\n\n".join(render_run(run, waterfalls=waterfalls) for run in runs)


def report_payload(run: RunTrace) -> Dict[str, object]:
    """Machine-readable twin of :func:`render_run` (``report --json``).

    Same aggregates, as a JSON-friendly dict — nightly-chaos artifacts
    and dashboards consume this instead of scraping text tables.
    """

    completed = [s for s in run.spans if s.granted_at is not None]
    phases: Dict[str, object] = {}
    for label, start, end in SEGMENTS:
        samples = [w for s in run.spans if (w := s.wait(start, end)) is not None]
        if not samples:
            continue
        stats = summarize(samples)
        phases[label] = {
            "n": stats.count,
            "mean": stats.mean,
            "p50": stats.p50,
            "p95": stats.p95,
            "max": stats.maximum,
        }

    totals = run.message_totals()
    grand_total = sum(totals.values())
    requests = run.requests

    request_chains = [c for c in run.chains if c.kind == "request"]
    total_hops = sum(c.hop_count for c in run.chains)
    chains: Dict[str, object] = {
        "request_chains": len(request_chains),
        "total_hops": total_hops,
        "hops_per_request": total_hops / requests if requests else 0.0,
    }

    faults_counter = run.counters.get("faults")
    payload: Dict[str, object] = {
        "label": run.label,
        "meta": dict(run.meta),
        "requests": requests,
        "spans": {"total": len(run.spans), "completed": len(completed)},
        "phases": phases,
        "messages": {
            "by_type": dict(sorted(totals.items())),
            "total": grand_total,
            "per_request": grand_total / requests if requests else 0.0,
        },
        "chains": chains,
        "faults": (
            dict(sorted(faults_counter.totals().items()))
            if faults_counter is not None
            else {}
        ),
        "gauges": {
            name: {"peak": gauge.peak()}
            for name, gauge in run.gauges.items()
        },
    }
    wire = run.counters.get("wire_bytes")
    latency = run.histograms.get("send_latency")
    if wire is not None or latency is not None:
        payload["wire"] = {
            "bytes_sent": wire.total("sent") if wire is not None else 0,
            "bytes_received": (
                wire.total("received") if wire is not None else 0
            ),
            "send_latency_mean": latency.mean if latency is not None else None,
            "send_latency_p95": (
                latency.quantile(0.95) if latency is not None else None
            ),
        }
    return payload

"""Unified observability: request spans, time series, export, reporting.

Layer map::

    sink.py     ObsSink hook surface (base class == null sink)
    spans.py    RequestSpan lifecycle records
    series.py   WindowedCounter / GaugeSeries / Histogram primitives
    collect.py  RunObserver — the concrete collector
    tracing.py  causal hop tracing and critical-path attribution
    export.py   JSONL writer/loader (extends verification/trace format)
    report.py   text-table rendering for `python -m repro report`
    live.py     cluster snapshots + online invariant audit
    monitor.py  Prometheus/JSON HTTP endpoint + health-table rendering

Instrumented components hold an ``obs`` attribute that is ``None`` by
default and guard every hook call with ``if self.obs is not None`` — the
zero-cost contract that keeps benchmarks honest.
"""

from .collect import RunObserver
from .export import RunTrace, load_runs, load_runs_from_path, write_run
from .live import (
    AuditFinding,
    AuditReport,
    ClusterView,
    LiveMonitor,
    LockSnapshot,
    NodeSnapshot,
    QueueEntry,
    RecoveryHealth,
    audit_view,
    snapshot_node,
)
from .monitor import MonitorServer, render_health_table, render_prometheus
from .report import render_report, render_run
from .series import DEFAULT_WINDOW, GaugeSeries, Histogram, WindowedCounter
from .sink import (
    ENQUEUED,
    FROZEN,
    GRANTED,
    ISSUED,
    NULL_SINK,
    PHASES,
    RELEASED,
    ObsSink,
    SpanKey,
)
from .spans import RequestSpan
from .tracing import (
    Hop,
    MessageTracer,
    TraceChain,
    canonical_span_key,
    critical_path,
)

__all__ = [
    "DEFAULT_WINDOW",
    "ENQUEUED",
    "FROZEN",
    "GRANTED",
    "ISSUED",
    "NULL_SINK",
    "PHASES",
    "RELEASED",
    "AuditFinding",
    "AuditReport",
    "ClusterView",
    "GaugeSeries",
    "Histogram",
    "Hop",
    "LiveMonitor",
    "LockSnapshot",
    "MessageTracer",
    "MonitorServer",
    "NodeSnapshot",
    "ObsSink",
    "QueueEntry",
    "RecoveryHealth",
    "RequestSpan",
    "RunObserver",
    "RunTrace",
    "SpanKey",
    "TraceChain",
    "WindowedCounter",
    "audit_view",
    "canonical_span_key",
    "critical_path",
    "load_runs",
    "load_runs_from_path",
    "render_health_table",
    "render_prometheus",
    "render_report",
    "render_run",
    "snapshot_node",
    "write_run",
]

"""Unified observability: request spans, time series, export, reporting.

Layer map::

    sink.py     ObsSink hook surface (base class == null sink)
    spans.py    RequestSpan lifecycle records
    series.py   WindowedCounter / GaugeSeries / Histogram primitives
    collect.py  RunObserver — the concrete collector
    tracing.py  causal hop tracing and critical-path attribution
    export.py   JSONL writer/loader (extends verification/trace format)
    report.py   text-table rendering for `python -m repro report`

Instrumented components hold an ``obs`` attribute that is ``None`` by
default and guard every hook call with ``if self.obs is not None`` — the
zero-cost contract that keeps benchmarks honest.
"""

from .collect import RunObserver
from .export import RunTrace, load_runs, load_runs_from_path, write_run
from .report import render_report, render_run
from .series import DEFAULT_WINDOW, GaugeSeries, Histogram, WindowedCounter
from .sink import (
    ENQUEUED,
    FROZEN,
    GRANTED,
    ISSUED,
    NULL_SINK,
    PHASES,
    RELEASED,
    ObsSink,
    SpanKey,
)
from .spans import RequestSpan
from .tracing import (
    Hop,
    MessageTracer,
    TraceChain,
    canonical_span_key,
    critical_path,
)

__all__ = [
    "DEFAULT_WINDOW",
    "ENQUEUED",
    "FROZEN",
    "GRANTED",
    "ISSUED",
    "NULL_SINK",
    "PHASES",
    "RELEASED",
    "GaugeSeries",
    "Histogram",
    "Hop",
    "MessageTracer",
    "ObsSink",
    "RequestSpan",
    "RunObserver",
    "RunTrace",
    "SpanKey",
    "TraceChain",
    "WindowedCounter",
    "canonical_span_key",
    "critical_path",
    "load_runs",
    "load_runs_from_path",
    "render_report",
    "render_run",
    "write_run",
]

"""JSONL export and reload for observed runs.

The on-disk format extends :mod:`repro.verification.trace`'s JSON-lines
convention — every line is one JSON object with a ``cat`` discriminator —
with three new categories:

``{"cat": "run", "meta": {...}}``
    Starts a run section.  ``meta`` carries run identity (protocol,
    nodes, seed) plus run-level aggregates recorded at dump time, most
    importantly ``requests`` (the metrics layer's request count, the
    denominator for per-request figures) and ``messages_by_type``.

``{"cat": "span", "span": {...}}``
    One request-lifecycle span (:meth:`repro.obs.spans.RequestSpan.to_payload`).

``{"cat": "series", "name": ..., "series": {...}}``
    One named time series (counter / gauge / histogram payload).

``{"cat": "chain", "chain": {...}}``
    One causal chain of hop records
    (:meth:`repro.obs.tracing.TraceChain.to_payload`).

Classic trace events (``cat`` of request/grant/release/message) may be
interleaved in the same file; the loader keeps them as raw dicts on the
owning :class:`RunTrace`.  A file may contain several run sections —
``fig5 --trace-out run.jsonl`` writes one per protocol — and
:func:`load_runs` returns them in order.
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO, Dict, List, Optional

from .collect import RunObserver
from .series import GaugeSeries, Histogram, WindowedCounter, series_from_payload
from .spans import RequestSpan
from .tracing import TraceChain

#: New line categories introduced by this module.
RUN, SPAN, SERIES, CHAIN = "run", "span", "series", "chain"


@dataclasses.dataclass
class RunTrace:
    """One reloaded run section of a JSONL trace file."""

    meta: Dict[str, object] = dataclasses.field(default_factory=dict)
    spans: List[RequestSpan] = dataclasses.field(default_factory=list)
    counters: Dict[str, WindowedCounter] = dataclasses.field(default_factory=dict)
    gauges: Dict[str, GaugeSeries] = dataclasses.field(default_factory=dict)
    histograms: Dict[str, Histogram] = dataclasses.field(default_factory=dict)
    #: Causal chains recorded by the message tracer, in mint order.
    chains: List[TraceChain] = dataclasses.field(default_factory=list)
    #: Raw classic trace events (cat request/grant/release/message), if any.
    events: List[Dict[str, object]] = dataclasses.field(default_factory=list)

    @property
    def label(self) -> str:
        """Human name of the run (protocol plus size when known)."""

        name = str(self.meta.get("label") or self.meta.get("protocol") or "run")
        nodes = self.meta.get("nodes")
        return f"{name} ({nodes} nodes)" if nodes else name

    @property
    def requests(self) -> int:
        """Per-request denominator: the metrics layer's request count when
        the writer recorded one, else the number of granted spans."""

        recorded = self.meta.get("requests")
        if isinstance(recorded, int) and recorded > 0:
            return recorded
        return sum(1 for span in self.spans if span.granted_at is not None)

    def message_totals(self) -> Dict[str, int]:
        """Wire messages by type over the whole run.

        Matches ``MetricsCollector.message_overhead_by_type`` numerators
        because the observability hook sits at the same network-observer
        point the metrics counter does.
        """

        counter = self.counters.get("messages")
        return counter.totals() if counter is not None else {}


def write_run(
    stream: IO[str],
    observer: RunObserver,
    meta: Optional[Dict[str, object]] = None,
) -> int:
    """Append one run section to *stream*; returns lines written."""

    lines = 0

    def emit(payload: Dict[str, object]) -> None:
        nonlocal lines
        stream.write(json.dumps(payload))
        stream.write("\n")
        lines += 1

    emit({"cat": RUN, "meta": dict(meta or {})})
    for span in observer.spans:
        emit({"cat": SPAN, "span": span.to_payload()})
    for name, series in observer.counters().items():
        emit({"cat": SERIES, "name": name, "series": series.to_payload()})
    for name, series in observer.gauges().items():
        emit({"cat": SERIES, "name": name, "series": series.to_payload()})
    for name, series in observer.histograms().items():
        emit({"cat": SERIES, "name": name, "series": series.to_payload()})
    tracer = getattr(observer, "tracer", None)
    if tracer is not None:
        for chain in tracer.chains():
            emit({"cat": CHAIN, "chain": chain.to_payload()})
    return lines


def load_runs(stream: IO[str]) -> List[RunTrace]:
    """Read every run section (and stray trace events) from *stream*."""

    runs: List[RunTrace] = []

    def current() -> RunTrace:
        if not runs:
            runs.append(RunTrace())
        return runs[-1]

    for line in stream:
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        category = raw.get("cat")
        if category == RUN:
            runs.append(RunTrace(meta=dict(raw.get("meta") or {})))
        elif category == SPAN:
            current().spans.append(RequestSpan.from_payload(raw["span"]))
        elif category == CHAIN:
            current().chains.append(TraceChain.from_payload(raw["chain"]))
        elif category == SERIES:
            series = series_from_payload(raw["series"])
            name = raw.get("name", "series")
            run = current()
            if isinstance(series, WindowedCounter):
                run.counters[name] = series
            elif isinstance(series, GaugeSeries):
                run.gauges[name] = series
            else:
                run.histograms[name] = series
        else:
            # Classic verification/trace.py event — keep it raw.
            current().events.append(raw)
    return runs


def load_runs_from_path(path: str) -> List[RunTrace]:
    """Convenience wrapper for CLI callers."""

    with open(path, "r", encoding="utf-8") as stream:
        return load_runs(stream)

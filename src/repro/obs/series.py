"""Windowed time-series primitives: counters, gauges and histograms.

Run-level aggregates (what :class:`~repro.metrics.MetricsCollector`
keeps) answer *how much*; these answer *when*.  All three classes bucket
by fixed-width time windows so a long run serializes to a bounded number
of rows regardless of event count.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Tuple

#: Default bucketing window (simulated seconds for sim runs).
DEFAULT_WINDOW = 1.0


class WindowedCounter:
    """Monotonic counts by label, bucketed into fixed time windows.

    Used for wire messages by type, bytes on wire, per-peer traffic and
    engine events — anything that accumulates.
    """

    def __init__(
        self,
        window: float = DEFAULT_WINDOW,
        max_buckets: Optional[int] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if max_buckets is not None and max_buckets < 1:
            raise ValueError("max_buckets must be positive")
        self.window = window
        #: Ring-buffer cap on retained windows (``None`` = unbounded).
        #: Evicted windows fold into :attr:`evicted` so run-level sums
        #: (``total``/``totals``) stay exact; only ``items`` rows age out.
        self.max_buckets = max_buckets
        self._buckets: Dict[int, Counter] = {}
        self._evicted: Counter = Counter()
        self.evicted_buckets = 0

    def add(self, time: float, label: str, value: int = 1) -> None:
        """Count *value* occurrences of *label* at *time*."""

        bucket = self._buckets.setdefault(int(time // self.window), Counter())
        bucket[label] += value
        if self.max_buckets is not None:
            while len(self._buckets) > self.max_buckets:
                oldest = min(self._buckets)
                self._evicted.update(self._buckets.pop(oldest))
                self.evicted_buckets += 1

    def total(self, label: Optional[str] = None) -> int:
        """Sum over all windows, for one label or all of them."""

        if label is None:
            return sum(self._evicted.values()) + sum(
                sum(c.values()) for c in self._buckets.values()
            )
        return self._evicted.get(label, 0) + sum(
            c.get(label, 0) for c in self._buckets.values()
        )

    def totals(self) -> Dict[str, int]:
        """Per-label sums over the whole run (Figure 7's numerators)."""

        merged: Counter = Counter(self._evicted)
        for bucket in self._buckets.values():
            merged.update(bucket)
        return dict(sorted(merged.items()))

    def labels(self) -> List[str]:
        """Every label seen, sorted."""

        return sorted(self.totals())

    def items(self) -> List[Tuple[float, Dict[str, int]]]:
        """``(window_start_time, {label: count})`` rows, time-ordered."""

        return [
            (index * self.window, dict(sorted(bucket.items())))
            for index, bucket in sorted(self._buckets.items())
        ]

    def __bool__(self) -> bool:
        return bool(self._buckets) or bool(self._evicted)

    # -- serialization ---------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "type": "counter",
            "window": self.window,
            "buckets": {
                str(index): dict(bucket)
                for index, bucket in sorted(self._buckets.items())
            },
        }
        if self._evicted:
            payload["evicted"] = dict(sorted(self._evicted.items()))
        return payload

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "WindowedCounter":
        series = WindowedCounter(window=payload["window"])
        for index, bucket in payload["buckets"].items():
            series._buckets[int(index)] = Counter(bucket)
        series._evicted = Counter(payload.get("evicted", {}))
        return series


class GaugeSeries:
    """Windowed samples of an instantaneous gauge (queue depth, copyset
    size, freeze occupancy): per window keeps count, sum and max."""

    def __init__(
        self,
        window: float = DEFAULT_WINDOW,
        max_buckets: Optional[int] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if max_buckets is not None and max_buckets < 1:
            raise ValueError("max_buckets must be positive")
        self.window = window
        #: Ring-buffer cap on retained windows (``None`` = unbounded);
        #: :meth:`peak` stays whole-run exact, timeline rows age out.
        self.max_buckets = max_buckets
        # bucket index → [sample_count, sample_sum, sample_max]
        self._buckets: Dict[int, List[float]] = {}
        self._evicted_peak = 0.0
        self.evicted_buckets = 0

    def sample(self, time: float, value: float) -> None:
        """Record one observation of the gauge at *time*."""

        index = int(time // self.window)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = [1, value, value]
            if self.max_buckets is not None:
                while len(self._buckets) > self.max_buckets:
                    oldest = min(self._buckets)
                    dropped = self._buckets.pop(oldest)
                    if dropped[2] > self._evicted_peak:
                        self._evicted_peak = dropped[2]
                    self.evicted_buckets += 1
        else:
            bucket[0] += 1
            bucket[1] += value
            if value > bucket[2]:
                bucket[2] = value

    def timeline(self) -> List[Tuple[float, float, float]]:
        """``(window_start_time, mean, max)`` rows, time-ordered."""

        return [
            (index * self.window, total / count, maximum)
            for index, (count, total, maximum) in sorted(self._buckets.items())
        ]

    def peak(self) -> float:
        """Largest value ever sampled (0.0 when empty)."""

        retained = max((b[2] for b in self._buckets.values()), default=0.0)
        return max(retained, self._evicted_peak)

    def __bool__(self) -> bool:
        return bool(self._buckets) or self.evicted_buckets > 0

    # -- serialization ---------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        return {
            "type": "gauge",
            "window": self.window,
            "buckets": {
                str(index): list(bucket)
                for index, bucket in sorted(self._buckets.items())
            },
        }

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "GaugeSeries":
        series = GaugeSeries(window=payload["window"])
        for index, bucket in payload["buckets"].items():
            series._buckets[int(index)] = list(bucket)
        return series


class Histogram:
    """Log₂-bucketed histogram for strictly positive samples (latencies,
    frame sizes).  Bucket *i* covers ``[2^i, 2^(i+1))`` scaled by
    ``resolution``; all mass below ``resolution`` lands in bucket 0."""

    def __init__(self, resolution: float = 1e-6) -> None:
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        self._buckets: Counter = Counter()
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0

    def record(self, value: float) -> None:
        """Add one sample (negative samples are clamped to zero)."""

        value = max(0.0, value)
        index = (
            0
            if value < self.resolution
            else int(math.log2(value / self.resolution)) + 1
        )
        self._buckets[index] += 1
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of all recorded samples (0.0 when empty)."""

        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Upper edge of the bucket holding the *fraction* quantile."""

        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = fraction * self.count
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return self.resolution * (2.0 ** index)
        return self.maximum

    def __bool__(self) -> bool:
        return self.count > 0

    # -- serialization ---------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "resolution": self.resolution,
            "count": self.count,
            "total": self.total,
            "max": self.maximum,
            "buckets": {
                str(index): count
                for index, count in sorted(self._buckets.items())
            },
        }

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "Histogram":
        histogram = Histogram(resolution=payload["resolution"])
        histogram.count = payload["count"]
        histogram.total = payload["total"]
        histogram.maximum = payload["max"]
        for index, count in payload["buckets"].items():
            histogram._buckets[int(index)] = count
        return histogram


#: Payload ``type`` tag → deserializer, for the JSONL loader.
SERIES_TYPES = {
    "counter": WindowedCounter.from_payload,
    "gauge": GaugeSeries.from_payload,
    "histogram": Histogram.from_payload,
}


def series_from_payload(payload: Dict[str, object]):
    """Rebuild any series class from its :meth:`to_payload` output."""

    loader = SERIES_TYPES.get(payload.get("type"))
    if loader is None:
        raise ValueError(f"unknown series type {payload.get('type')!r}")
    return loader(payload)

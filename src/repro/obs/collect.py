"""The concrete observability collector: spans + time series for one run.

A :class:`RunObserver` is an :class:`~repro.obs.sink.ObsSink` that owns a
clock (the simulator's virtual ``now`` or a wall clock) and materializes
everything the hooks emit:

* request-lifecycle **spans** (issue → enqueue → freeze → grant →
  release), keyed by the protocol's span key while in flight and matched
  to releases by (node, lock, mode) afterwards;
* windowed **series** — messages by type, per-peer traffic, queue depth,
  copyset size, freeze occupancy, engine events/sec, bytes on wire — and
  a send-latency histogram for real transports.

One observer instance serves a whole cluster (every automaton, the
network and the engine share it), which is what makes cross-layer
correlation by timestamp possible.  A mutex makes it safe for the
threaded transports; the simulator path never contends.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.messages import LockId, NodeId
from ..core.modes import LockMode
from .series import (
    DEFAULT_WINDOW,
    GaugeSeries,
    Histogram,
    WindowedCounter,
)
from .sink import GRANTED, RELEASED, ObsSink, SpanKey
from .spans import RequestSpan
from .tracing import MessageTracer, canonical_span_key

#: ``() -> float`` time source; the simulator's ``lambda: sim.now`` or a
#: monotonic wall clock.
Clock = Callable[[], float]


class RunObserver(ObsSink):
    """Collects spans and time series for one run."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        window: float = DEFAULT_WINDOW,
        tracing: bool = True,
        max_buckets: Optional[int] = None,
        max_spans: Optional[int] = None,
    ) -> None:
        self._clock_rebindable = clock is None
        if clock is None:
            start = _time.monotonic()
            clock = lambda: _time.monotonic() - start  # noqa: E731
        self._clock = clock
        #: Causal message tracer, sharing this observer's clock; the
        #: transports pick it up via ``getattr(obs, "tracer", None)``.
        self.tracer: Optional[MessageTracer] = (
            MessageTracer(clock=lambda: self._clock()) if tracing else None
        )
        self._mutex = threading.Lock()
        #: Every span ever opened, in issue order (complete or not).
        #: ``max_spans`` turns this into a ring buffer (oldest spans age
        #: out) so long chaos sweeps stay memory-bounded; the default
        #: keeps everything, as the report renderer expects.
        self.max_spans = max_spans
        self.spans: List[RequestSpan] = (
            [] if max_spans is None else deque(maxlen=max_spans)
        )
        self._open: Dict[SpanKey, RequestSpan] = {}
        self._granted: Dict[Tuple[NodeId, LockId, str], Deque[RequestSpan]] = {}
        self.messages = WindowedCounter(window, max_buckets=max_buckets)
        self.peer_messages = WindowedCounter(window, max_buckets=max_buckets)
        self.wire_bytes = WindowedCounter(window, max_buckets=max_buckets)
        self.engine_events = WindowedCounter(window, max_buckets=max_buckets)
        self.queue_depth_series = GaugeSeries(window, max_buckets=max_buckets)
        self.copyset_series = GaugeSeries(window, max_buckets=max_buckets)
        self.freeze_series = GaugeSeries(window, max_buckets=max_buckets)
        self.send_latency = Histogram()
        self.faults = WindowedCounter(window, max_buckets=max_buckets)
        self.persist_events = WindowedCounter(window, max_buckets=max_buckets)
        self._last_engine_events = 0

    def bind_clock(self, clock: Clock) -> None:
        """Adopt a run's time source (e.g. ``sim.now``) before recording.

        Only takes effect when the observer was built with the default
        wall clock — an explicitly chosen clock is never overridden.
        """

        if self._clock_rebindable:
            self._clock = clock
            self._clock_rebindable = False

    # -- request lifecycle ------------------------------------------------

    def phase(
        self,
        node: NodeId,
        lock_id: LockId,
        key: Optional[SpanKey],
        phase: str,
        mode: Optional[LockMode] = None,
    ) -> None:
        now = self._clock()
        with self._mutex:
            if phase == RELEASED:
                self._close(node, lock_id, mode, now)
                return
            span = self._open.get(key)
            if span is None:
                kind = str(mode) if mode is not None else "?"
                span = RequestSpan(
                    node=node,
                    lock=lock_id,
                    kind=kind,
                    key=canonical_span_key(key),
                )
                self._open[key] = span
                self.spans.append(span)
            span.mark(phase, now)
            if phase == GRANTED:
                del self._open[key]
                slot = (span.node, span.lock, span.kind)
                self._granted.setdefault(slot, deque()).append(span)

    def _close(
        self,
        node: NodeId,
        lock_id: LockId,
        mode: Optional[LockMode],
        now: float,
    ) -> None:
        """Match a release to the oldest granted-unreleased span."""

        kind = str(mode) if mode is not None else "?"
        waiting = self._granted.get((node, lock_id, kind))
        if waiting:
            waiting.popleft().mark(RELEASED, now)

    # -- protocol gauges --------------------------------------------------

    def queue_depth(self, node: NodeId, lock_id: LockId, depth: int) -> None:
        self.queue_depth_series.sample(self._clock(), depth)

    def copyset_size(self, node: NodeId, lock_id: LockId, size: int) -> None:
        self.copyset_series.sample(self._clock(), size)

    def freeze_size(self, node: NodeId, lock_id: LockId, size: int) -> None:
        self.freeze_series.sample(self._clock(), size)

    # -- wire traffic -----------------------------------------------------

    def message(self, sender: NodeId, dest: NodeId, label: str) -> None:
        now = self._clock()
        with self._mutex:
            self.messages.add(now, label)
            self.peer_messages.add(now, f"{sender}->{dest}")

    def wire_sent(
        self, sender: NodeId, dest: NodeId, nbytes: int, seconds: float
    ) -> None:
        now = self._clock()
        with self._mutex:
            if nbytes:
                self.wire_bytes.add(now, "sent", nbytes)
            self.send_latency.record(seconds)

    def wire_received(self, node: NodeId, nbytes: int) -> None:
        if not nbytes:
            return
        now = self._clock()
        with self._mutex:
            self.wire_bytes.add(now, "received", nbytes)

    # -- faults and failures ----------------------------------------------

    def fault(self, kind: str, node: Optional[NodeId] = None) -> None:
        now = self._clock()
        with self._mutex:
            self.faults.add(now, kind)

    def peer_lost(self, node: NodeId, reason: str) -> None:
        now = self._clock()
        with self._mutex:
            self.faults.add(now, "peer_lost")

    # -- durability --------------------------------------------------------

    def persist_event(self, node: NodeId, kind: str) -> None:
        now = self._clock()
        with self._mutex:
            self.persist_events.add(now, kind)

    # -- engine -----------------------------------------------------------

    def engine_tick(self, now: float, events: int) -> None:
        delta = events - self._last_engine_events
        self._last_engine_events = events
        if delta > 0:
            self.engine_events.add(now, "events", delta)

    # -- exports ----------------------------------------------------------

    def completed_spans(self) -> List[RequestSpan]:
        """Spans that reached at least the granted phase."""

        return [span for span in self.spans if span.granted_at is not None]

    def counters(self) -> Dict[str, WindowedCounter]:
        """Non-empty windowed counters by canonical name."""

        named = {
            "messages": self.messages,
            "peer_messages": self.peer_messages,
            "wire_bytes": self.wire_bytes,
            "engine_events": self.engine_events,
            "faults": self.faults,
            "persist_events": self.persist_events,
        }
        return {name: series for name, series in named.items() if series}

    def gauges(self) -> Dict[str, GaugeSeries]:
        """Non-empty gauge series by canonical name."""

        named = {
            "queue_depth": self.queue_depth_series,
            "copyset_size": self.copyset_series,
            "freeze_size": self.freeze_series,
        }
        return {name: series for name, series in named.items() if series}

    def histograms(self) -> Dict[str, Histogram]:
        """Non-empty histograms by canonical name."""

        named = {"send_latency": self.send_latency}
        return {name: series for name, series in named.items() if series}

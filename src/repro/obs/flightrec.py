"""Flight recorder + deterministic time-travel replay debugger.

The three protocols are deterministic state machines: every transition is
caused by a delivered message, a local application call (acquire /
release / upgrade), or an explicit recovery hook — never by wall time or
randomness inside the automaton.  A complete per-node input log is
therefore a complete *explanation* of any state the node ever reached.
This module records that log and replays it:

* :class:`FlightRecorder` — a per-node black-box ring buffer.  Every
  automaton input is appended in delivery order with a monotonic
  per-node ``seq``; periodic state checkpoints (the node's full
  ``flight_state()``) bound replay cost and double as a determinism
  oracle.  Eviction is segment-granular — a segment always starts with a
  checkpoint — so the retained head of the ring is always replayable.
* Dump files — all ring buffers of a run serialized with the exact
  CRC framing of the durability WAL (:mod:`repro.persist.wal`), so torn
  tails and corrupt records are survivable here too.
* :class:`NodeReplayer` — reconstructs any node's state at any ``seq``
  by restoring the nearest checkpoint at or before it and re-applying
  the recorded inputs into fresh automata.  ``verify()`` replays the
  whole retained history and compares every recorded checkpoint
  bit-for-bit against the replayed state: any mismatch is a
  *nondeterminism finding* against the protocol stack itself.
* :func:`bisect_timeline` — merges every node's events into one global
  timeline and binary-searches for the first event after which a given
  :func:`repro.obs.live.audit_view` rule fires, turning a failed chaos
  verdict into a pinpointed first-bad-event.

Recording is ``None``-gated exactly like ``obs`` / ``persist``: an
automaton with ``flightrec = None`` pays one attribute test per public
entry point and the run stays bit-identical to an unrecorded one (no
extra messages, no RNG draws, no timestamps consumed).

The one non-local input the protocols have is the process-global request
serial counter (:mod:`repro.core.messages`): its values depend on the
interleaving of *all* nodes in the process, so they are not reproducible
from one node's log alone.  The recorder therefore captures every serial
the node draws (``serials`` on the causing event), and replay feeds the
recorded values back via :class:`_ReplayFeed` instead of the live
counter.

See docs/DEBUGGING.md for the workflow and ``python -m repro replay``
for the CLI.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..core.clock import LamportClock
from ..core.messages import (
    Envelope,
    FreezeMessage,
    GrantMessage,
    LockId,
    Message,
    NodeId,
    ReleaseMessage,
    RequestId,
    RequestMessage,
    TokenMessage,
    fresh_attachment_seq,
)
from ..core.modes import LockMode
from ..errors import LockUsageError, ProtocolError
from ..naimi.messages import NaimiRequestMessage, NaimiTokenMessage
from ..persist.wal import encode_frame, scan_frames
from ..raymond.messages import (
    RaymondPrivilegeMessage,
    RaymondRequestMessage,
)
from .live import AuditFinding, ClusterView, NodeSnapshot, audit_view

#: Dump format identity (first record of every dump file).
DUMP_FORMAT = "flightrec"
DUMP_VERSION = 1

#: Default ring capacity (events retained per node).
DEFAULT_CAPACITY = 4096

#: Default events between two state checkpoints.
DEFAULT_CHECKPOINT_EVERY = 64

#: Serial values minted during replay when the recorded event carries
#: fewer serials than the replayed transition draws (a nondeterminism
#: symptom in itself; see :class:`_ReplayFeed`).  Far above any recorded
#: value so the drift is visible, never colliding.
_FALLBACK_SERIAL_BASE = 1 << 40


def _canonical(payload: object) -> str:
    """Canonical JSON used for bit-for-bit state comparison."""

    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# Message codec.
#
# The persist codec only round-trips request messages (all the journal
# needs); flight recording must round-trip every wire message of all
# three protocols, exactly.  Trace contexts are deliberately dropped:
# they are excluded from message equality and never feed back into
# protocol state, so replayed state cannot depend on them.
# ---------------------------------------------------------------------------


def _request_id_to_payload(request_id: RequestId) -> List[int]:
    return [request_id.timestamp, request_id.origin, request_id.serial]


def _request_id_from_payload(payload) -> RequestId:
    timestamp, origin, serial = payload
    return RequestId(
        timestamp=int(timestamp), origin=int(origin), serial=int(serial)
    )


def _modes_to_payload(modes: Iterable[LockMode]) -> List[str]:
    return sorted(str(mode) for mode in modes)


def message_to_payload(message: Message) -> Dict[str, object]:
    """Encode one protocol message (any of the three protocols)."""

    payload: Dict[str, object] = {
        "type": type(message).__name__,
        "lock": message.lock_id,
        "sender": message.sender,
    }
    if isinstance(message, RequestMessage):
        payload.update(
            origin=message.origin,
            mode=str(message.mode),
            id=_request_id_to_payload(message.request_id),
            upgrade=message.upgrade,
            priority=message.priority,
            fencing_token=message.fencing_token,
        )
    elif isinstance(message, GrantMessage):
        payload.update(
            mode=str(message.mode),
            id=_request_id_to_payload(message.request_id),
            frozen=_modes_to_payload(message.frozen),
            attachment_seq=message.attachment_seq,
        )
    elif isinstance(message, TokenMessage):
        payload.update(
            granted_mode=str(message.granted_mode),
            id=_request_id_to_payload(message.request_id),
            prev_owner_mode=str(message.prev_owner_mode),
            queue=[message_to_payload(entry) for entry in message.queue],
            frozen=_modes_to_payload(message.frozen),
            prev_owner_seq=message.prev_owner_seq,
            epoch=message.epoch,
        )
    elif isinstance(message, ReleaseMessage):
        payload.update(
            new_mode=str(message.new_mode),
            attachment_seq=message.attachment_seq,
        )
    elif isinstance(message, FreezeMessage):
        payload.update(frozen=_modes_to_payload(message.frozen))
    elif isinstance(message, NaimiRequestMessage):
        payload.update(
            origin=message.origin, fencing_token=message.fencing_token
        )
    elif isinstance(message, NaimiTokenMessage):
        pass
    elif isinstance(message, RaymondRequestMessage):
        payload.update(fencing_token=message.fencing_token)
    elif isinstance(message, RaymondPrivilegeMessage):
        pass
    else:
        raise ValueError(
            f"cannot encode message type {type(message).__name__}"
        )
    return payload


def message_from_payload(payload: Mapping[str, object]) -> Message:
    """Decode one :func:`message_to_payload` payload."""

    kind = str(payload["type"])
    lock_id = payload["lock"]
    sender = int(payload["sender"])
    if kind == "RequestMessage":
        return RequestMessage(
            lock_id=lock_id,
            sender=sender,
            origin=int(payload["origin"]),
            mode=LockMode(str(payload["mode"])),
            request_id=_request_id_from_payload(payload["id"]),
            upgrade=bool(payload.get("upgrade", False)),
            priority=int(payload.get("priority", 0)),
            fencing_token=int(payload.get("fencing_token", 0)),
        )
    if kind == "GrantMessage":
        return GrantMessage(
            lock_id=lock_id,
            sender=sender,
            mode=LockMode(str(payload["mode"])),
            request_id=_request_id_from_payload(payload["id"]),
            frozen=frozenset(
                LockMode(str(m)) for m in payload.get("frozen", ())
            ),
            attachment_seq=int(payload.get("attachment_seq", 0)),
        )
    if kind == "TokenMessage":
        return TokenMessage(
            lock_id=lock_id,
            sender=sender,
            granted_mode=LockMode(str(payload["granted_mode"])),
            request_id=_request_id_from_payload(payload["id"]),
            prev_owner_mode=LockMode(str(payload["prev_owner_mode"])),
            queue=tuple(
                message_from_payload(entry)
                for entry in payload.get("queue", ())
            ),
            frozen=frozenset(
                LockMode(str(m)) for m in payload.get("frozen", ())
            ),
            prev_owner_seq=int(payload.get("prev_owner_seq", 0)),
            epoch=int(payload.get("epoch", 0)),
        )
    if kind == "ReleaseMessage":
        return ReleaseMessage(
            lock_id=lock_id,
            sender=sender,
            new_mode=LockMode(str(payload["new_mode"])),
            attachment_seq=int(payload.get("attachment_seq", 0)),
        )
    if kind == "FreezeMessage":
        return FreezeMessage(
            lock_id=lock_id,
            sender=sender,
            frozen=frozenset(
                LockMode(str(m)) for m in payload.get("frozen", ())
            ),
        )
    if kind == "NaimiRequestMessage":
        return NaimiRequestMessage(
            lock_id=lock_id,
            sender=sender,
            origin=int(payload["origin"]),
            fencing_token=int(payload.get("fencing_token", 0)),
        )
    if kind == "NaimiTokenMessage":
        return NaimiTokenMessage(lock_id=lock_id, sender=sender)
    if kind == "RaymondRequestMessage":
        return RaymondRequestMessage(
            lock_id=lock_id,
            sender=sender,
            fencing_token=int(payload.get("fencing_token", 0)),
        )
    if kind == "RaymondPrivilegeMessage":
        return RaymondPrivilegeMessage(lock_id=lock_id, sender=sender)
    raise ValueError(f"cannot decode message type {kind!r}")


# ---------------------------------------------------------------------------
# The recorder.
# ---------------------------------------------------------------------------


class FlightRecorder:
    """Per-node black box: ring buffer of automaton inputs + checkpoints.

    Event kinds (each event carries ``seq`` — monotonic per node — and
    ``t``, the recorder clock's reading when it was appended):

    * ``birth`` — a lock automaton was created lazily (``init`` holds the
      deterministic construction inputs).
    * ``op`` — a local application / recovery call (``op`` + ``args``).
    * ``msg`` — a delivered protocol message (``msg`` payload), recorded
      at the automaton boundary, post-dedup, so recorded history is
      transport-independent.
    * ``ckpt`` — a full node state checkpoint (``state``), taken *before*
      the event that triggered it, i.e. it reflects all events with a
      lower ``seq``.
    * ``crash`` / ``restart`` — node lifecycle markers from the fault
      harness; a restart wipes the node's volatile state in replay just
      as it does live.

    Serial draws made while serving an event are appended to that event's
    ``serials`` list (see the module docstring).
    """

    def __init__(
        self,
        node_id: NodeId,
        protocol: str = "hierarchical",
        capacity: int = DEFAULT_CAPACITY,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        clock: Optional[Callable[[], float]] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        if capacity < checkpoint_every + 1:
            raise ValueError(
                "capacity must exceed checkpoint_every (a ring that "
                "cannot hold one full segment retains nothing replayable)"
            )
        self.node_id = node_id
        self.protocol = protocol
        self.capacity = int(capacity)
        self.checkpoint_every = int(checkpoint_every)
        self._clock = clock
        self.meta: Dict[str, object] = dict(meta or {})
        #: Source of checkpoint state; bound by :meth:`attach`.
        self.state_source: Optional[Callable[[], Dict[str, object]]] = None
        # Segments: each inner list starts with its base checkpoint, so
        # evicting whole segments keeps the ring head replayable.
        self._segments: Deque[List[Dict[str, object]]] = deque([[]])
        self._retained = 0
        self._seq = 0
        # Force a checkpoint before the very first event: every segment
        # (including the first) is checkpoint-headed.
        self._since_ckpt = self.checkpoint_every
        self._open: Optional[Dict[str, object]] = None
        #: Events evicted from the ring so far.
        self.dropped = 0
        #: Checkpoints taken so far.
        self.checkpoints_taken = 0

    # -- wiring ---------------------------------------------------------

    def attach(self, lockspace) -> None:
        """Start recording *lockspace* (and every automaton it creates).

        Re-invoked after a restart with the node's fresh lockspace; the
        ring buffer carries across restarts so pre-crash history stays
        inspectable.
        """

        lockspace.flightrec = self
        for automaton in lockspace.automata():
            automaton.flightrec = self
        self.state_source = lockspace.flight_state
        options = getattr(lockspace, "_options", None)
        if options is not None and "options" not in self.meta:
            self.meta["options"] = {
                field.name: getattr(options, field.name)
                for field in dataclasses.fields(options)
            }

    # -- introspection --------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest recorded event (0 = none yet)."""

        return self._seq

    @property
    def depth(self) -> int:
        """Events currently retained in the ring."""

        return self._retained

    def stats(self) -> Dict[str, object]:
        """JSON-safe counters for the monitor endpoint."""

        return {
            "node": self.node_id,
            "last_seq": self.last_seq,
            "depth": self.depth,
            "dropped": self.dropped,
            "checkpoints": self.checkpoints_taken,
            "capacity": self.capacity,
        }

    # -- recording ------------------------------------------------------

    def _now(self) -> float:
        return float(self._clock()) if self._clock is not None else 0.0

    def _append(self, event: Dict[str, object]) -> None:
        if (
            self._since_ckpt >= self.checkpoint_every
            and self.state_source is not None
        ):
            ckpt = {
                "seq": self._seq + 1,
                "t": self._now(),
                "kind": "ckpt",
                "state": self.state_source(),
            }
            self._seq += 1
            self._since_ckpt = 0
            self.checkpoints_taken += 1
            self._segments.append([ckpt])
            self._retained += 1
        self._seq += 1
        self._since_ckpt += 1
        event["seq"] = self._seq
        event["t"] = self._now()
        self._segments[-1].append(event)
        self._retained += 1
        self._open = event
        # Evict whole oldest segments (never the newest) past capacity.
        while self._retained > self.capacity and len(self._segments) > 1:
            evicted = self._segments.popleft()
            self._retained -= len(evicted)
            self.dropped += len(evicted)

    def record_birth(self, lock_id: LockId, init: Dict[str, object]) -> None:
        """A lock automaton was created (deterministic *init* inputs)."""

        self._append({"kind": "birth", "lock": lock_id, "init": dict(init)})

    def record_op(
        self, lock_id: LockId, op: str, args: Dict[str, object]
    ) -> None:
        """A local application or recovery call entered the automaton."""

        self._append({"kind": "op", "lock": lock_id, "op": op, "args": args})

    def record_msg(self, lock_id: LockId, message: Message) -> None:
        """A protocol message reached the automaton (post-dedup).

        The live (immutable) message object is stored; encoding to JSON
        happens lazily at dump time, keeping the hot path allocation-only.
        """

        self._append({"kind": "msg", "lock": lock_id, "msg": message})

    def record_crash(self) -> None:
        """The node crashed (volatile state gone)."""

        self._append({"kind": "crash"})
        self._open = None
        self.state_source = None

    def record_restart(self) -> None:
        """The node restarted (fresh volatile state; rejoin follows)."""

        self._append({"kind": "restart"})
        self._open = None

    def mint_serial(self) -> int:
        """Draw one value from the global serial counter, recording it.

        The drawn value lands on the event currently being served, which
        is what lets replay reproduce serial-derived state (request ids,
        attachment epochs) without the process-global counter.
        """

        serial = fresh_attachment_seq()
        if self._open is not None:
            self._open.setdefault("serials", []).append(serial)
        return serial

    # -- export ---------------------------------------------------------

    def export_events(self) -> List[Dict[str, object]]:
        """The retained ring as JSON-safe event dicts, oldest first."""

        out: List[Dict[str, object]] = []
        for segment in self._segments:
            for event in segment:
                if event.get("kind") == "msg":
                    encoded = dict(event)
                    encoded["msg"] = message_to_payload(event["msg"])
                    out.append(encoded)
                else:
                    out.append(event)
        return out


def attach_recorders(
    cluster,
    capacity: int = DEFAULT_CAPACITY,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
) -> Dict[NodeId, FlightRecorder]:
    """Attach one :class:`FlightRecorder` per node of a sim cluster.

    Works on any cluster exposing ``lockspaces`` and (optionally)
    ``PROTOCOL`` / ``sim`` — i.e. every flavour in :mod:`repro.sim`.
    The fault-tolerant clusters take recorders at construction instead
    (they must re-attach across restarts); see :mod:`repro.faults`.
    """

    protocol = getattr(cluster, "PROTOCOL", "hierarchical")
    sim = getattr(cluster, "sim", None)
    clock = (lambda: sim.now) if sim is not None else None
    recorders: Dict[NodeId, FlightRecorder] = {}
    for node_id, lockspace in cluster.lockspaces.items():
        recorder = FlightRecorder(
            node_id,
            protocol=protocol,
            capacity=capacity,
            checkpoint_every=checkpoint_every,
            clock=clock,
        )
        recorder.attach(lockspace)
        recorders[node_id] = recorder
    return recorders


# ---------------------------------------------------------------------------
# Dump files (WAL CRC framing).
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class FlightDump:
    """One loaded dump: every node's retained events plus run metadata."""

    protocol: str
    meta: Dict[str, object]
    node_meta: Dict[NodeId, Dict[str, object]]
    events: Dict[NodeId, List[Dict[str, object]]]
    corrupt_skipped: int = 0
    torn_bytes: int = 0

    def nodes(self) -> List[NodeId]:
        return sorted(self.events)


def write_dump(
    path: str,
    recorders: Mapping[NodeId, FlightRecorder],
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Serialize every recorder's ring buffer into one framed dump file."""

    protocol = "hierarchical"
    for recorder in recorders.values():
        protocol = recorder.protocol
        break
    with open(path, "wb") as handle:
        handle.write(
            encode_frame(
                {
                    "cat": "flightmeta",
                    "format": DUMP_FORMAT,
                    "version": DUMP_VERSION,
                    "protocol": protocol,
                    "nodes": sorted(recorders),
                    "meta": meta or {},
                }
            )
        )
        for node_id in sorted(recorders):
            recorder = recorders[node_id]
            handle.write(
                encode_frame(
                    {
                        "cat": "flightnode",
                        "node": node_id,
                        "meta": dict(
                            recorder.meta,
                            dropped=recorder.dropped,
                            checkpoints=recorder.checkpoints_taken,
                            capacity=recorder.capacity,
                        ),
                    }
                )
            )
            for event in recorder.export_events():
                handle.write(
                    encode_frame(
                        {"cat": "flightevent", "node": node_id, "event": event}
                    )
                )


def load_dump(path: str) -> FlightDump:
    """Load a dump written by :func:`write_dump`.

    Torn tails and corrupt records are tolerated exactly as in the WAL:
    damage is counted, intact history is kept.
    """

    with open(path, "rb") as handle:
        blob = handle.read()
    records, _good_end, report = scan_frames(blob)
    if not records or records[0].get("cat") != "flightmeta":
        raise ValueError(f"{path} is not a flight-recorder dump")
    head = records[0]
    if head.get("format") != DUMP_FORMAT:
        raise ValueError(f"{path}: unknown dump format {head.get('format')!r}")
    dump = FlightDump(
        protocol=str(head.get("protocol", "hierarchical")),
        meta=dict(head.get("meta", {})),
        node_meta={},
        events={int(n): [] for n in head.get("nodes", ())},
        corrupt_skipped=report.corrupt_skipped,
        torn_bytes=report.torn_bytes,
    )
    for record in records[1:]:
        cat = record.get("cat")
        node = int(record.get("node", -1))
        if cat == "flightnode":
            dump.node_meta[node] = dict(record.get("meta", {}))
            dump.events.setdefault(node, [])
        elif cat == "flightevent":
            dump.events.setdefault(node, []).append(dict(record["event"]))
    for events in dump.events.values():
        events.sort(key=lambda event: int(event.get("seq", 0)))
    return dump


def looks_like_flight_dump(path: str) -> bool:
    """Cheap sniff: does *path* start with a framed ``flightmeta`` record?

    Used by ``python -m repro report`` to point users at ``repro replay``
    instead of failing on an unreadable "trace".
    """

    try:
        with open(path, "rb") as handle:
            blob = handle.read(65536)
    except OSError:
        return False
    records, _end, _report = scan_frames(blob)
    return bool(records) and records[0].get("cat") == "flightmeta"


# ---------------------------------------------------------------------------
# Replay.
# ---------------------------------------------------------------------------


class _ReplayFeed:
    """Recorder stand-in wired into replayed automata.

    Feeds each event's recorded serial draws back to ``_mint_serial`` and
    counts any drift (an automaton drawing more or fewer serials than the
    recording did is nondeterminism even if the states happen to match).
    """

    def __init__(self) -> None:
        self._serials: List[int] = []
        self.underflows = 0
        self.leftovers = 0
        self._fallback = itertools.count(_FALLBACK_SERIAL_BASE)

    def load(self, event: Mapping[str, object]) -> None:
        if self._serials:
            self.leftovers += len(self._serials)
        self._serials = list(event.get("serials", ()))

    def mint_serial(self) -> int:
        if self._serials:
            return int(self._serials.pop(0))
        self.underflows += 1
        return next(self._fallback)

    # The recording surface, as no-ops (replayed automata must not
    # re-record their own replay).
    def record_op(self, lock_id, op, args) -> None:  # pragma: no cover
        pass

    def record_msg(self, lock_id, message) -> None:  # pragma: no cover
        pass

    def record_birth(self, lock_id, init) -> None:  # pragma: no cover
        pass


class ReplaySession:
    """One node's reconstructed state, advanced event by event."""

    def __init__(
        self,
        node_id: NodeId,
        protocol: str,
        node_meta: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.node_id = node_id
        self.protocol = protocol
        self.node_meta = dict(node_meta or {})
        self.clock = LamportClock()
        self.feed = _ReplayFeed()
        self.automata: Dict[LockId, object] = {}
        self.alive = True
        self.seq = 0
        #: Grants delivered to the (absent) application during replay.
        self.grants: List[Tuple[LockId, object]] = []
        #: Deterministic errors re-raised during apply (also raised live).
        self.errors: List[Dict[str, object]] = []

    # -- automaton construction ----------------------------------------

    def _listener(self, lock_id, *grant_args) -> None:
        self.grants.append((lock_id, grant_args))

    def _options(self):
        from ..core.automaton import FULL_PROTOCOL, ProtocolOptions

        payload = self.node_meta.get("options")
        if not isinstance(payload, Mapping):
            return FULL_PROTOCOL
        known = {
            field.name for field in dataclasses.fields(ProtocolOptions)
        }
        return ProtocolOptions(
            **{k: v for k, v in payload.items() if k in known}
        )

    def _new_automaton(self, lock_id: LockId, init: Mapping[str, object]):
        if self.protocol == "naimi":
            from ..naimi.automaton import NaimiAutomaton

            last = init.get("last")
            automaton = NaimiAutomaton(
                node_id=self.node_id,
                lock_id=lock_id,
                last=None if last is None else int(last),
                listener=self._listener,
            )
        elif self.protocol == "raymond":
            from ..raymond.automaton import RaymondAutomaton

            holder = init.get("holder")
            automaton = RaymondAutomaton(
                node_id=self.node_id,
                lock_id=lock_id,
                holder=None if holder is None else int(holder),
                listener=self._listener,
            )
        else:
            from ..core.automaton import HierarchicalLockAutomaton

            parent = init.get("parent")
            automaton = HierarchicalLockAutomaton(
                node_id=self.node_id,
                lock_id=lock_id,
                clock=self.clock,
                parent=None if parent is None else int(parent),
                has_token=bool(init.get("token", parent is None)),
                listener=self._listener,
                options=self._options(),
            )
        automaton.flightrec = self.feed
        self.automata[lock_id] = automaton
        return automaton

    def _restored_automaton(self, lock_id: LockId):
        """A blank automaton about to receive ``restore_flight_state``."""

        if self.protocol in ("naimi", "raymond"):
            return self._new_automaton(lock_id, {"last": None, "holder": None})
        # Construct as token-at-home (always legal), then restore.
        return self._new_automaton(lock_id, {"parent": None, "token": True})

    # -- state ----------------------------------------------------------

    def state(self) -> Dict[str, object]:
        """This session's full state, shaped like ``flight_state()``."""

        state: Dict[str, object] = {
            "clock": self.clock.time if self.protocol == "hierarchical" else 0,
            "locks": [
                [lock_id, self.automata[lock_id].flight_state()]
                for lock_id in sorted(self.automata, key=str)
            ],
        }
        return state

    def restore(self, state: Mapping[str, object]) -> None:
        """Reset this session to a recorded checkpoint *state*."""

        self.automata = {}
        self.clock = LamportClock(int(state.get("clock", 0)))
        for lock_id, lock_state in state.get("locks", ()):
            automaton = self._restored_automaton(lock_id)
            automaton._clock = self.clock  # hierarchical only; harmless else
            automaton.restore_flight_state(lock_state)

    def node_snapshot(self) -> NodeSnapshot:
        """A :class:`NodeSnapshot` of this session (for the audit)."""

        if not self.alive:
            return NodeSnapshot(node=self.node_id, alive=False)
        locks = tuple(
            sorted(
                (a.snapshot() for a in self.automata.values()),
                key=lambda snap: str(snap.lock),
            )
        )
        return NodeSnapshot(node=self.node_id, alive=True, locks=locks)

    # -- applying events ------------------------------------------------

    def apply(self, event: Mapping[str, object]) -> None:
        """Apply one recorded *event* to the session."""

        kind = event.get("kind")
        self.seq = int(event.get("seq", self.seq))
        if kind == "ckpt":
            return
        if kind == "crash":
            self.alive = False
            return
        if kind == "restart":
            # A restarted process boots a fresh lockspace: volatile state
            # and the Lamport clock are gone; recorded rejoin operations
            # (adopt_persisted, reassert_owned, ...) rebuild from here.
            self.alive = True
            self.automata = {}
            self.clock = LamportClock()
            return
        self.feed.load(event)
        if kind == "birth":
            self._new_automaton(event["lock"], event.get("init", {}))
            return
        automaton = self.automata.get(event["lock"])
        if automaton is None:
            # Defensive: a ring head clipped mid-segment (should not
            # happen with segment eviction) — synthesize the automaton.
            automaton = self._restored_automaton(event["lock"])
        try:
            if kind == "msg":
                automaton.handle(message_from_payload(event["msg"]))
            elif kind == "op":
                self._apply_op(
                    automaton, str(event["op"]), event.get("args", {})
                )
            else:
                raise ValueError(f"unknown event kind {kind!r}")
        except (ProtocolError, LockUsageError) as exc:
            # The live run raised (and partially mutated) identically;
            # deterministic errors are part of the recorded history.
            self.errors.append(
                {
                    "seq": self.seq,
                    "error": type(exc).__name__,
                    "detail": str(exc),
                }
            )

    def _apply_op(self, automaton, op: str, args: Mapping[str, object]):
        if self.protocol in ("naimi", "raymond"):
            if op == "request":
                return automaton.request(None)
            if op == "release":
                return automaton.release()
            if op == "raise_fence_floor":
                return automaton.raise_fence_floor(int(args["token"]))
            if op == "adopt_persisted":
                return automaton.adopt_persisted(dict(args["state"]))
            raise ValueError(f"unknown {self.protocol} op {op!r}")
        if op == "request":
            return automaton.request(
                LockMode(str(args["mode"])), None, int(args.get("priority", 0))
            )
        if op == "release":
            return automaton.release(LockMode(str(args["mode"])))
        if op == "upgrade":
            return automaton.upgrade(None)
        if op == "downgrade":
            return automaton.downgrade(
                LockMode(str(args["held"])), LockMode(str(args["to"]))
            )
        if op == "handle":  # pragma: no cover - msgs use kind="msg"
            return automaton.handle(message_from_payload(args["msg"]))
        if op == "evict_child":
            return automaton.evict_child(int(args["node"]))
        if op == "reattach":
            return automaton.reattach(
                int(args["parent"]), bool(args.get("detach", False))
            )
        if op == "regenerate_token":
            return automaton.regenerate_token(int(args["epoch"]))
        if op == "accept_handoff":
            return automaton.accept_handoff(int(args["epoch"]))
        if op == "raise_fence_floor":
            return automaton.raise_fence_floor(int(args["token"]))
        if op == "fence_holds":
            return automaton.fence_holds()
        if op == "retransmit_pending":
            return automaton.retransmit_pending()
        if op == "observe_epoch":
            holder = args.get("holder")
            return automaton.observe_epoch(
                int(args["epoch"]), None if holder is None else int(holder)
            )
        if op == "adopt_persisted":
            return automaton.adopt_persisted(dict(args["state"]))
        if op == "begin_custody_fence":
            return automaton.begin_custody_fence()
        if op == "confirm_custody":
            return automaton.confirm_custody()
        if op == "fence_custody":
            return automaton.fence_custody(
                int(args["epoch"]), int(args["holder"])
            )
        if op == "abandon_pending":
            return automaton.abandon_pending()
        if op == "reassert_owned":
            return automaton.reassert_owned()
        if op == "expire_provisional_children":
            return automaton.expire_provisional_children()
        if op == "begin_departure":
            return automaton.begin_departure()
        if op == "adopt_child":
            return automaton.adopt_child(
                int(args["node"]),
                LockMode(str(args["mode"])),
                int(args.get("seq", 0)),
            )
        raise ValueError(f"unknown hierarchical op {op!r}")


class NodeReplayer:
    """Replays one node's recorded events; the time-travel primitive."""

    def __init__(
        self,
        node_id: NodeId,
        events: List[Dict[str, object]],
        protocol: str,
        node_meta: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.node_id = node_id
        self.protocol = protocol
        self.node_meta = dict(node_meta or {})
        self.events = sorted(events, key=lambda e: int(e.get("seq", 0)))

    @staticmethod
    def from_dump(dump: FlightDump, node_id: NodeId) -> "NodeReplayer":
        return NodeReplayer(
            node_id,
            dump.events.get(node_id, []),
            dump.protocol,
            dump.node_meta.get(node_id),
        )

    # -- positioning ----------------------------------------------------

    def _base_index(self, seq: int) -> int:
        """Index of the newest checkpoint event at or before *seq*."""

        base = 0
        for index, event in enumerate(self.events):
            if int(event.get("seq", 0)) > seq:
                break
            if event.get("kind") == "ckpt":
                base = index
        return base

    def session_at(self, seq: int) -> ReplaySession:
        """The node's state after applying every event with seq ≤ *seq*."""

        session = ReplaySession(self.node_id, self.protocol, self.node_meta)
        base = self._base_index(seq)
        start = 0
        if self.events and self.events[base].get("kind") == "ckpt":
            session.restore(self.events[base]["state"])
            session.seq = int(self.events[base].get("seq", 0))
            # Alive-ness at the checkpoint: a crash marker with no later
            # restart before the checkpoint means the node was down.
            for event in self.events[: base + 1]:
                if event.get("kind") == "crash":
                    session.alive = False
                elif event.get("kind") == "restart":
                    session.alive = True
            start = base + 1
        for event in self.events[start:]:
            if int(event.get("seq", 0)) > seq:
                break
            session.apply(event)
        return session

    def state_at(self, seq: int) -> Dict[str, object]:
        """Full node state after event *seq* (``flight_state`` shape)."""

        return self.session_at(seq).state()

    def diff(self, seq_a: int, seq_b: int) -> Dict[str, object]:
        """Per-lock state delta between two seqs (canonical comparison)."""

        state_a = self.state_at(seq_a)
        state_b = self.state_at(seq_b)
        locks_a = {lock: state for lock, state in state_a.get("locks", ())}
        locks_b = {lock: state for lock, state in state_b.get("locks", ())}
        delta: Dict[str, object] = {}
        if state_a.get("clock") != state_b.get("clock"):
            delta["clock"] = {
                "before": state_a.get("clock"),
                "after": state_b.get("clock"),
            }
        changed: Dict[str, object] = {}
        for lock in sorted(set(locks_a) | set(locks_b), key=str):
            before = locks_a.get(lock)
            after = locks_b.get(lock)
            if _canonical(before) != _canonical(after):
                changed[str(lock)] = {"before": before, "after": after}
        if changed:
            delta["locks"] = changed
        return delta

    # -- the determinism oracle -----------------------------------------

    def verify(self) -> List[Dict[str, object]]:
        """Replay the whole retained history against every checkpoint.

        Returns nondeterminism findings (empty = every recorded
        checkpoint was reproduced bit-for-bit).  After a mismatch the
        session resyncs to the recorded checkpoint so later history is
        still checked.
        """

        findings: List[Dict[str, object]] = []
        session = ReplaySession(self.node_id, self.protocol, self.node_meta)
        seeded = False
        for event in self.events:
            if event.get("kind") == "ckpt":
                recorded = _canonical(event["state"])
                if not seeded:
                    session.restore(event["state"])
                    seeded = True
                    continue
                replayed = _canonical(session.state())
                if replayed != recorded:
                    findings.append(
                        {
                            "node": self.node_id,
                            "seq": int(event.get("seq", 0)),
                            "kind": "checkpoint-mismatch",
                            "detail": "replayed state diverges from the "
                            "recorded checkpoint",
                            "recorded": event["state"],
                            "replayed": session.state(),
                        }
                    )
                    session.restore(event["state"])
                continue
            session.apply(event)
        drift = session.feed.underflows + session.feed.leftovers
        if drift:
            findings.append(
                {
                    "node": self.node_id,
                    "seq": session.seq,
                    "kind": "serial-drift",
                    "detail": f"replay drew {session.feed.underflows} more "
                    f"and left {session.feed.leftovers} unused recorded "
                    "serial(s) — the replayed transitions minted a "
                    "different number of serials than the recording",
                }
            )
        return findings

    # -- filtering ------------------------------------------------------

    def grep(self, criteria: Mapping[str, str]) -> List[Dict[str, object]]:
        """Events matching every ``key=value`` criterion.

        Supported keys: ``kind``, ``lock``, ``op``, ``type`` (message
        payload type, e.g. ``TokenMessage`` — ``TokenMsg`` matches as a
        prefix), ``seq``.
        """

        out = []
        for event in self.events:
            if _event_matches(event, criteria):
                out.append(event)
        return out


def _event_matches(
    event: Mapping[str, object], criteria: Mapping[str, str]
) -> bool:
    for key, wanted in criteria.items():
        if key == "kind":
            if str(event.get("kind")) != wanted:
                return False
        elif key == "lock":
            if str(event.get("lock")) != wanted:
                return False
        elif key == "op":
            if str(event.get("op")) != wanted:
                return False
        elif key == "seq":
            if str(event.get("seq")) != wanted:
                return False
        elif key == "type":
            msg = event.get("msg")
            name = str(msg.get("type")) if isinstance(msg, Mapping) else ""
            if not name.startswith(wanted.replace("Msg", "Message")) and (
                not name.startswith(wanted)
            ):
                return False
        else:
            return False
    return True


# ---------------------------------------------------------------------------
# Global timeline + bisect.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TimelineEntry:
    """One node event placed on the merged global timeline."""

    t: float
    node: NodeId
    seq: int
    event: Mapping[str, object]

    def describe(self) -> str:
        kind = self.event.get("kind")
        if kind == "msg":
            msg = self.event.get("msg", {})
            detail = (
                f"{msg.get('type')} from node {msg.get('sender')} "
                f"lock={msg.get('lock')!r}"
            )
        elif kind == "op":
            detail = (
                f"{self.event.get('op')} lock={self.event.get('lock')!r} "
                f"args={self.event.get('args')}"
            )
        elif kind == "birth":
            detail = f"lock={self.event.get('lock')!r}"
        else:
            detail = ""
        return f"node {self.node} seq {self.seq} t={self.t:.6f} {kind} {detail}".rstrip()


def build_timeline(dump: FlightDump) -> List[TimelineEntry]:
    """Merge every node's non-checkpoint events, globally ordered.

    Order is ``(t, node, seq)``: the recorder clock first (simulated or
    wall time), then a deterministic tie-break.  With per-node clocks
    this is an approximation of the true causal order — good enough for
    bisection, which only needs *some* deterministic total order
    consistent with each node's local order.
    """

    entries: List[TimelineEntry] = []
    for node_id, events in dump.events.items():
        for event in events:
            if event.get("kind") == "ckpt":
                continue
            entries.append(
                TimelineEntry(
                    t=float(event.get("t", 0.0)),
                    node=int(node_id),
                    seq=int(event.get("seq", 0)),
                    event=event,
                )
            )
    entries.sort(key=lambda entry: (entry.t, entry.node, entry.seq))
    return entries


def _cluster_view_at(
    dump: FlightDump,
    timeline: List[TimelineEntry],
    index: int,
    replayers: Mapping[NodeId, NodeReplayer],
) -> ClusterView:
    """The cluster's replayed state after timeline position *index*."""

    last_seq: Dict[NodeId, int] = {}
    for entry in timeline[: index + 1]:
        last_seq[entry.node] = entry.seq
    snapshots: List[NodeSnapshot] = []
    for node_id in dump.nodes():
        seq = last_seq.get(node_id, 0)
        session = replayers[node_id].session_at(seq)
        snapshots.append(session.node_snapshot())
    captured_at = timeline[index].t if timeline else 0.0
    return ClusterView(
        protocol=dump.protocol,
        captured_at=captured_at,
        nodes=tuple(snapshots),
    )


def _rule_fires(
    findings: Iterable[AuditFinding],
    rule: str,
    lock: Optional[str] = None,
) -> Optional[AuditFinding]:
    for finding in findings:
        if finding.rule != rule:
            continue
        if lock is not None and str(finding.lock) != lock:
            continue
        return finding
    return None


def bisect_timeline(
    dump: FlightDump,
    rule: str,
    lock: Optional[str] = None,
    quiescent: bool = False,
) -> Dict[str, object]:
    """First global event after which audit *rule* fires on replayed state.

    Binary-searches the merged timeline (the predicate "rule fires at or
    before position i" is monotone for structural invariants like
    token-split once the bad event is in history).  Returns a payload
    with the culprit entry, or ``{"fires": False}`` when the rule never
    fires even at the end of history.
    """

    timeline = build_timeline(dump)
    if not timeline:
        return {"fires": False, "detail": "empty timeline"}
    replayers = {
        node_id: NodeReplayer.from_dump(dump, node_id)
        for node_id in dump.nodes()
    }

    def fires(index: int) -> Optional[AuditFinding]:
        view = _cluster_view_at(dump, timeline, index, replayers)
        report = audit_view(view, quiescent=quiescent)
        return _rule_fires(report.findings, rule, lock)

    final = fires(len(timeline) - 1)
    if final is None:
        return {
            "fires": False,
            "events": len(timeline),
            "detail": f"rule {rule!r} never fires on replayed history",
        }
    lo, hi = 0, len(timeline) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if fires(mid) is not None:
            hi = mid
        else:
            lo = mid + 1
    culprit = timeline[lo]
    finding = fires(lo)
    return {
        "fires": True,
        "rule": rule,
        "index": lo,
        "events": len(timeline),
        "node": culprit.node,
        "seq": culprit.seq,
        "t": culprit.t,
        "event": culprit.event
        if culprit.event.get("kind") != "msg"
        else dict(culprit.event),
        "describe": culprit.describe(),
        "finding": finding.to_payload() if finding is not None else None,
    }


# ---------------------------------------------------------------------------
# Self-test (CI smoke): record a run, verify determinism, bisect a
# synthetic injected violation.
# ---------------------------------------------------------------------------


def run_self_test(emit: Callable[[str], None] = print) -> int:
    """Record a seeded run, verify checkpoints, bisect a forged split.

    Returns a process exit code (0 = pass).  Used by ``python -m repro
    replay --self-test`` in CI.
    """

    import os
    import tempfile

    from ..core.automaton import ProtocolOptions
    from ..sim.cluster import SimHierarchicalCluster
    from ..sim.engine import Timeout, run_processes

    cluster = SimHierarchicalCluster(
        4, seed=11, options=ProtocolOptions(recovery=True)
    )
    recorders = attach_recorders(cluster, checkpoint_every=8)

    def body(node: int):
        client = cluster.client(node)
        for round_index in range(6):
            yield client.acquire("table", LockMode.IR)
            yield client.acquire(f"row{(node + round_index) % 3}", LockMode.W)
            yield Timeout(cluster.sim, 0.002)
            client.release(f"row{(node + round_index) % 3}", LockMode.W)
            client.release("table", LockMode.IR)
            yield Timeout(cluster.sim, 0.001)

    run_processes(cluster.sim, [body(n) for n in range(4)])
    cluster.assert_quiescent_invariants()

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "selftest.flight")
        write_dump(path, recorders, meta={"selftest": True})
        dump = load_dump(path)

        findings: List[Dict[str, object]] = []
        for node_id in dump.nodes():
            findings.extend(NodeReplayer.from_dump(dump, node_id).verify())
        if findings:
            emit("replay self-test: NONDETERMINISM")
            for finding in findings:
                emit(
                    f"  node {finding['node']} seq {finding['seq']}: "
                    f"{finding['kind']} — {finding['detail']}"
                )
            return 1
        emit(
            f"replay self-test: {len(dump.nodes())} nodes, "
            "all checkpoints reproduced bit-for-bit"
        )

        # Forge a violation: a second node regenerates the token for
        # "table" while the real token is alive — a textbook split.  The
        # op is legal in isolation (recovery hook), so only the global
        # audit can see it; bisect must name exactly this event.
        victim = next(
            n for n in dump.nodes() if cluster.lockspaces[n].automaton("table").has_token is False
        )
        events = dump.events[victim]
        last = max(int(e.get("seq", 0)) for e in events)
        forged_seq = last + 1
        forged_t = max(float(e.get("t", 0.0)) for e in events) + 1.0
        events.append(
            {
                "seq": forged_seq,
                "t": forged_t,
                "kind": "op",
                "lock": "table",
                "op": "regenerate_token",
                "args": {"epoch": 999},
                "serials": [1 << 30],
            }
        )
        verdict = bisect_timeline(dump, "token-split", lock="table")
        if not verdict.get("fires"):
            emit("replay self-test: bisect missed the forged token split")
            return 1
        if verdict["node"] != victim or verdict["seq"] != forged_seq:
            emit(
                f"replay self-test: bisect named node {verdict['node']} "
                f"seq {verdict['seq']}, expected node {victim} seq "
                f"{forged_seq}"
            )
            return 1
        emit(
            f"replay self-test: bisect pinpointed the forged violation "
            f"(node {verdict['node']}, seq {verdict['seq']})"
        )
    return 0

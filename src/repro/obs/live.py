"""Live cluster introspection: snapshots, aggregation, online audit.

The protocol distributes its state — token position, copyset grant
trees, local queues, frozen modes — across every node, which makes a
*running* cluster opaque: spans and traces explain a run after it ends,
but say nothing about the cluster's health right now.  This module adds
the online half of the observability stack:

* **Snapshots** — every protocol automaton (hierarchical, Naimi,
  Raymond) exposes a read-only ``snapshot()`` returning a
  :class:`LockSnapshot`; :func:`snapshot_node` folds one node's lock
  snapshots (plus optional :class:`RecoveryHealth` from the recovery
  manager) into a :class:`NodeSnapshot`, and a cluster of those is a
  :class:`ClusterView`.  Snapshots are pure reads: taking one never
  touches protocol state, RNG streams or message flow, so a monitored
  run stays bit-identical to an unmonitored one.
* **Audit** — :func:`audit_view` reconciles the per-node beliefs of one
  :class:`ClusterView` and reports :class:`AuditFinding` entries for
  every invariant that does not hold globally: exactly one token
  believer per lock, copyset edges acyclic and rooted at the token
  node, no references to dead peers, Rule-1 compatibility of
  concurrently believed holds, and a starvation watch over queue ages.
  Transient in-flight states (a token mid-transfer) are *warnings*;
  with ``quiescent=True`` — after a drain, when nothing can be in
  flight — they escalate to violations.
* **Polling** — :class:`LiveMonitor` wraps a view source (any cluster's
  ``cluster_view``) and tracks queue entries across polls, which is
  where entry *ages* come from: the automata never timestamp their
  queues (that would perturb state), the poller does.

The HTTP exposition and the ``python -m repro monitor`` CLI live in
:mod:`repro.obs.monitor`; docs/MONITORING.md walks the schema and every
audit rule.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.messages import LockId, NodeId
from ..core.modes import LockMode, compatible

#: Finding severities: a ``violation`` fails the audit, a ``warning``
#: records a state that is legal while messages are in flight.
VIOLATION = "violation"
WARNING = "warning"

#: Default starvation threshold: flag queue entries older than this
#: multiple of the mean grant latency.
DEFAULT_STARVATION_FACTOR = 10.0

#: Audit rules, in the order findings are reported.
AUDIT_RULES = (
    "token-split",
    "token-missing",
    "copyset-cycle",
    "copyset-unrooted",
    "dead-reference",
    "rule1",
    "expired-but-held",
    "double-active-lease",
    "stuck-request",
    "view-skew",
    "starvation",
    "deadlock",
)

#: Audit rules a *blank* (non-durable) crash-restart can legitimately
#: produce: a node that rejoins without its journal has lost its
#: pre-crash requests, queue entries and copyset edges — and, worse,
#: re-creates each lock lazily from the static token home, so a
#: restarted home *resurrects a stale token* and can grant against the
#: regenerated lineage before the epoch announcements demote it.  The
#: audit then sees token splits, copyset cycles and even conflicting
#: grants that are gaps of the volatile configuration, not protocol
#: bugs; durability (``repro.persist``) is the fix, and durable runs
#: treat every one of these as a hard failure.
BLANK_REJOIN_RULES = frozenset(
    {
        "token-missing",
        "token-split",
        "copyset-cycle",
        "copyset-unrooted",
        "stuck-request",
        "dead-reference",
        "rule1",
    }
)

#: Name under which the expected blank-rejoin gap surfaces in verdicts.
BLANK_REJOIN_GAP = "blank-rejoin-gap"


def classify_crash_findings(
    findings: Sequence["AuditFinding"],
    crashed_any: bool,
    durable: bool = False,
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """Split audit *findings* into regressions and expected crash gaps.

    When the run crashed nodes and durability is **off**, findings under
    :data:`BLANK_REJOIN_RULES` are classified as the expected
    :data:`BLANK_REJOIN_GAP` (tagged ``expected`` in their payload) —
    volatile rejoin cannot do better.  With ``durable=True`` a restarted
    node recovers its state from its journal (see :mod:`repro.persist`),
    the gap must not occur, and **every** finding is a regression.

    Returns ``(regressions, expected)``, both as payload dict lists.
    """

    regressions: List[Dict[str, object]] = []
    expected: List[Dict[str, object]] = []
    for finding in findings:
        payload = finding.to_payload()
        if (
            crashed_any
            and not durable
            and finding.rule in BLANK_REJOIN_RULES
        ):
            payload["expected"] = BLANK_REJOIN_GAP
            expected.append(payload)
        else:
            regressions.append(payload)
    return regressions, expected


# ---------------------------------------------------------------------------
# Snapshot records.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class QueueEntry:
    """One locally queued request, as seen by the queueing node."""

    #: The requesting node (for Raymond: the neighbour the edge request
    #: came from, or the queueing node itself for its own entry).
    origin: NodeId
    #: Requested mode (baselines always queue for exclusive ``W``).
    mode: str
    #: Canonical span key of the request — stable across polls, which is
    #: what lets :class:`LiveMonitor` age entries without the automata
    #: keeping timestamps.
    key: str
    #: Seconds this entry has been observed queued; ``None`` until a
    #: :class:`LiveMonitor` has seen it on at least one earlier poll.
    age: Optional[float] = None

    def to_payload(self) -> Dict[str, object]:
        return {
            "origin": self.origin,
            "mode": self.mode,
            "key": self.key,
            "age": self.age,
        }

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "QueueEntry":
        return QueueEntry(
            origin=payload["origin"],
            mode=str(payload["mode"]),
            key=str(payload["key"]),
            age=payload.get("age"),
        )


@dataclasses.dataclass(frozen=True)
class LockSnapshot:
    """One automaton's local beliefs about one lock.

    The same shape serves all three protocols: for the baselines,
    ``parent`` is Naimi's probable-owner (``last``) or Raymond's
    ``holder`` edge, ``children`` is empty, and holds/pending collapse
    to exclusive ``W``.
    """

    lock: LockId
    #: Whether this node believes it holds the token/privilege/root.
    believes_token: bool
    #: Edge toward the believed token (copyset parent / ``last`` /
    #: ``holder``); ``None`` at a node that believes itself the root.
    parent: Optional[NodeId]
    #: Copyset edges as sorted ``(child, recorded_mode)`` pairs.
    children: Tuple[Tuple[NodeId, str], ...] = ()
    #: Locally held modes as sorted ``(mode, count)`` pairs.
    held: Tuple[Tuple[str, int], ...] = ()
    #: This node's own in-flight request mode (``None`` if none).
    pending: Optional[str] = None
    #: Local queue entries, FIFO order.
    queue: Tuple[QueueEntry, ...] = ()
    #: Modes frozen at this node (Rule 6), sorted.
    frozen: Tuple[str, ...] = ()
    #: Token incarnation floor (recovery extension; 0 = original token).
    token_epoch: int = 0
    #: Whether the lease layer fenced this node's holds (see
    #: :mod:`repro.leases`): its grants were revoked, so its residual
    #: beliefs — including a stale token claim on a partitioned minority
    #: — no longer count toward token-split or Rule-1 reconciliation.
    fenced: bool = False

    def held_modes(self) -> List[LockMode]:
        """The held multiset as :class:`LockMode` values (with repeats)."""

        modes: List[LockMode] = []
        for mode, count in self.held:
            modes.extend([LockMode(mode)] * count)
        return modes

    def to_payload(self) -> Dict[str, object]:
        return {
            "lock": self.lock,
            "token": self.believes_token,
            "parent": self.parent,
            "children": [[child, mode] for child, mode in self.children],
            "held": [[mode, count] for mode, count in self.held],
            "pending": self.pending,
            "queue": [entry.to_payload() for entry in self.queue],
            "frozen": list(self.frozen),
            "token_epoch": self.token_epoch,
            "fenced": self.fenced,
        }

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "LockSnapshot":
        return LockSnapshot(
            lock=payload["lock"],
            believes_token=bool(payload["token"]),
            parent=payload.get("parent"),
            children=tuple(
                (child, str(mode)) for child, mode in payload.get("children", ())
            ),
            held=tuple(
                (str(mode), int(count)) for mode, count in payload.get("held", ())
            ),
            pending=payload.get("pending"),
            queue=tuple(
                QueueEntry.from_payload(entry)
                for entry in payload.get("queue", ())
            ),
            frozen=tuple(str(m) for m in payload.get("frozen", ())),
            token_epoch=int(payload.get("token_epoch", 0)),
            fenced=bool(payload.get("fenced", False)),
        )


@dataclasses.dataclass(frozen=True)
class RecoveryHealth:
    """One recovery manager's health, captured with its snapshot."""

    #: This node's boot incarnation (bumped on restart).
    boot: int
    #: Peers currently suspected by the failure detector.
    suspected: Tuple[NodeId, ...] = ()
    #: Peers currently considered alive.
    live_peers: Tuple[NodeId, ...] = ()
    #: Session-channel frames sent but not yet acknowledged.
    channel_backlog: int = 0
    #: Cumulative channel-level frame retransmissions.
    channel_retransmits: int = 0
    #: Cumulative application-level request retransmissions.
    app_retransmits: int = 0
    #: Last announced token placements: ``(lock, holder, epoch)``.
    token_hints: Tuple[Tuple[LockId, NodeId, int], ...] = ()
    #: Locks whose durably restored token custody is still fenced
    #: (queueing, not granting) pending rejoin reconciliation.
    custody_pending: Tuple[LockId, ...] = ()
    #: Durability journal counters (``appends``, ``compactions``,
    #: ``locks_restored``, ``custody_confirmed``, ``custody_fenced``)
    #: when the node runs with a :mod:`repro.persist` journal attached;
    #: ``None`` on volatile nodes.
    durability: Optional[Mapping[str, int]] = None
    #: Lease-layer health (see :mod:`repro.leases`): ``fenced``, the
    #: ``own``/``remote`` lease tables as ``[lock, mode, holder, token,
    #: deadline]`` rows, and renewal/revocation counters.  ``None`` when
    #: the manager predates the lease layer or leases are unused.
    leases: Optional[Mapping[str, object]] = None
    #: Installed membership view epoch (0 = bootstrap view; see
    #: :mod:`repro.membership`) and its member list.
    view_epoch: int = 0
    view_members: Tuple[NodeId, ...] = ()

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "boot": self.boot,
            "suspected": list(self.suspected),
            "live_peers": list(self.live_peers),
            "channel_backlog": self.channel_backlog,
            "channel_retransmits": self.channel_retransmits,
            "app_retransmits": self.app_retransmits,
            "token_hints": [list(hint) for hint in self.token_hints],
            "custody_pending": list(self.custody_pending),
            "view_epoch": self.view_epoch,
            "view_members": list(self.view_members),
        }
        if self.durability is not None:
            payload["durability"] = dict(self.durability)
        if self.leases is not None:
            payload["leases"] = dict(self.leases)
        return payload

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "RecoveryHealth":
        durability = payload.get("durability")
        leases = payload.get("leases")
        return RecoveryHealth(
            boot=int(payload["boot"]),
            suspected=tuple(payload.get("suspected", ())),
            live_peers=tuple(payload.get("live_peers", ())),
            channel_backlog=int(payload.get("channel_backlog", 0)),
            channel_retransmits=int(payload.get("channel_retransmits", 0)),
            app_retransmits=int(payload.get("app_retransmits", 0)),
            token_hints=tuple(
                (hint[0], hint[1], int(hint[2]))
                for hint in payload.get("token_hints", ())
            ),
            custody_pending=tuple(payload.get("custody_pending", ())),
            view_epoch=int(payload.get("view_epoch", 0)),
            view_members=tuple(payload.get("view_members", ())),
            durability=(
                {str(k): int(v) for k, v in durability.items()}
                if durability is not None
                else None
            ),
            leases=dict(leases) if leases is not None else None,
        )


@dataclasses.dataclass(frozen=True)
class NodeSnapshot:
    """One node's beliefs across every lock it has touched."""

    node: NodeId
    #: ``False`` for a crashed node (its volatile state is gone; the
    #: snapshot then carries no locks).
    alive: bool = True
    locks: Tuple[LockSnapshot, ...] = ()
    #: Recovery-layer health, present when the node runs with
    #: ``ProtocolOptions(recovery=True)`` behind a recovery manager.
    recovery: Optional[RecoveryHealth] = None

    def lock(self, lock_id: LockId) -> Optional[LockSnapshot]:
        """This node's snapshot of *lock_id*, if it has touched it."""

        for snapshot in self.locks:
            if snapshot.lock == lock_id:
                return snapshot
        return None

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "node": self.node,
            "alive": self.alive,
            "locks": [snapshot.to_payload() for snapshot in self.locks],
        }
        if self.recovery is not None:
            payload["recovery"] = self.recovery.to_payload()
        return payload

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "NodeSnapshot":
        recovery = payload.get("recovery")
        return NodeSnapshot(
            node=payload["node"],
            alive=bool(payload.get("alive", True)),
            locks=tuple(
                LockSnapshot.from_payload(snapshot)
                for snapshot in payload.get("locks", ())
            ),
            recovery=(
                RecoveryHealth.from_payload(recovery)
                if recovery is not None
                else None
            ),
        )


@dataclasses.dataclass(frozen=True)
class ClusterView:
    """Every node's snapshot at (approximately) one instant.

    "Approximately" because capture walks nodes one at a time, each
    under its own mutex on the threaded runtimes; the audit therefore
    treats in-flight disagreements as warnings unless told the cluster
    is quiescent.
    """

    protocol: str
    #: Capture time in the cluster's own timebase (simulated seconds for
    #: sim clusters, monotonic wall seconds for threaded ones).
    captured_at: float
    nodes: Tuple[NodeSnapshot, ...] = ()

    def node(self, node_id: NodeId) -> Optional[NodeSnapshot]:
        """The snapshot of *node_id*, if present."""

        for snapshot in self.nodes:
            if snapshot.node == node_id:
                return snapshot
        return None

    def alive_nodes(self) -> List[NodeId]:
        """Ids of nodes captured alive, in capture order."""

        return [snapshot.node for snapshot in self.nodes if snapshot.alive]

    def lock_ids(self) -> List[LockId]:
        """Every lock any node has state for, sorted."""

        locks: Set[LockId] = set()
        for snapshot in self.nodes:
            locks.update(entry.lock for entry in snapshot.locks)
        return sorted(locks, key=str)

    def token_believers(self, lock_id: LockId) -> List[NodeId]:
        """Alive nodes believing they hold *lock_id*'s token.

        A lease-fenced believer is excluded: a partitioned minority that
        fenced itself may still carry a stale token claim, but that
        claim no longer serves grants (its residual held state is the
        ``expired-but-held`` rule's business instead).
        """

        believers = []
        for snapshot in self.nodes:
            if not snapshot.alive:
                continue
            entry = snapshot.lock(lock_id)
            if entry is not None and entry.believes_token and not entry.fenced:
                believers.append(snapshot.node)
        return believers

    def to_payload(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "captured_at": self.captured_at,
            "nodes": [snapshot.to_payload() for snapshot in self.nodes],
        }

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "ClusterView":
        return ClusterView(
            protocol=str(payload.get("protocol", "?")),
            captured_at=float(payload.get("captured_at", 0.0)),
            nodes=tuple(
                NodeSnapshot.from_payload(snapshot)
                for snapshot in payload.get("nodes", ())
            ),
        )


def snapshot_node(
    node_id: NodeId,
    lockspace,
    alive: bool = True,
    recovery: Optional[RecoveryHealth] = None,
) -> NodeSnapshot:
    """Snapshot every instantiated automaton of one lock space.

    Callers on threaded runtimes must hold the node's mutex around this
    call; the capture itself is a pure read.
    """

    locks = tuple(
        sorted(
            (automaton.snapshot() for automaton in lockspace.automata()),
            key=lambda snapshot: str(snapshot.lock),
        )
    )
    return NodeSnapshot(node=node_id, alive=alive, locks=locks, recovery=recovery)


# ---------------------------------------------------------------------------
# The online invariant audit.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AuditFinding:
    """One invariant the cluster view does not satisfy."""

    rule: str
    severity: str
    detail: str
    lock: Optional[LockId] = None
    nodes: Tuple[NodeId, ...] = ()

    def __str__(self) -> str:
        where = f" lock={self.lock!r}" if self.lock is not None else ""
        who = f" nodes={list(self.nodes)}" if self.nodes else ""
        return f"[{self.severity}] {self.rule}{where}{who}: {self.detail}"

    def to_payload(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "detail": self.detail,
            "lock": self.lock,
            "nodes": list(self.nodes),
        }

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "AuditFinding":
        return AuditFinding(
            rule=str(payload["rule"]),
            severity=str(payload["severity"]),
            detail=str(payload["detail"]),
            lock=payload.get("lock"),
            nodes=tuple(payload.get("nodes", ())),
        )


@dataclasses.dataclass(frozen=True)
class AuditReport:
    """Outcome of auditing one :class:`ClusterView`."""

    findings: Tuple[AuditFinding, ...]
    locks_checked: int
    nodes_checked: int
    #: Whether the audit ran with quiescent (post-drain) semantics.
    quiescent: bool = False

    @property
    def ok(self) -> bool:
        """True iff no finding is a violation (warnings allowed)."""

        return not self.violations()

    def violations(self) -> List[AuditFinding]:
        """Findings of severity ``violation``."""

        return [f for f in self.findings if f.severity == VIOLATION]

    def warnings(self) -> List[AuditFinding]:
        """Findings of severity ``warning``."""

        return [f for f in self.findings if f.severity == WARNING]

    def verdict(self) -> str:
        """One-line human summary."""

        status = "HEALTHY" if self.ok else "UNHEALTHY"
        return (
            f"{status}: {len(self.violations())} violations, "
            f"{len(self.warnings())} warnings over {self.locks_checked} "
            f"locks / {self.nodes_checked} nodes"
        )

    def to_payload(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "quiescent": self.quiescent,
            "locks_checked": self.locks_checked,
            "nodes_checked": self.nodes_checked,
            "findings": [finding.to_payload() for finding in self.findings],
        }

    @staticmethod
    def from_payload(payload: Mapping[str, object]) -> "AuditReport":
        return AuditReport(
            findings=tuple(
                AuditFinding.from_payload(finding)
                for finding in payload.get("findings", ())
            ),
            locks_checked=int(payload.get("locks_checked", 0)),
            nodes_checked=int(payload.get("nodes_checked", 0)),
            quiescent=bool(payload.get("quiescent", False)),
        )


def _transient(quiescent: bool) -> str:
    """Severity of a finding that a message in flight could explain."""

    return VIOLATION if quiescent else WARNING


def _audit_lock(
    lock_id: LockId,
    snaps: Dict[NodeId, LockSnapshot],
    alive: Set[NodeId],
    quiescent: bool,
    findings: List[AuditFinding],
) -> None:
    """Audit one lock's per-node beliefs; append findings."""

    believers = sorted(
        node
        for node, snap in snaps.items()
        if snap.believes_token and not snap.fenced
    )
    if len(believers) > 1:
        findings.append(
            AuditFinding(
                rule="token-split",
                severity=VIOLATION,
                lock=lock_id,
                nodes=tuple(believers),
                detail=f"{len(believers)} nodes believe they hold the token",
            )
        )
    elif not believers:
        fenced_believers = sorted(
            node
            for node, snap in snaps.items()
            if snap.believes_token and snap.fenced
        )
        if not fenced_believers:
            # A fenced believer is not "missing": the token exists but
            # its holder revoked itself; liveness resumes through
            # regeneration on the quorum side, and any residual holds
            # there are the expired-but-held rule's business.
            findings.append(
                AuditFinding(
                    rule="token-missing",
                    severity=_transient(quiescent),
                    lock=lock_id,
                    nodes=tuple(sorted(snaps)),
                    detail="no alive node believes it holds the token",
                )
            )

    # -- copyset/tree edges: acyclic, rooted at the token believer ------
    seen_cycles: Set[frozenset] = set()
    for start in sorted(snaps):
        path: List[NodeId] = []
        on_path: Set[NodeId] = set()
        node: Optional[NodeId] = start
        while node is not None:
            if node in on_path:
                cycle = path[path.index(node):]
                key = frozenset(cycle)
                if key in seen_cycles:
                    break  # Already reported via another walk start.
                seen_cycles.add(key)
                pivot = cycle.index(min(cycle, key=str))
                cycle = cycle[pivot:] + cycle[:pivot]
                # A cycle of entirely idle nodes is stale routing residue
                # (e.g. pre-heal edges left behind by partition recovery;
                # a fresh request re-routes via recovery token hints), so
                # it stays a warning even at quiescence.  Any member with
                # live state makes it a real structural fault.
                idle = all(
                    quiescent_idle(snaps[member])
                    for member in cycle
                    if member in snaps
                )
                detail = "parent edges form a cycle " + " -> ".join(
                    str(n) for n in cycle + [cycle[0]]
                )
                if idle:
                    detail += " (all members idle: stale routing residue)"
                findings.append(
                    AuditFinding(
                        rule="copyset-cycle",
                        severity=(
                            WARNING if idle else _transient(quiescent)
                        ),
                        lock=lock_id,
                        nodes=tuple(cycle),
                        detail=detail,
                    )
                )
                break
            path.append(node)
            on_path.add(node)
            snap = snaps.get(node)
            if snap is None:
                # The chain leads to an alive node with no state for this
                # lock — the signature of a blank rejoin after a crash.
                findings.append(
                    AuditFinding(
                        rule="copyset-unrooted",
                        severity=_transient(quiescent),
                        lock=lock_id,
                        nodes=(path[-2] if len(path) > 1 else start, node),
                        detail=f"edge points at node {node}, which has no "
                        "state for this lock",
                    )
                )
                break
            if snap.parent is None:
                if not snap.believes_token and not quiescent_idle(snap):
                    findings.append(
                        AuditFinding(
                            rule="copyset-unrooted",
                            severity=_transient(quiescent),
                            lock=lock_id,
                            nodes=(start, node),
                            detail=f"edge chain from node {start} ends at "
                            f"node {node}, which does not believe it "
                            "holds the token",
                        )
                    )
                break
            node = snap.parent
        if len(path) > 64 * max(1, len(alive)):  # pragma: no cover - guard
            break

    # -- references to dead peers ---------------------------------------
    for node, snap in sorted(snaps.items()):
        if snap.parent is not None and snap.parent not in alive:
            findings.append(
                AuditFinding(
                    rule="dead-reference",
                    severity=_transient(quiescent),
                    lock=lock_id,
                    nodes=(node, snap.parent),
                    detail=f"node {node} still points at dead node "
                    f"{snap.parent}",
                )
            )
        for child, mode in snap.children:
            if child not in alive:
                findings.append(
                    AuditFinding(
                        rule="dead-reference",
                        severity=_transient(quiescent),
                        lock=lock_id,
                        nodes=(node, child),
                        detail=f"node {node} records dead node {child} "
                        f"as a {mode} child",
                    )
                )
        for entry in snap.queue:
            if entry.origin not in alive:
                findings.append(
                    AuditFinding(
                        rule="dead-reference",
                        severity=_transient(quiescent),
                        lock=lock_id,
                        nodes=(node, entry.origin),
                        detail=f"node {node} queues a {entry.mode} request "
                        f"from dead node {entry.origin}",
                    )
                )

    # -- Rule 1: concurrently believed holds pairwise compatible --------
    holds: List[Tuple[NodeId, LockMode]] = []
    for node, snap in sorted(snaps.items()):
        holds.extend((node, mode) for mode in snap.held_modes())
    for index, (node_a, mode_a) in enumerate(holds):
        for node_b, mode_b in holds[index + 1:]:
            if node_a == node_b:
                continue  # One node may stack self-compatible holds.
            if not compatible(mode_a, mode_b):
                findings.append(
                    AuditFinding(
                        rule="rule1",
                        severity=VIOLATION,
                        lock=lock_id,
                        nodes=(node_a, node_b),
                        detail=f"node {node_a} holds {mode_a} while node "
                        f"{node_b} holds incompatible {mode_b}",
                    )
                )

    # -- quiescence: no request may remain pending or queued ------------
    if quiescent:
        for node, snap in sorted(snaps.items()):
            if snap.pending is not None:
                findings.append(
                    AuditFinding(
                        rule="stuck-request",
                        severity=VIOLATION,
                        lock=lock_id,
                        nodes=(node,),
                        detail=f"node {node} still has a pending "
                        f"{snap.pending} request after the drain",
                    )
                )
            if snap.queue:
                findings.append(
                    AuditFinding(
                        rule="stuck-request",
                        severity=VIOLATION,
                        lock=lock_id,
                        nodes=(node,),
                        detail=f"node {node} still queues "
                        f"{len(snap.queue)} requests after the drain",
                    )
                )


def _audit_leases(
    view: ClusterView, findings: List[AuditFinding]
) -> None:
    """Reconcile the lease layer's beliefs with the lock automata.

    Two rules, both applicable only to nodes that expose lease health
    (``RecoveryHealth.leases``); clusters without the lease layer are
    untouched:

    * ``expired-but-held`` — a node that lease-fenced itself (its leases
      expired while it was quorum-silent) must have force-released every
      hold; any residual held mode means the fence failed.
    * ``double-active-lease`` — two different holders advertising active
      leases in incompatible modes on one lock is the lease-level
      Rule-1 break: a revocation granted over a hold that was still
      covered.
    """

    now = view.captured_at
    active: Dict[LockId, List[Tuple[NodeId, str, int]]] = {}
    for node in view.nodes:
        if not node.alive or node.recovery is None:
            continue
        info = node.recovery.leases
        if info is None:
            continue
        if info.get("fenced"):
            for snap in node.locks:
                if snap.held:
                    findings.append(
                        AuditFinding(
                            rule="expired-but-held",
                            severity=VIOLATION,
                            lock=snap.lock,
                            nodes=(node.node,),
                            detail=f"node {node.node} is lease-fenced but "
                            f"still holds {list(snap.held)}",
                        )
                    )
        for row in info.get("own", ()):
            lock, mode, holder, _token, deadline = row
            if float(deadline) > now:
                active.setdefault(lock, []).append(
                    (holder, str(mode), int(_token))
                )
    for lock_id in sorted(active, key=str):
        entries = active[lock_id]
        for index, (node_a, mode_a, _ta) in enumerate(entries):
            for node_b, mode_b, _tb in entries[index + 1:]:
                if node_a == node_b:
                    continue
                if not compatible(LockMode(mode_a), LockMode(mode_b)):
                    findings.append(
                        AuditFinding(
                            rule="double-active-lease",
                            severity=VIOLATION,
                            lock=lock_id,
                            nodes=(node_a, node_b),
                            detail=f"node {node_a} leases {mode_a} while "
                            f"node {node_b} leases incompatible {mode_b}",
                        )
                    )


def _audit_views(
    view: ClusterView, quiescent: bool, findings: List[AuditFinding]
) -> None:
    """Check that every alive recovery node agrees on the membership view.

    While a view change is in flight some nodes legitimately run one
    epoch behind (the install broadcast races the snapshot), so
    disagreement is a warning; at quiescence nothing is in flight —
    heartbeat anti-entropy must have converged every member — and a
    skew escalates to a violation.  Nodes on the *same* epoch but with
    different member lists are always a violation: epochs name views
    uniquely, so that state is unreachable through correct installs.
    """

    epochs: Dict[NodeId, Tuple[int, Tuple[NodeId, ...]]] = {}
    for node in view.nodes:
        if not node.alive or node.recovery is None:
            continue
        epochs[node.node] = (
            node.recovery.view_epoch,
            tuple(node.recovery.view_members),
        )
    if len(epochs) < 2:
        return
    seen_epochs = {epoch for epoch, _members in epochs.values()}
    if len(seen_epochs) > 1:
        findings.append(
            AuditFinding(
                rule="view-skew",
                severity=_transient(quiescent),
                nodes=tuple(sorted(epochs)),
                detail="nodes disagree on the view epoch: "
                + ", ".join(
                    f"node {node}@{epochs[node][0]}"
                    for node in sorted(epochs)
                ),
            )
        )
    for epoch in sorted(seen_epochs):
        members = {
            epochs[node][1]
            for node in epochs
            if epochs[node][0] == epoch and epochs[node][1]
        }
        if len(members) > 1:
            findings.append(
                AuditFinding(
                    rule="view-skew",
                    severity=VIOLATION,
                    nodes=tuple(
                        sorted(
                            node
                            for node in epochs
                            if epochs[node][0] == epoch
                        )
                    ),
                    detail=f"nodes at view epoch {epoch} disagree on the "
                    "member list",
                )
            )


def quiescent_idle(snap: LockSnapshot) -> bool:
    """Whether *snap* shows no activity that needs a root to resolve.

    A node that merely remembers an old parent edge (no holds, no queue,
    no pending request) is harmless even if that edge is stale; flagging
    it would make every finished Naimi run look unrooted.
    """

    return (
        not snap.held
        and not snap.queue
        and snap.pending is None
        and not snap.children
    )


def audit_view(
    view: ClusterView,
    quiescent: bool = False,
    mean_grant_latency: Optional[float] = None,
    starvation_factor: float = DEFAULT_STARVATION_FACTOR,
    deadlocks: int = 0,
) -> AuditReport:
    """Run the online invariant audit over *view*.

    With ``quiescent=True`` (after a drain, when no message can be in
    flight) transient findings escalate to violations.  The starvation
    watch fires for queue entries older than ``starvation_factor`` times
    *mean_grant_latency* (skipped when no latency baseline is known).
    *deadlocks* is the number of confirmed wait-for cycles reported by
    the deadlock watchdog, surfaced as a finding so application
    deadlocks appear in the same verdict as protocol invariants.
    """

    findings: List[AuditFinding] = []
    alive = set(view.alive_nodes())
    lock_ids = view.lock_ids()
    for lock_id in lock_ids:
        snaps: Dict[NodeId, LockSnapshot] = {}
        for node in view.nodes:
            if not node.alive:
                continue
            snap = node.lock(lock_id)
            if snap is not None:
                snaps[node.node] = snap
        _audit_lock(lock_id, snaps, alive, quiescent, findings)

    # -- lease reconciliation (nodes exposing lease health only) --------
    _audit_leases(view, findings)

    # -- membership view agreement (nodes exposing recovery health) -----
    _audit_views(view, quiescent, findings)

    if mean_grant_latency is not None and mean_grant_latency > 0:
        threshold = starvation_factor * mean_grant_latency
        for node in view.nodes:
            for snap in node.locks:
                for entry in snap.queue:
                    if entry.age is not None and entry.age > threshold:
                        findings.append(
                            AuditFinding(
                                rule="starvation",
                                severity=WARNING,
                                lock=snap.lock,
                                nodes=(node.node, entry.origin),
                                detail=f"request {entry.key} ({entry.mode}) "
                                f"queued at node {node.node} for "
                                f"{entry.age:.3f}s (> {starvation_factor:g}x "
                                f"mean grant latency "
                                f"{mean_grant_latency:.3f}s)",
                            )
                        )

    if deadlocks > 0:
        findings.append(
            AuditFinding(
                rule="deadlock",
                severity=VIOLATION,
                detail=f"the wait-for-graph watchdog confirmed "
                f"{deadlocks} deadlock cycle(s)",
            )
        )

    order = {rule: index for index, rule in enumerate(AUDIT_RULES)}
    findings.sort(key=lambda f: (order.get(f.rule, len(order)), str(f.lock)))
    return AuditReport(
        findings=tuple(findings),
        locks_checked=len(lock_ids),
        nodes_checked=len(view.nodes),
        quiescent=quiescent,
    )


# ---------------------------------------------------------------------------
# The stateful poller.
# ---------------------------------------------------------------------------


def observed_mean_grant_latency(observer) -> Optional[float]:
    """Mean issue-to-grant latency over an observer's completed spans."""

    if observer is None:
        return None
    samples = [
        span.latency
        for span in observer.completed_spans()
        if span.latency is not None
    ]
    if not samples:
        return None
    return sum(samples) / len(samples)


class LiveMonitor:
    """Polls a cluster view source, ages queue entries, runs the audit.

    The automata deliberately keep no timestamps in their queues (that
    would mutate protocol state per poll); instead this monitor records
    when it *first saw* each queue entry's span key and attributes ages
    on subsequent polls — in the cluster's own timebase, since ages are
    differences of ``captured_at`` values.

    Thread-safe: the HTTP endpoint polls from request-handler threads.
    """

    def __init__(
        self,
        source: Callable[[], ClusterView],
        observer=None,
        starvation_factor: float = DEFAULT_STARVATION_FACTOR,
    ) -> None:
        self._source = source
        #: Optional :class:`~repro.obs.collect.RunObserver`: supplies the
        #: mean-grant-latency baseline for the starvation watch and the
        #: deadlock fault counter.
        self._observer = observer
        self._starvation_factor = starvation_factor
        self._mutex = threading.Lock()
        self._first_seen: Dict[Tuple[NodeId, LockId, str], float] = {}

    def poll(
        self, quiescent: bool = False
    ) -> Tuple[ClusterView, AuditReport]:
        """Capture one view, age its queues and audit it."""

        view = self._source()
        with self._mutex:
            view = self._with_ages(view)
        deadlocks = 0
        if self._observer is not None:
            deadlocks = int(self._observer.faults.total("deadlock"))
        report = audit_view(
            view,
            quiescent=quiescent,
            mean_grant_latency=observed_mean_grant_latency(self._observer),
            starvation_factor=self._starvation_factor,
            deadlocks=deadlocks,
        )
        return view, report

    def _with_ages(self, view: ClusterView) -> ClusterView:
        """Rebuild *view* with queue-entry ages; prune vanished entries."""

        now = view.captured_at
        seen: Set[Tuple[NodeId, LockId, str]] = set()
        nodes: List[NodeSnapshot] = []
        for node in view.nodes:
            locks: List[LockSnapshot] = []
            for snap in node.locks:
                if not snap.queue:
                    locks.append(snap)
                    continue
                entries: List[QueueEntry] = []
                for entry in snap.queue:
                    slot = (node.node, snap.lock, entry.key)
                    seen.add(slot)
                    first = self._first_seen.setdefault(slot, now)
                    entries.append(
                        dataclasses.replace(entry, age=max(0.0, now - first))
                    )
                locks.append(
                    dataclasses.replace(snap, queue=tuple(entries))
                )
            nodes.append(dataclasses.replace(node, locks=tuple(locks)))
        for slot in [s for s in self._first_seen if s not in seen]:
            del self._first_seen[slot]
        return dataclasses.replace(view, nodes=tuple(nodes))

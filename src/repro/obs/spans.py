"""Request-lifecycle spans: one record per lock request, phase by phase.

A span is the ordered list of ``(phase, timestamp)`` transitions one
request went through::

    issued → [enqueued → [frozen →]] granted → [released]

The bracketed phases only appear when the request actually waited
(``enqueued``) or was blocked by Rule 6 freezing (``frozen``).  The
paper's per-request figures all derive from these transitions: grant
latency is ``granted - issued``, queueing time is ``granted - enqueued``,
hold time is ``released - granted``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from .sink import GRANTED, ISSUED, PHASE_ORDER, RELEASED


@dataclasses.dataclass
class RequestSpan:
    """The recorded lifecycle of one lock request.

    ``kind`` is the request's mode label (``"R"``, ``"IW"``, …) as the
    metrics layer names it; ``phases`` is append-only and kept in event
    order by the collector.
    """

    node: int
    lock: str
    kind: str
    phases: List[Tuple[str, float]] = dataclasses.field(default_factory=list)
    #: Canonical span-key string (``"origin.serial"`` for the
    #: hierarchical protocol, ``"lock:origin"`` for the token baselines);
    #: joins this span with its causal chain (``TraceChain.span_key``).
    key: Optional[str] = None

    # -- recording -------------------------------------------------------

    def mark(self, phase: str, time: float) -> None:
        """Append one phase transition (idempotent per phase name)."""

        if self.time_of(phase) is None:
            self.phases.append((phase, time))

    # -- lookups ---------------------------------------------------------

    def time_of(self, phase: str) -> Optional[float]:
        """Timestamp of the first transition into *phase*, if recorded."""

        for name, time in self.phases:
            if name == phase:
                return time
        return None

    @property
    def issued_at(self) -> Optional[float]:
        """When the request was issued (first phase as a fallback)."""

        issued = self.time_of(ISSUED)
        if issued is not None:
            return issued
        return self.phases[0][1] if self.phases else None

    @property
    def granted_at(self) -> Optional[float]:
        """When the request was granted (None while still waiting)."""

        return self.time_of(GRANTED)

    @property
    def released_at(self) -> Optional[float]:
        """When the granted hold was released (None while held)."""

        return self.time_of(RELEASED)

    @property
    def latency(self) -> Optional[float]:
        """Issue-to-grant latency (the paper's request latency)."""

        return self.wait(ISSUED, GRANTED)

    def wait(self, start: str, end: str) -> Optional[float]:
        """Seconds spent between two recorded phases (None if either is
        missing)."""

        begin, finish = self.time_of(start), self.time_of(end)
        if begin is None or finish is None:
            return None
        return finish - begin

    def is_monotonic(self) -> bool:
        """True iff phases appear in lifecycle order with non-decreasing
        timestamps — the invariant every emitting hook must preserve."""

        last_order = -1
        last_time = float("-inf")
        for name, time in self.phases:
            order = PHASE_ORDER.get(name, -1)
            if order < last_order or time < last_time:
                return False
            last_order, last_time = order, time
        return True

    # -- serialization ---------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable dict (see :mod:`repro.obs.export`)."""

        payload: Dict[str, object] = {
            "node": self.node,
            "lock": self.lock,
            "kind": self.kind,
            "phases": [[name, time] for name, time in self.phases],
        }
        if self.key is not None:
            payload["key"] = self.key
        return payload

    @staticmethod
    def from_payload(payload: Dict[str, object]) -> "RequestSpan":
        """Rebuild a span from :meth:`to_payload` output."""

        return RequestSpan(
            node=payload["node"],
            lock=payload["lock"],
            kind=payload["kind"],
            phases=[(name, time) for name, time in payload["phases"]],
            key=payload.get("key"),
        )

"""Causal request tracing: hop records, chains, critical-path attribution.

The tracer reconstructs, per lock request, the *causal chain* of wire
messages it triggered — request → forward hops → grant-by-copyset or
token transfer → release — across all three protocols and every
transport.  The mechanism is deliberately split in two:

* **Automata** only copy the triggering message's
  :class:`~repro.core.messages.TraceContext` onto causally dependent
  replies (``trace=msg.trace``) — a *parent hint*, pure data plumbing
  with no tracer dependency, zero cost when tracing is off.
* **Transports** own the tracer.  At send time they resolve the hint (or
  fall back to request identity, the current delivery scope, or a grant
  ancestry map) into a fresh hop and stamp the outgoing copy; at delivery
  time they record the arrival and open a *delivery scope* so replies
  built inside the handler inherit causality even without a hint.

Stamping replaces envelopes (frozen dataclasses) rather than mutating
them, draws no randomness and sends no messages of its own, so a traced
run is bit-identical to an untraced one in every protocol-visible way.

Hop kinds: ``"send"`` for ordinary hops, ``"retransmit"`` for
session-channel / application-level re-sends of an already stamped
message (recorded as an extra annotated hop sharing the original's
parent), ``"regen"`` for messages born from an epoch-fenced token
regeneration, ``"replay"`` for messages re-issued from a durable journal
during a restarted node's rejoin (see :mod:`repro.persist`).
``"heartbeat"`` and ``"session-ack"`` traffic is liveness machinery, not
request causality, and is never traced.

:func:`critical_path` walks a granted chain backwards from the grant hop
and tiles the interval ``[issued_at, granted_at]`` into transit,
queue-wait, freeze-wait and recovery-stall segments that sum *exactly*
to the span-measured grant latency.  See docs/TRACING.md.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..core.messages import Envelope, LockId, NodeId, TraceContext

#: ``() -> float`` time source (shared with the owning RunObserver).
Clock = Callable[[], float]

#: Message labels that never become causal hops.
UNTRACED_LABELS = frozenset({"heartbeat", "session-ack"})

#: Class-name → report label, covering every message type in the tree
#: (duck-typed so the tracer imports no protocol module).
_LABELS = {
    "RequestMessage": "request",
    "GrantMessage": "grant",
    "TokenMessage": "token",
    "ReleaseMessage": "release",
    "FreezeMessage": "freeze",
    "NaimiRequestMessage": "request",
    "NaimiTokenMessage": "token",
    "RaymondRequestMessage": "request",
    "RaymondPrivilegeMessage": "token",
    "SessionMessage": "session",
    "SessionAck": "session-ack",
    "HeartbeatMessage": "heartbeat",
    "OrphanReport": "orphan-report",
    "TokenProbe": "token-probe",
    "TokenAck": "token-ack",
    "ReparentMessage": "reparent",
}

#: Labels whose aux chains count as recovery activity.
_RECOVERY_LABELS = frozenset(
    {"orphan-report", "token-probe", "token-ack", "reparent"}
)

#: Critical-path segment names, in render order.
PATH_SEGMENTS = ("transit", "queue", "freeze", "recovery")


def message_label(message: object) -> str:
    """Report label for any protocol/session message (duck-typed)."""

    return _LABELS.get(type(message).__name__, type(message).__name__.lower())


def canonical_span_key(key: object) -> str:
    """Canonical string form of an obs span key, matching trace ids.

    The hierarchical protocol keys spans by ``(origin, serial)`` of the
    RequestId (canonical ``"origin.serial"``, which *is* the trace id);
    the token baselines key by ``(lock_id, origin)`` (canonical
    ``"lock:origin"``, the trace-id prefix before ``#``).
    """

    if isinstance(key, tuple) and len(key) == 2:
        first, second = key
        if isinstance(first, int):
            return f"{first}.{second}"
        return f"{first}:{second}"
    serial = getattr(key, "serial", None)
    origin = getattr(key, "origin", None)
    if serial is not None and origin is not None:
        return f"{origin}.{serial}"
    return str(key)


@dataclasses.dataclass
class Hop:
    """One wire message attributed to a causal chain."""

    hop: int  #: 1-based id within the chain.
    parent: int  #: id of the causally preceding hop; 0 = the issue event.
    sender: NodeId
    dest: NodeId
    label: str
    kind: str = "send"
    sent_at: Optional[float] = None
    recv_at: Optional[float] = None
    #: Extra deliveries of the same stamped message (fault duplicates).
    duplicates: int = 0

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "hop": self.hop,
            "parent": self.parent,
            "from": self.sender,
            "to": self.dest,
            "label": self.label,
        }
        if self.kind != "send":
            payload["kind"] = self.kind
        if self.sent_at is not None:
            payload["sent"] = self.sent_at
        if self.recv_at is not None:
            payload["recv"] = self.recv_at
        if self.duplicates:
            payload["dup"] = self.duplicates
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Hop":
        return cls(
            hop=int(payload["hop"]),
            parent=int(payload["parent"]),
            sender=payload["from"],
            dest=payload["to"],
            label=str(payload["label"]),
            kind=str(payload.get("kind", "send")),
            sent_at=payload.get("sent"),
            recv_at=payload.get("recv"),
            duplicates=int(payload.get("dup", 0)),
        )


@dataclasses.dataclass
class TraceChain:
    """The reconstructed causal chain of one request (or aux activity)."""

    trace_id: str
    origin: NodeId
    lock: LockId
    issued_at: float
    #: ``"request"`` for chains rooted at a lock request; ``"aux"`` for
    #: grant-ancestry activity (releases, freezes) that outlived its
    #: request chain; ``"recovery"`` for failure-detector traffic.
    kind: str = "request"
    hops: List[Hop] = dataclasses.field(default_factory=list)
    granted_hop: Optional[int] = None
    granted_at: Optional[float] = None

    @property
    def span_key(self) -> str:
        """Canonical span key this chain joins with (trace id sans ``#n``)."""

        return self.trace_id.rsplit("#", 1)[0]

    @property
    def hop_count(self) -> int:
        """Wire messages attributed to this chain (includes retransmits)."""

        return len(self.hops)

    def hop_index(self) -> Dict[int, Hop]:
        return {hop.hop: hop for hop in self.hops}

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "id": self.trace_id,
            "origin": self.origin,
            "lock": self.lock,
            "issued": self.issued_at,
            "kind": self.kind,
            "hops": [hop.to_payload() for hop in self.hops],
        }
        if self.granted_hop is not None:
            payload["granted_hop"] = self.granted_hop
        if self.granted_at is not None:
            payload["granted"] = self.granted_at
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "TraceChain":
        return cls(
            trace_id=str(payload["id"]),
            origin=payload["origin"],
            lock=str(payload["lock"]),
            issued_at=float(payload["issued"]),
            kind=str(payload.get("kind", "request")),
            hops=[Hop.from_payload(raw) for raw in payload.get("hops", [])],
            granted_hop=payload.get("granted_hop"),
            granted_at=payload.get("granted"),
        )


def critical_path(
    chain: TraceChain, frozen_at: Optional[float] = None
) -> Optional[Dict[str, object]]:
    """Decompose a granted chain's latency into path segments.

    Walks parent links from the grant hop back to the issue event and
    tiles ``[issued_at, granted_at]`` with alternating wait and transit
    intervals — no clamping, no gaps, so the segments sum exactly to the
    grant latency.  Waits overlapping a retransmit/regen hop's send are
    recovery stalls; the final wait after *frozen_at* (the span's Rule-6
    freeze timestamp, when known) is freeze wait; everything else on the
    granting side is queue wait.  Returns ``None`` for ungranted chains.
    """

    if chain.granted_hop is None or chain.granted_at is None:
        return None
    index = chain.hop_index()
    path: List[Hop] = []
    cursor = index.get(chain.granted_hop)
    while cursor is not None:
        path.append(cursor)
        cursor = index.get(cursor.parent)
    path.reverse()

    recovery_sends = [
        hop.sent_at
        for hop in chain.hops
        if hop.kind in ("retransmit", "regen", "replay")
        and hop.sent_at is not None
    ]
    segments = {name: 0.0 for name in PATH_SEGMENTS}
    prev = chain.issued_at
    for position, hop in enumerate(path):
        sent = hop.sent_at if hop.sent_at is not None else prev
        wait = sent - prev
        if wait:
            stalled = any(prev < t <= sent for t in recovery_sends)
            if stalled:
                segments["recovery"] += wait
            elif (
                position == len(path) - 1
                and frozen_at is not None
                and frozen_at < sent
            ):
                freeze = sent - max(prev, frozen_at)
                segments["freeze"] += freeze
                segments["queue"] += wait - freeze
            else:
                segments["queue"] += wait
        recv = hop.recv_at if hop.recv_at is not None else sent
        segments["transit"] += recv - sent
        prev = recv

    return {
        "segments": segments,
        "total": chain.granted_at - chain.issued_at,
        "path_hops": len(path),
        "path": [hop.hop for hop in path],
    }


class MessageTracer:
    """Collects causal hop records for every traced message of a run.

    One instance serves a whole cluster; a mutex makes it safe for the
    threaded transports (the simulator path never contends).  All public
    entry points are called by transports only — never by automata.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock: Clock = clock if clock is not None else (lambda: 0.0)
        self._mutex = threading.Lock()
        self._chains: Dict[str, TraceChain] = {}
        self._hops: Dict[Tuple[str, int], Hop] = {}
        self._next_hop: Dict[str, int] = {}
        #: Active request identity → trace id (cleared at grant).
        self._by_request: Dict[Tuple, str] = {}
        #: Last delivered hop per trace (default parent for keyed sends).
        self._last_hop: Dict[str, int] = {}
        #: (node, lock) → (trace id, grant hop) of the latest grant
        #: delivered there; attributes releases/freezes with no hint.
        self._last_granted: Dict[Tuple[NodeId, LockId], Tuple[str, int]] = {}
        #: Stamped upstream (session channel) but not yet on the wire.
        self._pending: set = set()
        #: Stamped hops that crossed the wire at least once.
        self._sent: set = set()
        #: Open delivery scopes / recovery-kind annotations, keyed by
        #: (node, thread ident) so concurrent dispatchers never collide.
        self._scopes: Dict[Tuple[NodeId, int], Tuple[str, int]] = {}
        self._kinds: Dict[Tuple[NodeId, int], str] = {}
        self._aux: Dict[Tuple, str] = {}
        self._root_serials: Dict[str, int] = {}

    def bind_clock(self, clock: Clock) -> None:
        """Adopt the owning observer's run clock."""

        self._clock = clock

    # -- chain access -----------------------------------------------------

    def chains(self) -> List[TraceChain]:
        """Every chain recorded so far, in mint order."""

        with self._mutex:
            return list(self._chains.values())

    def total_hops(self) -> int:
        """Total wire messages attributed to any chain."""

        with self._mutex:
            return sum(len(c.hops) for c in self._chains.values())

    # -- send side --------------------------------------------------------

    def outbound(self, sender: NodeId, envelope: Envelope) -> Envelope:
        """Record *envelope* leaving *sender*; return the stamped copy.

        Called by every transport at the instant a message is accepted
        onto the wire (after fault-injector drops, mirroring the metrics
        observer, so dropped sends never become hops).
        """

        message = envelope.message
        inner = getattr(message, "payload", None) or message
        label = message_label(inner)
        if label in UNTRACED_LABELS:
            return envelope
        now = self._clock()
        with self._mutex:
            ctx = getattr(message, "trace", None)
            if ctx is not None:
                ident = (ctx.trace_id, ctx.hop)
                if ident in self._pending:
                    # Stamped upstream by the session channel; first
                    # actual wire crossing.
                    self._pending.discard(ident)
                    self._sent.add(ident)
                    self._hops[ident].sent_at = now
                    return envelope
                hop = self._hops.get(ident)
                if (
                    hop is not None
                    and ident in self._sent
                    and hop.sender == sender
                    and hop.dest == envelope.dest
                ):
                    # Verbatim re-send of an already stamped message:
                    # an annotated retransmit hop, sibling of the
                    # original (same parent, no arrival expected).
                    self._append_hop(
                        ctx.trace_id,
                        parent=hop.parent,
                        sender=sender,
                        dest=envelope.dest,
                        label=label,
                        kind="retransmit",
                        sent_at=now,
                    )
                    return envelope
            trace_id, parent = self._resolve(
                sender, envelope.dest, inner, ctx, now
            )
            kind = self._kinds.get((sender, threading.get_ident()), "send")
            new_hop = self._append_hop(
                trace_id,
                parent=parent,
                sender=sender,
                dest=envelope.dest,
                label=label,
                kind=kind,
                sent_at=now,
            )
            self._sent.add((trace_id, new_hop.hop))
            stamped = TraceContext(
                trace_id=trace_id,
                hop=new_hop.hop,
                parent=parent,
                origin=self._chains[trace_id].origin,
                kind=kind,
            )
        return Envelope(envelope.dest, self._stamp(message, inner, stamped))

    def stamp_frame(self, sender: NodeId, dest: NodeId, frame):
        """Pre-stamp a session frame before the channel stores it.

        The reliable channel keeps the very object it sends in its
        ``unacked`` buffer, so stamping must happen *before* storage —
        retransmissions then re-send the stamped frame and the tracer
        recognizes them (same trace id and hop) as annotated retransmit
        hops instead of minting fresh ones.  The hop's ``sent_at`` stays
        unset until :meth:`outbound` sees it cross the wire.
        """

        payload = frame.payload
        label = message_label(payload)
        if label in UNTRACED_LABELS:
            return frame
        now = self._clock()
        with self._mutex:
            ctx = getattr(payload, "trace", None)
            trace_id, parent = self._resolve(sender, dest, payload, ctx, now)
            kind = self._kinds.get((sender, threading.get_ident()), "send")
            new_hop = self._append_hop(
                trace_id,
                parent=parent,
                sender=sender,
                dest=dest,
                label=label,
                kind=kind,
                sent_at=None,
            )
            self._pending.add((trace_id, new_hop.hop))
            stamped = TraceContext(
                trace_id=trace_id,
                hop=new_hop.hop,
                parent=parent,
                origin=self._chains[trace_id].origin,
                kind=kind,
            )
        return dataclasses.replace(
            frame,
            trace=stamped,
            payload=dataclasses.replace(payload, trace=stamped),
        )

    # -- receive side -----------------------------------------------------

    def delivered(self, node: NodeId, message: object) -> None:
        """Record the arrival of *message* at *node*."""

        ctx = getattr(message, "trace", None)
        if ctx is None:
            return
        inner = getattr(message, "payload", None) or message
        now = self._clock()
        with self._mutex:
            hop = self._hops.get((ctx.trace_id, ctx.hop))
            if hop is None or hop.dest != node:
                # Stale parent hint on a locally delivered message, or a
                # chain the tracer never opened — not an arrival.
                return
            if hop.recv_at is None:
                hop.recv_at = now
            else:
                hop.duplicates += 1
            self._last_hop[ctx.trace_id] = ctx.hop
            chain = self._chains[ctx.trace_id]
            if (
                chain.granted_hop is None
                and chain.kind == "request"
                and node == chain.origin
                and message_label(inner) in ("grant", "token")
            ):
                chain.granted_hop = ctx.hop
                chain.granted_at = hop.recv_at
                self._last_granted[(node, chain.lock)] = (
                    ctx.trace_id,
                    ctx.hop,
                )
                for key, tid in list(self._by_request.items()):
                    if tid == ctx.trace_id:
                        del self._by_request[key]

    def begin_delivery(self, node: NodeId, message: object) -> None:
        """Open a delivery scope: replies the handler sends from this
        thread inherit *message*'s chain when they carry no hint."""

        ctx = getattr(message, "trace", None)
        if ctx is None:
            return
        with self._mutex:
            hop = self._hops.get((ctx.trace_id, ctx.hop))
            if hop is None or hop.dest != node:
                return
            self._scopes[(node, threading.get_ident())] = (
                ctx.trace_id,
                ctx.hop,
            )

    def end_delivery(self, node: NodeId) -> None:
        with self._mutex:
            self._scopes.pop((node, threading.get_ident()), None)

    @contextlib.contextmanager
    def annotated(self, node: NodeId, kind: str) -> Iterator[None]:
        """Mark sends from this (node, thread) with a hop *kind* —
        ``"retransmit"`` / ``"regen"`` / ``"replay"`` around
        recovery-driven dispatch."""

        key = (node, threading.get_ident())
        with self._mutex:
            self._kinds[key] = kind
        try:
            yield
        finally:
            with self._mutex:
                self._kinds.pop(key, None)

    # -- internals --------------------------------------------------------

    def _append_hop(self, trace_id: str, **fields) -> Hop:
        number = self._next_hop.get(trace_id, 0) + 1
        self._next_hop[trace_id] = number
        hop = Hop(hop=number, **fields)
        self._chains[trace_id].hops.append(hop)
        self._hops[(trace_id, number)] = hop
        return hop

    def _mint(
        self,
        trace_id: str,
        origin: NodeId,
        lock: LockId,
        kind: str,
        now: float,
    ) -> TraceChain:
        chain = TraceChain(
            trace_id=trace_id,
            origin=origin,
            lock=lock,
            issued_at=now,
            kind=kind,
        )
        self._chains[trace_id] = chain
        return chain

    def _serial_for(self, base: str) -> int:
        n = self._root_serials.get(base, 0) + 1
        self._root_serials[base] = n
        return n

    def _request_key(self, inner, dest: NodeId) -> Optional[Tuple]:
        """Active-request identity of *inner*, if it names one.

        Hierarchical request/grant/token messages carry a RequestId; a
        Naimi request is keyed by (lock, origin) and the Naimi token by
        (lock, dest) — the destination *is* the requester it serves.
        """

        rid = getattr(inner, "request_id", None)
        if rid is not None:
            return ("rid", rid.origin, rid.serial)
        name = type(inner).__name__
        if name == "NaimiRequestMessage":
            return ("naimi", inner.lock_id, inner.origin)
        if name == "NaimiTokenMessage":
            return ("naimi", inner.lock_id, dest)
        return None

    def _resolve(
        self,
        sender: NodeId,
        dest: NodeId,
        inner,
        ctx: Optional[TraceContext],
        now: float,
    ) -> Tuple[str, int]:
        """Pick (trace id, parent hop) for a message about to be stamped."""

        # 1. Parent hint: the automaton copied the triggering message's
        #    context onto this one.
        if ctx is not None and ctx.trace_id in self._chains:
            return ctx.trace_id, ctx.hop
        # 2. Request identity: the message names an in-flight request.
        key = self._request_key(inner, dest)
        if key is not None and key in self._by_request:
            trace_id = self._by_request[key]
            return trace_id, self._last_hop.get(trace_id, 0)
        # 3. Delivery scope: built inside a traced message's handler.
        scope = self._scopes.get((sender, threading.get_ident()))
        if scope is not None:
            return scope
        # 4. A request leaving its origin: mint a root chain.
        label = message_label(inner)
        if label == "request":
            origin = getattr(inner, "origin", sender)
            rid = getattr(inner, "request_id", None)
            if rid is not None:
                trace_id = f"{rid.origin}.{rid.serial}"
            else:
                base = f"{inner.lock_id}:{origin}"
                trace_id = f"{base}#{self._serial_for(base)}"
            self._mint(trace_id, origin, inner.lock_id, "request", now)
            if key is not None:
                self._by_request[key] = trace_id
            return trace_id, 0
        # 5. Grant ancestry: releases / freezes / upgrade fallout from a
        #    node that was granted this lock earlier.
        granted = self._last_granted.get((sender, inner.lock_id))
        if granted is not None:
            return granted
        # 6. Anything else: an aux chain per (label, sender, lock) —
        #    recovery announcements, stray protocol maintenance.
        aux_key = (label, sender, inner.lock_id)
        trace_id = self._aux.get(aux_key)
        if trace_id is None:
            kind = "recovery" if label in _RECOVERY_LABELS else "aux"
            trace_id = f"{label}:{sender}:{inner.lock_id}#aux"
            self._mint(trace_id, sender, inner.lock_id, kind, now)
            self._aux[aux_key] = trace_id
        return trace_id, 0

    @staticmethod
    def _stamp(message, inner, ctx: TraceContext):
        if inner is not message:
            return dataclasses.replace(
                message,
                trace=ctx,
                payload=dataclasses.replace(inner, trace=ctx),
            )
        return dataclasses.replace(message, trace=ctx)

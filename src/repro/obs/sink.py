"""Hook surface between the runtime layers and the observability layer.

Every instrumented component — the protocol automata, the discrete-event
engine, the simulated network and the threaded/TCP transports — reports
through an :class:`ObsSink`.  The base class implements every hook as a
no-op, so it *is* the null sink: instrumentation sites either hold
``None`` (and skip the call entirely — the zero-cost default that keeps
benchmark numbers unperturbed) or hold a sink and call unconditionally.

The concrete collector lives in :mod:`repro.obs.collect`; this module
deliberately depends only on the core type aliases so every layer can
import it without cycles.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..core.messages import LockId, NodeId
from ..core.modes import LockMode

# -- request-lifecycle phases, in canonical order ------------------------

ISSUED = "issued"
ENQUEUED = "enqueued"
FROZEN = "frozen"
RETRANSMITTED = "retransmitted"
GRANTED = "granted"
RELEASED = "released"

#: All phases a request span can pass through, in lifecycle order.
#: ``RETRANSMITTED`` is emitted by the recovery layer each time a still
#: ungranted request is re-sent; it sits before ``GRANTED`` so spans stay
#: monotonic (retries stop once the grant arrives).
PHASES = (ISSUED, ENQUEUED, FROZEN, RETRANSMITTED, GRANTED, RELEASED)

#: Canonical index of each phase (used by span monotonicity checks).
PHASE_ORDER = {phase: index for index, phase in enumerate(PHASES)}

#: Identity of one request across its phase events.  Protocol-defined and
#: only required to be hashable and unique among in-flight requests:
#: the hierarchical protocol uses ``(origin, serial)`` of its RequestId,
#: the baselines use ``(lock_id, origin)`` (one outstanding request per
#: node and lock).
SpanKey = Hashable


class ObsSink:
    """The observability hook surface; the base class is the null sink.

    Subclass and override what you want to collect (see
    :class:`repro.obs.collect.RunObserver`).  Hooks run inside protocol
    hot paths, so implementations must be cheap and must never raise.
    Timestamps are the collector's business: sinks that record time are
    constructed with a clock (simulated or wall), keeping the emitting
    components transport- and time-agnostic.
    """

    __slots__ = ()

    # -- request lifecycle ----------------------------------------------

    def phase(
        self,
        node: NodeId,
        lock_id: LockId,
        key: Optional[SpanKey],
        phase: str,
        mode: Optional[LockMode] = None,
    ) -> None:
        """The request identified by *key* reached *phase* at *node*.

        ``key=None`` is allowed only for :data:`RELEASED`, where the
        emitting automaton cannot know which hold is being released (a
        held mode is a multiset entry); collectors match it to the oldest
        granted-but-unreleased span of the same (node, lock, mode).
        """

    # -- protocol gauges -------------------------------------------------

    def queue_depth(self, node: NodeId, lock_id: LockId, depth: int) -> None:
        """The local request queue of (*node*, *lock_id*) changed size."""

    def copyset_size(self, node: NodeId, lock_id: LockId, size: int) -> None:
        """The copyset (children map) of (*node*, *lock_id*) changed size."""

    def freeze_size(self, node: NodeId, lock_id: LockId, size: int) -> None:
        """The frozen-mode set in force at (*node*, *lock_id*) changed."""

    # -- wire traffic ----------------------------------------------------

    def message(self, sender: NodeId, dest: NodeId, label: str) -> None:
        """One protocol message of type *label* crossed the fabric."""

    def wire_sent(
        self, sender: NodeId, dest: NodeId, nbytes: int, seconds: float
    ) -> None:
        """*nbytes* were serialized and handed to the wire in *seconds*.

        Real transports report serialized frame sizes; the in-memory
        queue transport reports ``nbytes=0`` with its enqueue-to-dispatch
        latency.
        """

    def wire_received(self, node: NodeId, nbytes: int) -> None:
        """*node* received a frame of *nbytes* off the wire."""

    # -- faults and failures ----------------------------------------------

    def fault(self, kind: str, node: Optional[NodeId] = None) -> None:
        """The fault layer perturbed the run: *kind* is the injector action
        (``"drop"``, ``"duplicate"``, ...) or a recovery event
        (``"crash"``, ``"suspect"``, ``"regenerate"``, ...)."""

    def peer_lost(self, node: NodeId, reason: str) -> None:
        """A transport lost its connection to *node* (disconnect, corrupt
        or oversized frame); lazy reconnect may revive it later."""

    # -- durability --------------------------------------------------------

    def persist_event(self, node: NodeId, kind: str) -> None:
        """*node*'s durability journal recorded an event of *kind* (a WAL
        append labelled by the protocol transition, or ``"snapshot"`` for
        a compaction).  See :mod:`repro.persist`."""

    # -- engine ----------------------------------------------------------

    def engine_tick(self, now: float, events: int) -> None:
        """The event loop finished callback number *events* at time *now*."""


#: Shared do-nothing sink for callers that prefer unconditional calls.
NULL_SINK = ObsSink()

"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish protocol violations from usage mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ProtocolError(ReproError):
    """An internal protocol invariant was violated.

    Raised when a node receives a message that is impossible under the
    protocol rules (for example a token arriving at a node that already
    holds the token).  Seeing this exception always indicates a bug in the
    protocol implementation or a corrupted transport, never a user error.
    """


class LockUsageError(ReproError):
    """The public locking API was used incorrectly.

    Examples: releasing a lock that is not held, upgrading while not
    holding an upgrade (``U``) lock, or requesting a lock while a request
    on the same lock is already pending on the same node.
    """


class InvariantViolation(ReproError):
    """A verification monitor detected a safety violation.

    Raised by :mod:`repro.verification` monitors, e.g. when two nodes
    simultaneously hold incompatible modes on one lock.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an illegal state."""


class ConfigurationError(ReproError):
    """An experiment or cluster was configured with invalid parameters."""

"""Text rendering of experiment results (paper-style rows + ASCII plots).

All experiment modules report through these helpers so the benchmark
harness, the examples and EXPERIMENTS.md show the same rows the paper's
figures plot.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def render_series_table(
    title: str,
    x_label: str,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    precision: int = 2,
) -> str:
    """Render an x-column plus one column per named series."""

    width = max(12, max((len(name) for name in series), default=0) + 2)
    lines = [title]
    header = x_label.ljust(10) + "".join(name.rjust(width) for name in series)
    lines.append(header)
    lines.append("-" * len(header))
    for index, x in enumerate(xs):
        row = f"{x:<10g}"
        for values in series.values():
            value = values[index]
            row += f"{value:>{width}.{precision}f}"
        lines.append(row)
    return "\n".join(lines)


def render_ascii_plot(
    title: str,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
) -> str:
    """A small ASCII scatter of the series (one marker char per series)."""

    markers = "ox+*#@"
    all_values = [v for values in series.values() for v in values]
    if not all_values or not xs:
        return f"{title}\n(no data)"
    y_max = max(all_values) or 1.0
    x_max = max(xs) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for s_index, values in enumerate(series.values()):
        marker = markers[s_index % len(markers)]
        for x, y in zip(xs, values):
            col = min(width - 1, int(x / x_max * (width - 1)))
            row = min(height - 1, int(y / y_max * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = [title, f"y: 0 .. {y_max:.2f}   x: 0 .. {x_max:g}"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def shape_checks(
    checks: List[Tuple[str, bool]],
) -> str:
    """Render pass/fail rows for the qualitative claims being reproduced."""

    lines = ["Shape checks (paper claims):"]
    for description, passed in checks:
        status = "PASS" if passed else "FAIL"
        lines.append(f"  [{status}] {description}")
    return "\n".join(lines)


def monotonically_increasing(values: Sequence[float], slack: float = 0.0) -> bool:
    """True if the series never decreases by more than *slack* (relative)."""

    for earlier, later in zip(values, values[1:]):
        if later < earlier * (1.0 - slack):
            return False
    return True


def superlinear_growth(xs: Sequence[float], ys: Sequence[float]) -> bool:
    """True if y grows faster than linearly in x across the sweep ends.

    Compares the end-to-end growth ratio of y against that of x: a series
    whose y multiplies by more than the x multiple is superlinear in the
    sense of the paper's Figures 5-6 ("superlinear" vs the flat/linear
    competitor curves).
    """

    if len(xs) < 2 or ys[0] <= 0:
        return False
    return (ys[-1] / ys[0]) > (xs[-1] / xs[0])


def flattening(values: Sequence[float], ratio: float = 0.5) -> bool:
    """True if late growth is at most *ratio* of early growth (asymptote).

    Captures the paper's "remains constant after an initial increase"
    claim without demanding exact constancy from a stochastic simulation.
    """

    if len(values) < 3:
        return False
    early = values[len(values) // 2] - values[0]
    late = values[-1] - values[len(values) // 2]
    if early <= 0:
        return late <= max(values) * 0.25
    return late <= early * max(ratio, 0.0) + 1e-9

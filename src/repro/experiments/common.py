"""Shared experiment machinery: run one configuration, collect metrics.

Every figure reproduction boils down to: build a cluster of ``n`` nodes,
spawn one airline client per node, run to completion with safety monitors
attached, and return the :class:`~repro.metrics.MetricsCollector`.  The
three entry points below correspond to the paper's three curves.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, IO, List, Optional, Sequence

from ..core.lockspace import hashed_token_home
from ..errors import ConfigurationError
from ..metrics import MetricsCollector
from ..obs.collect import RunObserver
from ..obs.export import write_run
from ..sim.cluster import SimHierarchicalCluster, SimNaimiCluster
from ..sim.engine import Process, Simulator
from ..sim.rng import Exponential, derive_rng
from ..verification.invariants import (
    CompatibilityMonitor,
    MonitorSet,
    MutualExclusionMonitor,
)
from ..workload.airline import (
    hierarchical_client,
    naimi_pure_client,
    naimi_same_work_client,
)
from ..workload.spec import WorkloadSpec

#: Hard ceiling on simulator callbacks; a run that needs more is livelocked.
DEFAULT_EVENT_BUDGET = 30_000_000


@dataclasses.dataclass
class RunResult:
    """Outcome of one simulated run."""

    protocol: str
    num_nodes: int
    spec: WorkloadSpec
    metrics: MetricsCollector
    sim_time: float
    events: int
    #: Attached when the run was started with ``observe=True``.
    observer: Optional[RunObserver] = None

    def message_overhead(self) -> float:
        """Messages per lock request (Figure 5 y-axis)."""

        return self.metrics.message_overhead()

    def latency_factor(self) -> float:
        """Mean request latency over mean network latency (Figure 6)."""

        return self.metrics.latency_factor(self.spec.latency_mean)

    def trace_meta(self) -> Dict[str, object]:
        """Run-section metadata for the observability JSONL export."""

        return {
            "label": self.protocol,
            "protocol": self.protocol,
            "nodes": self.num_nodes,
            "ops": self.spec.ops_per_node,
            "seed": self.spec.seed,
            "sim_time": round(self.sim_time, 6),
            "events": self.events,
            # The metrics layer's request count is the denominator of
            # every per-request figure (DESIGN.md §6); record it so
            # `repro report` agrees with MetricsCollector exactly.
            "requests": self.metrics.total_requests,
            "messages": self.metrics.total_messages,
        }

    def write_trace(self, stream: IO[str]) -> int:
        """Append this run's observability section to a JSONL stream."""

        if self.observer is None:
            raise ConfigurationError(
                "run was not observed; pass observe=True (or --trace-out)"
            )
        return write_run(stream, self.observer, self.trace_meta())


def write_run_traces(path: str, results: Sequence[RunResult]) -> int:
    """Write every observed run in *results* to *path*; returns lines."""

    lines = 0
    with open(path, "w", encoding="utf-8") as stream:
        for result in results:
            if result.observer is not None:
                lines += result.write_trace(stream)
    return lines


def _drive(
    sim: Simulator, bodies: List, budget: int
) -> None:
    processes = [Process(sim, body) for body in bodies]
    sim.run(max_events=budget)
    for index, process in enumerate(processes):
        if process.error is not None:
            raise ConfigurationError(
                f"client process {index} crashed: "
                f"{type(process.error).__name__}: {process.error}"
            ) from process.error
    blocked = [i for i, p in enumerate(processes) if not p.done.triggered]
    if blocked:
        raise ConfigurationError(
            f"deadlock: client processes {blocked} never finished"
        )


def run_hierarchical(
    num_nodes: int,
    spec: WorkloadSpec,
    check_invariants: bool = True,
    event_budget: int = DEFAULT_EVENT_BUDGET,
    observe: bool = False,
) -> RunResult:
    """Run the airline workload under the hierarchical protocol."""

    sim = Simulator()
    metrics = MetricsCollector()
    observer = RunObserver(clock=lambda: sim.now) if observe else None
    compat = CompatibilityMonitor()
    monitor = MonitorSet([compat]) if check_invariants else None
    cluster = SimHierarchicalCluster(
        num_nodes,
        sim=sim,
        latency=Exponential(spec.latency_mean),
        seed=spec.seed,
        token_home=hashed_token_home(num_nodes),
        monitor=monitor,
        metrics=metrics,
        obs=observer,
    )
    entries = spec.entry_count(num_nodes)
    bodies = [
        hierarchical_client(
            sim,
            cluster.client(node),
            spec,
            entries,
            derive_rng(spec.seed, "hier", num_nodes, node),
            metrics=metrics,
        )
        for node in range(num_nodes)
    ]
    _drive(sim, bodies, event_budget)
    if check_invariants:
        compat.assert_all_released()
        cluster.assert_quiescent_invariants()
    return RunResult(
        protocol="hierarchical",
        num_nodes=num_nodes,
        spec=spec,
        metrics=metrics,
        sim_time=sim.now,
        events=sim.events_processed,
        observer=observer,
    )


def _run_naimi(
    num_nodes: int,
    spec: WorkloadSpec,
    client_factory: Callable,
    protocol: str,
    check_invariants: bool,
    event_budget: int,
    observe: bool = False,
) -> RunResult:
    sim = Simulator()
    metrics = MetricsCollector()
    observer = RunObserver(clock=lambda: sim.now) if observe else None
    mutex = MutualExclusionMonitor()
    monitor = MonitorSet([mutex]) if check_invariants else None
    cluster = SimNaimiCluster(
        num_nodes,
        sim=sim,
        latency=Exponential(spec.latency_mean),
        seed=spec.seed,
        token_home=hashed_token_home(num_nodes),
        monitor=monitor,
        metrics=metrics,
        obs=observer,
    )
    entries = spec.entry_count(num_nodes)
    bodies = [
        client_factory(
            sim,
            cluster.client(node),
            spec,
            entries,
            derive_rng(spec.seed, protocol, num_nodes, node),
            metrics=metrics,
        )
        for node in range(num_nodes)
    ]
    _drive(sim, bodies, event_budget)
    if check_invariants:
        mutex.assert_all_released()
        cluster.assert_quiescent_invariants()
    return RunResult(
        protocol=protocol,
        num_nodes=num_nodes,
        spec=spec,
        metrics=metrics,
        sim_time=sim.now,
        events=sim.events_processed,
        observer=observer,
    )


def run_naimi_same_work(
    num_nodes: int,
    spec: WorkloadSpec,
    check_invariants: bool = True,
    event_budget: int = DEFAULT_EVENT_BUDGET,
    observe: bool = False,
) -> RunResult:
    """Run the airline workload under Naimi *same work*."""

    return _run_naimi(
        num_nodes, spec, naimi_same_work_client, "naimi-same-work",
        check_invariants, event_budget, observe=observe,
    )


def run_naimi_pure(
    num_nodes: int,
    spec: WorkloadSpec,
    check_invariants: bool = True,
    event_budget: int = DEFAULT_EVENT_BUDGET,
    observe: bool = False,
) -> RunResult:
    """Run the airline workload under Naimi *pure* (one global token)."""

    return _run_naimi(
        num_nodes, spec, naimi_pure_client, "naimi-pure",
        check_invariants, event_budget, observe=observe,
    )


#: Node counts used for the full paper-scale sweeps (Figures 5-7).
PAPER_NODE_COUNTS: Sequence[int] = (2, 5, 10, 20, 40, 60, 80, 100, 120)

#: Node counts used by the fast CI-scale sweeps.
QUICK_NODE_COUNTS: Sequence[int] = (2, 4, 8, 16)

RUNNERS: Dict[str, Callable[..., RunResult]] = {
    "hierarchical": run_hierarchical,
    "naimi-same-work": run_naimi_same_work,
    "naimi-pure": run_naimi_pure,
}


def sweep(
    protocol: str,
    node_counts: Sequence[int],
    spec: WorkloadSpec,
    check_invariants: bool = True,
    observe: bool = False,
) -> List[RunResult]:
    """Run *protocol* at every node count and return the results."""

    runner = RUNNERS.get(protocol)
    if runner is None:
        raise ConfigurationError(f"unknown protocol {protocol!r}")
    return [
        runner(n, spec, check_invariants=check_invariants, observe=observe)
        for n in node_counts
    ]

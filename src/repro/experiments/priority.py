"""Extension study: what strict priority arbitration buys (and costs).

One high-priority client competes with a crowd of low-priority writers on
a single exclusive lock.  Under the published FIFO protocol its requests
wait their turn; under ``priority_scheduling`` they jump every queue.
The experiment reports the high-priority client's mean latency under
both policies, plus the crowd's — the cost side: strict priorities defer
low-priority work.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..core.automaton import FULL_PROTOCOL, ProtocolOptions
from ..core.modes import LockMode
from ..metrics import MetricsCollector
from ..sim.cluster import SimHierarchicalCluster
from ..sim.engine import Process, Simulator, Timeout
from ..sim.rng import Exponential, derive_rng
from ..verification.invariants import CompatibilityMonitor

LOCK = "resource"
HIGH_PRIORITY = 10


@dataclasses.dataclass
class PriorityResult:
    """FIFO-vs-priority comparison for the important client."""

    num_nodes: int
    fifo_high_latency: float
    priority_high_latency: float
    fifo_crowd_latency: float
    priority_crowd_latency: float

    @property
    def speedup(self) -> float:
        """High-priority latency improvement from priority scheduling."""

        if self.priority_high_latency <= 0:
            return float("inf")
        return self.fifo_high_latency / self.priority_high_latency

    def render(self) -> str:
        """Comparison rows."""

        return "\n".join(
            [
                f"Priority arbitration study (n={self.num_nodes}, one "
                f"priority-{HIGH_PRIORITY} client vs a priority-0 crowd)",
                "policy      high-prio mean lat (s)   crowd mean lat (s)",
                "-" * 58,
                f"FIFO        {self.fifo_high_latency:>12.3f}        "
                f"{self.fifo_crowd_latency:>12.3f}",
                f"priority    {self.priority_high_latency:>12.3f}        "
                f"{self.priority_crowd_latency:>12.3f}",
                f"high-priority speedup: x{self.speedup:.1f}",
            ]
        )


def _run(
    num_nodes: int,
    ops_per_node: int,
    seed: int,
    options: ProtocolOptions,
) -> MetricsCollector:
    sim = Simulator()
    metrics = MetricsCollector()
    monitor = CompatibilityMonitor()
    cluster = SimHierarchicalCluster(
        num_nodes, sim=sim, seed=seed, monitor=monitor, options=options
    )
    cs = Exponential(0.015)
    idle = Exponential(0.050)

    def client(node: int, priority: int):
        rng = derive_rng(seed, "prio", node)
        handle = cluster.client(node)
        kind = "high" if priority > 0 else "crowd"
        for _ in range(ops_per_node):
            yield Timeout(sim, idle.sample(rng))
            issued = sim.now
            yield handle.acquire(LOCK, LockMode.W, priority=priority)
            metrics.record_request(node, kind, issued, sim.now, lock=LOCK)
            yield Timeout(sim, cs.sample(rng))
            handle.release(LOCK, LockMode.W)

    bodies = [
        client(node, HIGH_PRIORITY if node == num_nodes - 1 else 0)
        for node in range(num_nodes)
    ]
    processes = [Process(sim, body) for body in bodies]
    sim.run(max_events=10_000_000)
    assert all(p.done.triggered for p in processes)
    monitor.assert_all_released()
    return metrics


def run_priority_study(
    num_nodes: int = 10, ops_per_node: int = 20, seed: int = 99
) -> PriorityResult:
    """Run the FIFO-vs-priority comparison and return the numbers."""

    fifo = _run(num_nodes, ops_per_node, seed, FULL_PROTOCOL)
    prioritized = _run(
        num_nodes, ops_per_node, seed,
        ProtocolOptions(priority_scheduling=True),
    )
    return PriorityResult(
        num_nodes=num_nodes,
        fifo_high_latency=fifo.latency_summary("high").mean,
        priority_high_latency=prioritized.latency_summary("high").mean,
        fifo_crowd_latency=fifo.latency_summary("crowd").mean,
        priority_crowd_latency=prioritized.latency_summary("crowd").mean,
    )


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point."""

    print(run_priority_study().render())


if __name__ == "__main__":  # pragma: no cover - CLI
    main()

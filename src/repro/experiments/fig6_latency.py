"""Figure 6 — request latency (as a factor of point-to-point latency).

Reproduces the paper's response-time figure: mean lock-request latency
divided by the mean network latency (150 ms), versus cluster size, for
the three protocols.

Paper claims (asserted by the benchmark):

* our protocol grows roughly linearly with the concurrency level
  (interference from other nodes' conflicting critical sections),
* Naimi pure is also linear but with a worse constant (everything
  serializes through one exclusive token),
* Naimi same-work is superlinear (whole-table operations acquire a
  per-node-growing set of tokens in order).

Run directly for a paper-scale sweep::

    python -m repro.experiments.fig6_latency [--quick]
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from ..workload.spec import WorkloadSpec
from .common import PAPER_NODE_COUNTS, QUICK_NODE_COUNTS, RunResult, sweep
from .report import (
    render_ascii_plot,
    render_series_table,
    shape_checks,
    superlinear_growth,
)

#: The three curves of Figure 6, in legend order.
PROTOCOLS = ("hierarchical", "naimi-pure", "naimi-same-work")


@dataclasses.dataclass
class Fig6Result:
    """The data behind Figure 6."""

    node_counts: List[int]
    latency_factor: Dict[str, List[float]]
    runs: Dict[str, List[RunResult]]

    def all_runs(self) -> List[RunResult]:
        """Every underlying run, in protocol then node-count order."""

        return [run for protocol in PROTOCOLS for run in self.runs[protocol]]

    def checks(self) -> List:
        """The paper's qualitative claims, evaluated on this data."""

        xs = [float(n) for n in self.node_counts]
        ours = self.latency_factor["hierarchical"]
        pure = self.latency_factor["naimi-pure"]
        same = self.latency_factor["naimi-same-work"]
        return [
            (
                "our protocol has the lowest latency factor at scale",
                ours[-1] < pure[-1] and ours[-1] < same[-1],
            ),
            (
                "Naimi same-work latency grows superlinearly",
                superlinear_growth(xs, same),
            ),
            (
                "our latency factor is not superlinear (≈linear growth)",
                not superlinear_growth(
                    xs[len(xs) // 2 :], ours[len(ours) // 2 :]
                )
                or ours[-1] < pure[-1],
            ),
            (
                "ordering matches the paper at max n: ours < pure < same-work",
                ours[-1] < pure[-1] < same[-1],
            ),
        ]

    def render(self) -> str:
        """Paper-style rows plus an ASCII rendering of the figure."""

        xs = [float(n) for n in self.node_counts]
        table = render_series_table(
            "Figure 6 — request latency (× mean point-to-point latency)",
            "nodes",
            xs,
            self.latency_factor,
            precision=1,
        )
        plot = render_ascii_plot("Figure 6 (ASCII)", xs, self.latency_factor)
        return "\n\n".join([table, plot, shape_checks(self.checks())])


def run_fig6(
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    spec: WorkloadSpec = WorkloadSpec(),
    check_invariants: bool = True,
    observe: bool = False,
) -> Fig6Result:
    """Run the Figure 6 sweep and return its data."""

    runs = {
        protocol: sweep(
            protocol, node_counts, spec, check_invariants, observe=observe
        )
        for protocol in PROTOCOLS
    }
    latency_factor = {
        protocol: [run.latency_factor() for run in results]
        for protocol, results in runs.items()
    }
    return Fig6Result(
        node_counts=list(node_counts),
        latency_factor=latency_factor,
        runs=runs,
    )


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point: print the figure."""

    quick = "--quick" in argv
    counts = QUICK_NODE_COUNTS if quick else PAPER_NODE_COUNTS
    spec = WorkloadSpec(ops_per_node=15 if quick else 30)
    print(run_fig6(counts, spec).render())


if __name__ == "__main__":  # pragma: no cover - CLI
    import sys

    main(sys.argv[1:])

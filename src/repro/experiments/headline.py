"""Section 6 headline numbers — the paper's summary comparison at 120 nodes.

The conclusion condenses the evaluation into two numbers at the largest
cluster size: **message overhead 3 vs. 4** (ours vs. Naimi's base
protocol) and **latency factor 90 vs. 160**.  This experiment runs just
the largest configuration and reports the same two comparisons, plus the
relative savings the paper quotes (~20 % fewer messages).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from ..workload.spec import WorkloadSpec
from .common import RunResult, run_hierarchical, run_naimi_pure, run_naimi_same_work
from .report import shape_checks


@dataclasses.dataclass
class HeadlineResult:
    """The §6 comparison at one cluster size."""

    num_nodes: int
    ours: RunResult
    pure: RunResult
    same_work: RunResult

    def all_runs(self) -> List[RunResult]:
        """The three underlying runs in rendering order."""

        return [self.ours, self.pure, self.same_work]

    def message_saving(self) -> float:
        """Relative message saving of ours vs. Naimi pure (paper: ~20 %)."""

        pure = self.pure.message_overhead()
        if pure <= 0:
            return 0.0
        return 1.0 - self.ours.message_overhead() / pure

    def checks(self) -> List[Tuple[str, bool]]:
        """The conclusion's claims, evaluated on this run."""

        return [
            (
                "ours beats Naimi pure on message overhead",
                self.ours.message_overhead() < self.pure.message_overhead(),
            ),
            (
                "ours beats both baselines on latency factor",
                self.ours.latency_factor() < self.pure.latency_factor()
                and self.ours.latency_factor() < self.same_work.latency_factor(),
            ),
            (
                "message saving vs. pure is positive (paper: ~20 %)",
                self.message_saving() > 0.0,
            ),
        ]

    def render(self) -> str:
        """Paper-vs-measured rows."""

        lines = [
            f"Section 6 headline comparison at n={self.num_nodes}",
            "",
            "metric                         paper      measured",
            "-" * 52,
            (
                "msg overhead, ours             ~3         "
                f"{self.ours.message_overhead():.2f}"
            ),
            (
                "msg overhead, Naimi pure       ~4         "
                f"{self.pure.message_overhead():.2f}"
            ),
            (
                "latency factor, ours           ~90        "
                f"{self.ours.latency_factor():.1f}"
            ),
            (
                "latency factor, Naimi          ~160       "
                f"{self.pure.latency_factor():.1f} (pure) / "
                f"{self.same_work.latency_factor():.1f} (same work)"
            ),
            (
                "message saving vs. pure        ~20%       "
                f"{self.message_saving() * 100:.0f}%"
            ),
            "",
            shape_checks(self.checks()),
        ]
        return "\n".join(lines)


def run_headline(
    num_nodes: int = 120,
    spec: WorkloadSpec = WorkloadSpec(),
    observe: bool = False,
) -> HeadlineResult:
    """Run the three protocols at *num_nodes* and compare."""

    return HeadlineResult(
        num_nodes=num_nodes,
        ours=run_hierarchical(num_nodes, spec, observe=observe),
        pure=run_naimi_pure(num_nodes, spec, observe=observe),
        same_work=run_naimi_same_work(num_nodes, spec, observe=observe),
    )


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point: print the headline comparison."""

    quick = "--quick" in argv
    nodes = 16 if quick else 120
    spec = WorkloadSpec(ops_per_node=15 if quick else 30)
    print(run_headline(nodes, spec).render())


if __name__ == "__main__":  # pragma: no cover - CLI
    import sys

    main(sys.argv[1:])

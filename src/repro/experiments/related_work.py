"""Related-work study (§5): dynamic vs. static token trees.

The paper positions itself against the two O(log n) token algorithms:
Naimi-Tréhel (dynamic tree, path reversal — the protocol it builds on)
and Raymond (static tree, no adaptation).  This experiment runs both on
the identical single-token workload and reports messages per request as
the cluster grows, measuring the claim that "Raymond's algorithm uses a
non-adaptive logical structure while we use a dynamic one, which results
in dynamic path compression".

A second sweep shows Raymond's topology sensitivity (balanced tree vs.
chain): the static structure pays its full height on every transfer,
which is precisely what adaptivity avoids.

The regime matters: under *heavy* contention Raymond amortizes its tree
height (the privilege sweeps the tree serving whole batches of queued
requests), and any per-node "idle time" still saturates once enough
nodes exist.  The comparison therefore issues **strictly sequential,
isolated requests** from uniformly random nodes — each completes before
the next is issued — so every request pays exactly its protocol's path
cost, which is the quantity §5 talks about.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..metrics import MetricsCollector
from ..raymond.topology import Topology, balanced_binary_tree, chain
from ..sim.cluster import SimNaimiCluster, SimRaymondCluster
from ..sim.engine import Process, Simulator
from ..sim.rng import Exponential, derive_rng
from ..verification.invariants import MutualExclusionMonitor
from ..workload.airline import naimi_pure_client
from ..workload.spec import WorkloadSpec
from .common import RunResult, run_naimi_pure
from .report import render_series_table, shape_checks

LOCK = "global"


def sequential_probe(
    cluster, num_nodes: int, rounds: int, seed: int, metrics: MetricsCollector
):
    """One coroutine issuing isolated requests from random nodes."""

    sim = cluster.sim
    rng = derive_rng(seed, "probe", num_nodes)
    for _round in range(rounds):
        node = rng.randrange(num_nodes)
        issued = sim.now
        yield cluster.client(node).acquire(LOCK)
        metrics.record_request(node, "probe", issued, sim.now, lock=LOCK)
        cluster.client(node).release(LOCK)


def _sequential_overhead(cluster, num_nodes, rounds, seed) -> float:
    metrics = cluster.metrics
    process = Process(cluster.sim, sequential_probe(
        cluster, num_nodes, rounds, seed, metrics
    ))
    cluster.sim.run(max_events=10_000_000)
    assert process.done.triggered
    return metrics.message_overhead()


def sequential_naimi(num_nodes: int, rounds: int = 60, seed: int = 7) -> float:
    """Messages per isolated request under Naimi (dynamic tree)."""

    metrics = MetricsCollector()
    cluster = SimNaimiCluster(
        num_nodes, latency=Exponential(0.150), seed=seed, metrics=metrics,
        monitor=MutualExclusionMonitor(),
    )
    return _sequential_overhead(cluster, num_nodes, rounds, seed)


def sequential_raymond(
    num_nodes: int, topology: Topology, rounds: int = 60, seed: int = 7
) -> float:
    """Messages per isolated request under Raymond on *topology*."""

    metrics = MetricsCollector()
    cluster = SimRaymondCluster(
        num_nodes, latency=Exponential(0.150), seed=seed,
        topology=topology, metrics=metrics,
        monitor=MutualExclusionMonitor(),
    )
    return _sequential_overhead(cluster, num_nodes, rounds, seed)


def run_raymond(
    num_nodes: int,
    spec: WorkloadSpec,
    topology: Optional[Topology] = None,
    check_invariants: bool = True,
    event_budget: int = 30_000_000,
) -> RunResult:
    """Run the single-token workload under Raymond's algorithm."""

    sim = Simulator()
    metrics = MetricsCollector()
    monitor = MutualExclusionMonitor() if check_invariants else None
    cluster = SimRaymondCluster(
        num_nodes,
        sim=sim,
        latency=Exponential(spec.latency_mean),
        seed=spec.seed,
        topology=topology,
        monitor=monitor,
        metrics=metrics,
    )
    bodies = [
        naimi_pure_client(
            sim,
            cluster.client(node),
            spec,
            spec.entry_count(num_nodes),
            derive_rng(spec.seed, "raymond", num_nodes, node),
            metrics=metrics,
        )
        for node in range(num_nodes)
    ]
    processes = [Process(sim, body) for body in bodies]
    sim.run(max_events=event_budget)
    if not all(p.done.triggered for p in processes):
        raise RuntimeError("raymond run never completed")
    if check_invariants and monitor is not None:
        monitor.assert_all_released()
        cluster.assert_quiescent_invariants()
    return RunResult(
        protocol="raymond",
        num_nodes=num_nodes,
        spec=spec,
        metrics=metrics,
        sim_time=sim.now,
        events=sim.events_processed,
    )


@dataclasses.dataclass
class RelatedWorkResult:
    """Dynamic-vs-static comparison data."""

    node_counts: List[int]
    overhead: Dict[str, List[float]]

    def checks(self) -> List:
        """The §5 claims, evaluated on this data."""

        naimi = self.overhead["naimi (dynamic)"]
        tree = self.overhead["raymond (balanced)"]
        chain_series = self.overhead["raymond (chain)"]
        n = self.node_counts
        return [
            (
                "the static chain pays ~linear per-request overhead",
                chain_series[-1] > 0.3 * n[-1],
            ),
            (
                "dynamic path reversal beats the static chain at scale",
                naimi[-1] < chain_series[-1],
            ),
            (
                "dynamic path reversal beats the balanced static tree too",
                naimi[-1] < tree[-1],
            ),
            (
                "balanced Raymond and Naimi are both sub-linear",
                tree[-1] < n[-1] / 2 and naimi[-1] < n[-1] / 2,
            ),
        ]

    def render(self) -> str:
        """Paper-style rows for the §5 comparison."""

        table = render_series_table(
            "Related work (§5) — messages per request, single token",
            "nodes",
            [float(n) for n in self.node_counts],
            self.overhead,
        )
        return "\n\n".join([table, shape_checks(self.checks())])


def run_related_work(
    node_counts: Sequence[int] = (2, 4, 8, 16, 32, 64),
    rounds: int = 60,
    seed: int = 7,
) -> RelatedWorkResult:
    """Sweep Naimi vs. Raymond (balanced and chain topologies)."""

    overhead: Dict[str, List[float]] = {
        "naimi (dynamic)": [],
        "raymond (balanced)": [],
        "raymond (chain)": [],
    }
    for n in node_counts:
        overhead["naimi (dynamic)"].append(
            sequential_naimi(n, rounds=rounds, seed=seed)
        )
        overhead["raymond (balanced)"].append(
            sequential_raymond(
                n, balanced_binary_tree(n), rounds=rounds, seed=seed
            )
        )
        overhead["raymond (chain)"].append(
            sequential_raymond(n, chain(n), rounds=rounds, seed=seed)
        )
    return RelatedWorkResult(
        node_counts=list(node_counts), overhead=overhead
    )


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point."""

    quick = "--quick" in argv
    counts = (2, 4, 8, 16) if quick else (2, 4, 8, 16, 32, 64)
    print(run_related_work(counts, rounds=30 if quick else 60).render())


if __name__ == "__main__":  # pragma: no cover - CLI
    import sys

    main(sys.argv[1:])

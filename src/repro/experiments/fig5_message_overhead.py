"""Figure 5 — scalability: message overhead vs. number of nodes.

Reproduces the paper's central scalability figure: the average number of
messages per lock request as the cluster grows, for the hierarchical
protocol, Naimi *pure* and Naimi *same work*.

Paper claims (the shapes asserted by the benchmark):

* our protocol flattens after an initial increase ("asymptotic threshold
  of about 3 messages"),
* Naimi pure flattens too, at a higher level ("up to 4 messages" — ours
  is ~20 % cheaper despite doing more work),
* Naimi same-work grows superlinearly with the node count.

Run directly for a paper-scale sweep::

    python -m repro.experiments.fig5_message_overhead [--quick]
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from ..workload.spec import WorkloadSpec
from .common import PAPER_NODE_COUNTS, QUICK_NODE_COUNTS, RunResult, sweep
from .report import (
    flattening,
    render_ascii_plot,
    render_series_table,
    shape_checks,
    superlinear_growth,
)

#: The three curves of Figure 5, in legend order.
PROTOCOLS = ("hierarchical", "naimi-pure", "naimi-same-work")


@dataclasses.dataclass
class Fig5Result:
    """The data behind Figure 5."""

    node_counts: List[int]
    overhead: Dict[str, List[float]]  # protocol → msgs/request per n
    runs: Dict[str, List[RunResult]]

    def all_runs(self) -> List[RunResult]:
        """Every underlying run, in protocol then node-count order."""

        return [run for protocol in PROTOCOLS for run in self.runs[protocol]]

    def checks(self) -> List:
        """The paper's qualitative claims, evaluated on this data."""

        ours = self.overhead["hierarchical"]
        pure = self.overhead["naimi-pure"]
        same = self.overhead["naimi-same-work"]
        return [
            (
                "our protocol's message overhead flattens (log asymptote)",
                # Flattening is a paper-scale property; the curve is still
                # in its initial rise below ~40 nodes.
                flattening(ours)
                if self.node_counts[-1] >= 40
                else ours[-1] < 4.5,
            ),
            (
                "our protocol stays below Naimi pure at scale",
                ours[-1] < pure[-1],
            ),
            (
                "Naimi same-work grows superlinearly",
                superlinear_growth(
                    [float(n) for n in self.node_counts], same
                ),
            ),
            (
                "our asymptote lands in the paper's ~3-message band",
                # The 2-4.5 band is a paper-scale property; small sweeps
                # only check the upper bound.
                (2.0 <= ours[-1] <= 4.5)
                if self.node_counts[-1] >= 40
                else ours[-1] <= 4.5,
            ),
        ]

    def render(self) -> str:
        """Paper-style rows plus an ASCII rendering of the figure."""

        xs = [float(n) for n in self.node_counts]
        table = render_series_table(
            "Figure 5 — message overhead (messages per lock request)",
            "nodes",
            xs,
            self.overhead,
        )
        plot = render_ascii_plot("Figure 5 (ASCII)", xs, self.overhead)
        return "\n\n".join([table, plot, shape_checks(self.checks())])


def run_fig5(
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    spec: WorkloadSpec = WorkloadSpec(),
    check_invariants: bool = True,
    observe: bool = False,
) -> Fig5Result:
    """Run the Figure 5 sweep and return its data."""

    runs = {
        protocol: sweep(
            protocol, node_counts, spec, check_invariants, observe=observe
        )
        for protocol in PROTOCOLS
    }
    overhead = {
        protocol: [run.message_overhead() for run in results]
        for protocol, results in runs.items()
    }
    return Fig5Result(
        node_counts=list(node_counts), overhead=overhead, runs=runs
    )


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point: print the figure."""

    quick = "--quick" in argv
    counts = QUICK_NODE_COUNTS if quick else PAPER_NODE_COUNTS
    spec = WorkloadSpec(ops_per_node=15 if quick else 30)
    print(run_fig5(counts, spec).render())


if __name__ == "__main__":  # pragma: no cover - CLI
    import sys

    main(sys.argv[1:])

"""Ablation studies of the protocol's design choices (DESIGN.md A1-A3).

The paper argues three mechanisms produce its numbers: mode freezing for
fairness (§3.3), local queues to suppress messages (Rule 4), and grants by
children (Rule 3.1).  Each ablation re-runs a workload with one mechanism
disabled via :class:`~repro.core.automaton.ProtocolOptions` and reports
the delta — turning the paper's qualitative arguments into measurements.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple

from ..core.automaton import FULL_PROTOCOL, ProtocolOptions
from ..core.lockspace import hashed_token_home
from ..core.modes import LockMode
from ..metrics import MetricsCollector
from ..sim.cluster import SimHierarchicalCluster
from ..sim.engine import Process, Simulator
from ..sim.rng import Exponential, derive_rng
from ..verification.fairness import analyze
from ..verification.invariants import CompatibilityMonitor
from ..workload.airline import hierarchical_client
from ..workload.spec import WorkloadSpec
from .common import RunResult
from .report import shape_checks

#: Write-heavy, conflict-heavy mix used by the freezing ablation: a stream
#: of entry writes (table IW) that, without freezing, keeps overtaking the
#: table-level readers.
STARVATION_MODE_MIX: Tuple[Tuple[LockMode, float], ...] = (
    (LockMode.IW, 0.75),
    (LockMode.R, 0.25),
)


def run_with_options(
    num_nodes: int,
    spec: WorkloadSpec,
    options: ProtocolOptions,
    check_invariants: bool = True,
    event_budget: int = 30_000_000,
) -> RunResult:
    """Run the airline workload with custom protocol options."""

    sim = Simulator()
    metrics = MetricsCollector()
    monitor = CompatibilityMonitor() if check_invariants else None
    cluster = SimHierarchicalCluster(
        num_nodes,
        sim=sim,
        latency=Exponential(spec.latency_mean),
        seed=spec.seed,
        token_home=hashed_token_home(num_nodes),
        monitor=monitor,
        metrics=metrics,
        options=options,
    )
    entries = spec.entry_count(num_nodes)
    bodies = [
        hierarchical_client(
            sim,
            cluster.client(node),
            spec,
            entries,
            derive_rng(spec.seed, "ablate", num_nodes, node),
            metrics=metrics,
        )
        for node in range(num_nodes)
    ]
    processes = [Process(sim, body) for body in bodies]
    sim.run(max_events=event_budget)
    for process in processes:
        if not process.done.triggered:
            raise RuntimeError("ablation run deadlocked")
    if check_invariants and monitor is not None:
        monitor.assert_all_released()
    return RunResult(
        protocol="hierarchical(ablated)" if options != FULL_PROTOCOL
        else "hierarchical",
        num_nodes=num_nodes,
        spec=spec,
        metrics=metrics,
        sim_time=sim.now,
        events=sim.events_processed,
    )


@dataclasses.dataclass
class AblationResult:
    """Full-protocol vs. ablated comparison."""

    name: str
    metric_name: str
    full_value: float
    ablated_value: float
    full_run: RunResult
    ablated_run: RunResult
    claim: str

    @property
    def regression(self) -> float:
        """Ablated / full ratio for the chosen metric (>1 = full wins)."""

        if self.full_value <= 0:
            return float("inf") if self.ablated_value > 0 else 1.0
        return self.ablated_value / self.full_value

    def render(self) -> str:
        """One comparison block."""

        return "\n".join(
            [
                f"Ablation: {self.name}",
                f"  claim: {self.claim}",
                f"  {self.metric_name}: full={self.full_value:.3f} "
                f"ablated={self.ablated_value:.3f} "
                f"(x{self.regression:.2f})",
            ]
        )


def _worst_latency(run: RunResult, kinds: Sequence[str]) -> float:
    """Maximum latency over the given request kinds."""

    values = [
        record.latency
        for record in run.metrics.requests
        if record.kind in kinds
    ]
    return max(values) if values else 0.0


def ablate_freezing(
    num_nodes: int = 12, ops_per_node: int = 40, seed: int = 11
) -> AblationResult:
    """A1 — disable Rule 6 freezing; readers get overtaken by writers.

    Uses the conflict-heavy mix: table-level ``R`` requests queue at the
    token behind a stream of entry ``IW`` grants.  With freezing, ``IW``
    is frozen the moment the ``R`` queues and the reader proceeds after
    one drain; without it, every new ``IW`` overtakes — the §3.3
    starvation scenario, visible as a blow-up of the worst reader latency.
    """

    spec = WorkloadSpec(
        ops_per_node=ops_per_node,
        mode_mix=STARVATION_MODE_MIX,
        seed=seed,
        locality=0.2,
    )
    full = run_with_options(num_nodes, spec, FULL_PROTOCOL)
    ablated = run_with_options(
        num_nodes, spec, ProtocolOptions(freezing=False)
    )
    return AblationResult(
        name="no freezing (Rule 6 off)",
        metric_name="conflicting-mode bypasses (overtakes)",
        full_value=float(analyze(full.metrics.requests).bypasses),
        ablated_value=float(analyze(ablated.metrics.requests).bypasses),
        full_run=full,
        ablated_run=ablated,
        claim="freezing stops newcomers from overtaking queued "
        "incompatible requests (§3.3)",
    )


def ablate_local_queues(
    num_nodes: int = 16, ops_per_node: int = 30, seed: int = 12
) -> AblationResult:
    """A2 — disable Rule 4.1 queueing; requests always chase the token."""

    spec = WorkloadSpec(ops_per_node=ops_per_node, seed=seed)
    full = run_with_options(num_nodes, spec, FULL_PROTOCOL)
    ablated = run_with_options(
        num_nodes, spec, ProtocolOptions(local_queues=False)
    )
    return AblationResult(
        name="no local queues (Rule 4.1 off)",
        metric_name="messages per lock request",
        full_value=full.message_overhead(),
        ablated_value=ablated.message_overhead(),
        full_run=full,
        ablated_run=ablated,
        claim="local queues suppress forwarding traffic (Rule 4)",
    )


def ablate_child_grants(
    num_nodes: int = 16, ops_per_node: int = 30, seed: int = 13
) -> AblationResult:
    """A3 — disable Rule 3.1; only the token node may grant."""

    spec = WorkloadSpec(ops_per_node=ops_per_node, seed=seed)
    full = run_with_options(num_nodes, spec, FULL_PROTOCOL)
    ablated = run_with_options(
        num_nodes, spec, ProtocolOptions(child_grants=False)
    )
    return AblationResult(
        name="no child grants (Rule 3.1 off)",
        metric_name="messages per lock request",
        full_value=full.message_overhead(),
        ablated_value=ablated.message_overhead(),
        full_run=full,
        ablated_run=ablated,
        claim="grants by children cut message overhead and latency (§4)",
    )


def ablate_local_reentry(
    num_nodes: int = 16, ops_per_node: int = 30, seed: int = 14
) -> AblationResult:
    """A4 — disable Rule 2's zero-message path; always send requests."""

    spec = WorkloadSpec(ops_per_node=ops_per_node, seed=seed)
    full = run_with_options(num_nodes, spec, FULL_PROTOCOL)
    ablated = run_with_options(
        num_nodes, spec, ProtocolOptions(local_reentry=False)
    )
    return AblationResult(
        name="no local re-entry (Rule 2 local path off)",
        metric_name="messages per lock request",
        full_value=full.message_overhead(),
        ablated_value=ablated.message_overhead(),
        full_run=full,
        ablated_run=ablated,
        claim="local acquisitions without messages drive the low constant "
        "factor (Rule 2, §4)",
    )


ALL_ABLATIONS = (
    ablate_freezing,
    ablate_local_queues,
    ablate_child_grants,
    ablate_local_reentry,
)


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point: run and print every ablation."""

    results = [ablation() for ablation in ALL_ABLATIONS]
    for result in results:
        print(result.render())
        print()
    print(
        shape_checks(
            [(r.name + " regresses when removed", r.regression > 1.0) for r in results]
        )
    )


if __name__ == "__main__":  # pragma: no cover - CLI
    import sys

    main(sys.argv[1:])

"""Figure 7 — message-overhead breakdown by message type (our protocol).

Reproduces the paper's per-type decomposition of the hierarchical
protocol's message overhead: request, grant (copy grants), token
(transfers), release and freeze messages per lock request, as the cluster
grows.

Paper claims (asserted by the benchmark):

* request messages rise with the tree height, then stabilize,
* token transfers fall from their initial level and flatten (more and
  more requests are satisfied by copy grants or queueing),
* copy grants rise and stabilize (they absorb what transfers lose),
* releases track copy grants (every copy grant is eventually matched by
  release traffic; the token node itself never sends releases),
* freeze messages stay small and flat (at most five modes exist).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from ..workload.spec import WorkloadSpec
from .common import PAPER_NODE_COUNTS, QUICK_NODE_COUNTS, RunResult, run_hierarchical
from .report import flattening, render_series_table, shape_checks

#: Figure 7's legend, in rendering order.
MESSAGE_TYPES = ("request", "grant", "token", "release", "freeze")


@dataclasses.dataclass
class Fig7Result:
    """The data behind Figure 7."""

    node_counts: List[int]
    breakdown: Dict[str, List[float]]  # message type → msgs/request per n
    runs: List[RunResult]

    def all_runs(self) -> List[RunResult]:
        """Every underlying run, in node-count order."""

        return list(self.runs)

    def checks(self) -> List:
        """The paper's qualitative claims, evaluated on this data."""

        last = {kind: series[-1] for kind, series in self.breakdown.items()}
        return [
            (
                "request messages stabilize after the initial rise",
                flattening(self.breakdown["request"], ratio=0.75),
            ),
            (
                "copy grants exceed token transfers at scale",
                last["grant"] > last["token"],
            ),
            (
                "freeze messages stay a small constant (< 1 per request)",
                max(self.breakdown["freeze"]) < 1.0,
            ),
            (
                "every type's rate is bounded (< 3 per request)",
                all(max(series) < 3.0 for series in self.breakdown.values()),
            ),
        ]

    def render(self) -> str:
        """Paper-style rows for the per-type breakdown."""

        xs = [float(n) for n in self.node_counts]
        table = render_series_table(
            "Figure 7 — message behaviour (messages per lock request, by type)",
            "nodes",
            xs,
            self.breakdown,
        )
        return "\n\n".join([table, shape_checks(self.checks())])


def run_fig7(
    node_counts: Sequence[int] = PAPER_NODE_COUNTS,
    spec: WorkloadSpec = WorkloadSpec(),
    check_invariants: bool = True,
    observe: bool = False,
) -> Fig7Result:
    """Run the Figure 7 sweep and return its data."""

    runs = [
        run_hierarchical(
            n, spec, check_invariants=check_invariants, observe=observe
        )
        for n in node_counts
    ]
    breakdown: Dict[str, List[float]] = {kind: [] for kind in MESSAGE_TYPES}
    for run in runs:
        per_type = run.metrics.message_overhead_by_type()
        for kind in MESSAGE_TYPES:
            breakdown[kind].append(per_type.get(kind, 0.0))
    return Fig7Result(
        node_counts=list(node_counts), breakdown=breakdown, runs=runs
    )


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point: print the figure."""

    quick = "--quick" in argv
    counts = QUICK_NODE_COUNTS if quick else PAPER_NODE_COUNTS
    spec = WorkloadSpec(ops_per_node=15 if quick else 30)
    print(run_fig7(counts, spec).render())


if __name__ == "__main__":  # pragma: no cover - CLI
    import sys

    main(sys.argv[1:])

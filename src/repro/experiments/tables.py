"""Tables 1 and 2 — the protocol's rule tables, regenerated.

The paper's tables are not measurements but derived artifacts of the mode
algebra; regenerating them from :mod:`repro.core.modes` (and checking the
legible cells/examples of the paper text) is the reproduction.  The
expected matrices below are the reconstruction documented in DESIGN.md §3
and double as regression oracles for the derivation code.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.modes import (
    REAL_MODES,
    LockMode,
    child_can_grant,
    conflicts,
    freeze_set,
    render_table_1a,
    render_table_1b,
    render_table_2a,
    render_table_2b,
    should_queue,
)

#: Table 1(a): rows/cols in (IR, R, U, IW, W) order, True = conflict.
EXPECTED_TABLE_1A: Tuple[Tuple[bool, ...], ...] = (
    (False, False, False, False, True),   # IR
    (False, False, False, True, True),    # R
    (False, False, True, True, True),     # U
    (False, True, True, False, True),     # IW
    (True, True, True, True, True),       # W
)

#: Table 1(b): True = "X" (a non-token owner of M1 may NOT grant M2).
EXPECTED_TABLE_1B: Tuple[Tuple[bool, ...], ...] = (
    (False, True, True, True, True),      # IR grants only IR
    (False, False, True, True, True),     # R grants IR, R
    (False, False, True, True, True),     # U grants IR, R
    (False, True, True, False, True),     # IW grants IR, IW
    (True, True, True, True, True),       # W grants nothing
)

#: Table 2(a): 'Q' = queue locally, 'F' = forward; rows = pending mode
#: (NONE, IR, R, U, IW, W), cols = incoming mode (IR, R, U, IW, W).
EXPECTED_TABLE_2A: Tuple[str, ...] = (
    "FFFFF",  # no pending request → always forward
    "QFFFF",  # pending IR: only IR will be locally grantable
    "QQFFF",  # pending R: IR and R
    "QQQQQ",  # pending U: the grant will carry the token → queue all
    "QFFQF",  # pending IW: IR and IW
    "QQQQQ",  # pending W: the grant will carry the token → queue all
)

#: Table 2(b): frozen modes per (owned, requested) incompatible pair.
EXPECTED_TABLE_2B: Dict[Tuple[LockMode, LockMode], frozenset] = {
    (LockMode.IR, LockMode.W): frozenset(
        {LockMode.IR, LockMode.R, LockMode.U, LockMode.IW}
    ),
    (LockMode.R, LockMode.IW): frozenset({LockMode.R, LockMode.U}),
    (LockMode.R, LockMode.W): frozenset(
        {LockMode.IR, LockMode.R, LockMode.U}
    ),
    (LockMode.U, LockMode.U): frozenset(),
    (LockMode.U, LockMode.IW): frozenset({LockMode.R}),
    (LockMode.U, LockMode.W): frozenset({LockMode.IR, LockMode.R}),
    (LockMode.IW, LockMode.R): frozenset({LockMode.IW}),
    (LockMode.IW, LockMode.U): frozenset({LockMode.IW}),
    (LockMode.IW, LockMode.W): frozenset({LockMode.IR, LockMode.IW}),
    (LockMode.W, LockMode.IR): frozenset(),
    (LockMode.W, LockMode.R): frozenset(),
    (LockMode.W, LockMode.U): frozenset(),
    (LockMode.W, LockMode.IW): frozenset(),
    (LockMode.W, LockMode.W): frozenset(),
}


def table_1a_matrix() -> Tuple[Tuple[bool, ...], ...]:
    """Compute Table 1(a) from the mode algebra."""

    return tuple(
        tuple(conflicts(m1, m2) for m2 in REAL_MODES) for m1 in REAL_MODES
    )


def table_1b_matrix() -> Tuple[Tuple[bool, ...], ...]:
    """Compute Table 1(b) from Rule 3.1."""

    return tuple(
        tuple(not child_can_grant(m1, m2) for m2 in REAL_MODES)
        for m1 in REAL_MODES
    )


def table_2a_matrix() -> Tuple[str, ...]:
    """Compute Table 2(a) from Rule 4.1."""

    rows: List[str] = []
    for pending in (LockMode.NONE,) + REAL_MODES:
        rows.append(
            "".join(
                "Q" if should_queue(pending, incoming) else "F"
                for incoming in REAL_MODES
            )
        )
    return tuple(rows)


def table_2b_matrix() -> Dict[Tuple[LockMode, LockMode], frozenset]:
    """Compute Table 2(b) from the freeze-set formula."""

    return {
        (owned, requested): freeze_set(owned, requested)
        for owned in REAL_MODES
        for requested in REAL_MODES
        if conflicts(owned, requested)
    }


def verify_all() -> List[Tuple[str, bool]]:
    """Check every computed table against the reconstruction oracle."""

    return [
        ("Table 1(a) compatibility", table_1a_matrix() == EXPECTED_TABLE_1A),
        ("Table 1(b) child grants", table_1b_matrix() == EXPECTED_TABLE_1B),
        ("Table 2(a) queue/forward", table_2a_matrix() == EXPECTED_TABLE_2A),
        ("Table 2(b) freezing", table_2b_matrix() == EXPECTED_TABLE_2B),
    ]


def render_all() -> str:
    """Render all four tables exactly as the experiments harness prints them."""

    parts = [
        render_table_1a(),
        render_table_1b(),
        render_table_2a(),
        render_table_2b(),
    ]
    status = "\n".join(
        f"  [{'PASS' if ok else 'FAIL'}] {name}" for name, ok in verify_all()
    )
    parts.append("Verification against the reconstruction oracle:\n" + status)
    return "\n\n".join(parts)


def main(argv=()) -> None:
    """CLI entry point: print the tables."""

    print(render_all())


if __name__ == "__main__":  # pragma: no cover - CLI
    main()

"""Experiment harness: one module per paper figure/table plus ablations."""

from .common import (
    PAPER_NODE_COUNTS,
    QUICK_NODE_COUNTS,
    RunResult,
    run_hierarchical,
    run_naimi_pure,
    run_naimi_same_work,
    sweep,
)
from .fig5_message_overhead import Fig5Result, run_fig5
from .fig6_latency import Fig6Result, run_fig6
from .fig7_breakdown import Fig7Result, run_fig7
from .headline import HeadlineResult, run_headline

__all__ = [
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "HeadlineResult",
    "PAPER_NODE_COUNTS",
    "QUICK_NODE_COUNTS",
    "RunResult",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_headline",
    "run_hierarchical",
    "run_naimi_pure",
    "run_naimi_same_work",
    "sweep",
]

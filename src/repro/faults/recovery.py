"""Failure detection and recovery coordination for one node.

A :class:`RecoveryManager` wraps a node's
:class:`~repro.core.lockspace.LockSpace` (running with
``ProtocolOptions(recovery=True)``) and supplies everything the paper's
protocol assumes away:

* **Reliable FIFO transport** — protocol messages travel through a
  :class:`~repro.faults.channel.ReliableChannel` (per-pair sequence
  numbers, cumulative acks, capped-backoff retransmission), so drops,
  duplicates and reordering on the fabric are invisible to the automata.
* **Failure detection** — periodic heartbeats feed a
  :class:`~repro.faults.detector.HeartbeatDetector`; any inbound traffic
  counts as life.
* **Request retransmission** — each of the node's own pending requests
  is re-forwarded on a capped exponential backoff until granted (the
  duplicates are idempotent at protocol level); this is what survives a
  request dying in a crashed parent's volatile queue.
* **Token regeneration** — when a lock's parent is suspected, the
  automaton evicts the dead subtree and, if the lock is orphaned, the
  highest-id surviving member coordinates: it probes all live peers for
  a surviving token and, if none answers, regenerates the token under a
  higher epoch and broadcasts the new placement so stale-epoch tokens
  are discarded wherever they resurface (see docs/FAULTS.md for the
  safety argument and its limits).

The manager is transport-agnostic: it needs only a scheduler
(``now``/``call_later``) and a raw ``send(dest, message)``, so the same
class runs under the simulator and the threaded/TCP runtimes.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..core.lockspace import LockSpace
from ..core.messages import Envelope, LockId, Message, NodeId
from ..core.modes import LockMode
from ..leases import LeaseConfig, LeaseTable, mint_fencing_token
from ..membership import (
    ChildMigrate,
    HandoffMessage,
    JoinRequest,
    MembershipView,
    StateTransfer,
    ViewAck,
    ViewInstall,
    ViewProposal,
)
from ..obs.sink import ObsSink
from ..services.sessions import SessionManager
from .channel import ReliableChannel
from .detector import HeartbeatDetector
from .messages import (
    HeartbeatMessage,
    OrphanReport,
    ReparentMessage,
    SessionAck,
    TokenAck,
    TokenProbe,
)

#: Raw fabric send: ``(dest, message)``.
TransportSend = Callable[[NodeId, Message], None]


@dataclasses.dataclass(frozen=True)
class RecoveryConfig:
    """Timing knobs of the recovery layer (seconds).

    Defaults suit the simulator's 150 ms mean latency; the threaded
    runtime tests shrink everything by an order of magnitude.
    """

    #: Heartbeat period; also the failure-detector polling period.
    heartbeat_interval: float = 0.5
    #: Silence after which a peer is suspected (≥ several heartbeats).
    suspect_timeout: float = 2.5
    #: First application-level request retransmit after this long...
    retry_base: float = 0.75
    #: ...doubling per retry up to this cap.
    retry_cap: float = 5.0
    #: Channel-level frame retransmission backoff (faster: it repairs
    #: single lost frames, not lost state).
    channel_retry_base: float = 0.25
    channel_retry_cap: float = 2.0
    #: How long the coordinator waits for a TokenAck before regenerating.
    probe_timeout: float = 1.0
    #: Pause between claiming a regeneration epoch and serving from the
    #: regenerated token, during which survivors reattach and re-assert
    #: their owned modes (the copyset of the dead root is rebuilt from
    #: their releases; granting earlier could violate Rule 1).
    regen_settle: float = 1.5
    #: Orphans re-send their OrphanReport at this period until reparented.
    orphan_interval: float = 0.5
    #: How long a durably-restarted token holder keeps custody fenced
    #: (queueing instead of granting) while TokenProbes and replayed
    #: placement hints establish whether its restored epoch is still
    #: current.  Quorum-gated like ``regen_settle``, and for the same
    #: reason: confirming on the minority side of a partition could fork
    #: the lock space against a regenerated token across the cut.
    rejoin_settle: float = 1.5
    #: How long a granted hold's lease lives past its last renewal
    #: (renewals piggyback on heartbeats).  Also the quorum-silence
    #: horizon after which a holder must self-fence: a node that has
    #: heard from no majority for this long can no longer assume its
    #: leases are being honoured.  Must exceed the longest partition any
    #: plan expects to *heal* (the canned ``partition`` plan severs for
    #: 5 s), or a healed node spuriously revokes itself.
    lease_duration: float = 6.0
    #: Extra slack peers wait past a lease deadline before revoking.
    #: The holder self-fences at ``lease_duration`` of silence while
    #: peers revoke only at ``lease_duration + lease_revoke_margin``, so
    #: the forced release always happens holder-side first — the
    #: ordering that keeps revocation Rule-1 safe without synchronized
    #: clocks.
    lease_revoke_margin: float = 1.5


class RecoveryManager:
    """Per-node recovery engine: channel + detector + token coordinator."""

    def __init__(
        self,
        node_id: NodeId,
        lockspace: LockSpace,
        membership: Iterable[NodeId],
        scheduler,
        transport_send: TransportSend,
        config: RecoveryConfig = RecoveryConfig(),
        obs: Optional[ObsSink] = None,
        boot: int = 0,
    ) -> None:
        self.node_id = node_id
        self.lockspace = lockspace
        self.membership = sorted(set(membership))
        self.config = config
        self.obs = obs
        self.boot = boot
        self._scheduler = scheduler
        self._transport_send = transport_send
        self._mutex = threading.RLock()
        self._running = False
        peers = [n for n in self.membership if n != node_id]
        self.detector = HeartbeatDetector(
            peers, config.suspect_timeout, now=scheduler.now()
        )
        self.channel = ReliableChannel(
            node_id,
            scheduler,
            send=self._raw_send,
            deliver=self._deliver,
            retry_base=config.channel_retry_base,
            retry_cap=config.channel_retry_cap,
            boot=boot,
            mutex=self._mutex,
        )
        #: Causal tracer, adopted from the obs sink when it has one; the
        #: session channel shares it so frames join request chains.
        self.tracer = getattr(obs, "tracer", None) if obs is not None else None
        self.channel.tracer = self.tracer
        self.channel.obs = obs
        #: Per-lock retry timers for this node's own pending request:
        #: lock_id -> [generation, interval].
        self._retries: Dict[LockId, List[float]] = {}
        #: Locks whose parent is suspected and that await a reparent:
        #: lock_id -> [suspect, generation].
        self._orphans: Dict[LockId, List[object]] = {}
        #: Coordinator state per lock being probed:
        #: lock_id -> {"epoch", "reporters", "generation"}.
        self._probes: Dict[LockId, Dict[str, object]] = {}
        #: Last announced token placement: lock_id -> (holder, epoch).
        #: Replayed to restarted peers so a resurrected stale token home
        #: demotes itself (see docs/FAULTS.md).
        self._token_hints: Dict[LockId, Tuple[NodeId, int]] = {}
        #: Latest boot incarnation seen per peer (restart detection).
        self._peer_boots: Dict[NodeId, int] = {}
        #: Custody state per lock whose token was durably restored and
        #: awaits reconciliation: lock_id -> {"epoch", "generation"}.
        self._rejoin: Dict[LockId, Dict[str, int]] = {}
        #: Durability journal of this node, attached by the cluster
        #: wiring when persistence is enabled (see repro.persist).
        self.journal = None
        # -- leases and sessions (see repro.leases / repro.services) ----
        self.lease_config = LeaseConfig(
            duration=config.lease_duration,
            revoke_margin=config.lease_revoke_margin,
        )
        #: Leases on this node's own holds, advertised (= renewed) with
        #: every outgoing heartbeat.  Populated only when the hosting
        #: cluster calls :meth:`note_grant`; managers that never mint a
        #: lease behave exactly as before the lease layer existed.
        self.own_leases = LeaseTable(self.lease_config)
        #: Mirror of peers' advertised leases, rebuilt from their
        #: heartbeats; the source both of eviction deferral (an active
        #: lease pins the holder's copyset entry) and of revocation.
        self.remote_leases = LeaseTable(self.lease_config)
        #: Application sessions owning this node's holds.
        self.sessions = SessionManager(node_id)
        #: Evictions skipped at suspicion time because the suspect still
        #: held an active lease: suspect -> locks awaiting lease expiry.
        self._deferred_evictions: Dict[NodeId, Set[LockId]] = {}
        self._fenced = False
        #: When this node self-fenced (``None`` = never); the chaos
        #: harness uses it to classify the fenced node's dead requests.
        self.fenced_at: Optional[float] = None
        #: Whether this incarnation restored holds from its journal
        #: (advertised in heartbeats: a restored peer's deferred
        #: evictions must wait for its re-advertised leases).
        self._restored = False
        #: Called as ``hook(holder, lock_id)`` whenever the lease layer
        #: force-releases holds — self-fence here, or revocation of a
        #: peer's expired lease.  The cluster wiring points this at the
        #: compatibility monitor so forced releases are not later
        #: misread as leaked holds.
        self.forced_release_hook: Optional[
            Callable[[NodeId, LockId], None]
        ] = None
        # -- verdict / test counters ------------------------------------
        self.app_retransmits = 0
        self.suspect_log: List[Tuple[float, NodeId]] = []
        self.regenerations: List[Dict[str, object]] = []
        self.custody_confirmed = 0
        self.custody_fenced = 0
        self.lease_renewals_sent = 0
        self.lease_renewals_received = 0
        self.leases_revoked = 0
        self.revoke_latencies: List[float] = []
        self.holds_reclaimed = 0
        self.sessions_gced = 0
        #: Report of the last :meth:`rejoin_from_journal`, if any.
        self.rejoin_report: Optional[Dict[str, object]] = None
        # -- membership (see repro.membership / docs/MEMBERSHIP.md) ------
        #: Epoch of the installed membership view; 0 is the bootstrap
        #: view (the construction-time member list).
        self.view_epoch = 0
        #: Last installed view, kept for anti-entropy re-broadcast.
        self._view_record: Optional[Dict[str, object]] = None
        #: Proposer state of an in-flight view change, if any.
        self._view_pending: Optional[Dict[str, object]] = None
        #: Highest ``(epoch, proposer)`` promised; later proposals win.
        self._view_promised: Tuple[int, int] = (0, -1)
        #: Nodes excised by an installed view — their stale traffic is
        #: dropped wholesale and they are never re-suspected.
        self._departed: Set[NodeId] = set()
        #: Graceful-departure driver state (this node is leaving).
        self._departure: Optional[Dict[str, object]] = None
        self._departing = False
        #: Joiner-side admission loop state (this node wants in).
        self._join_state: Optional[Dict[str, object]] = None
        #: Log of installed views (verdicts / tests): one dict per install.
        self.view_installs: List[Dict[str, object]] = []
        self.views_proposed = 0
        self.handoffs_accepted = 0
        self.children_adopted = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin heartbeating and failure checking."""

        with self._mutex:
            if self._running:
                return
            self._running = True
        self._heartbeat_tick()
        self._scheduler.call_later(
            self.config.heartbeat_interval, self._failure_tick
        )

    def stop(self) -> None:
        """Stop all periodic activity (crash simulation / shutdown)."""

        with self._mutex:
            self._running = False
            # Invalidate every outstanding one-shot timer.
            for entry in self._retries.values():
                entry[0] += 1
            for entry in self._orphans.values():
                entry[1] += 1
            for probe in self._probes.values():
                probe["generation"] = -1
            for rejoin in self._rejoin.values():
                rejoin["generation"] = -1

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def health_snapshot(self):
        """Read-only :class:`repro.obs.live.RecoveryHealth` of this node.

        Captured under the manager mutex so the channel backlog, detector
        verdicts and token hints are mutually consistent.
        """

        from ..obs.live import RecoveryHealth

        with self._mutex:
            durability = None
            if self.journal is not None:
                stats = self.journal.stats()
                report = self.rejoin_report or {}
                durability = {
                    "appends": int(stats.get("appends", 0)),
                    "compactions": int(stats.get("compactions", 0)),
                    "locks_restored": int(report.get("locks_restored", 0)),
                    "holds_reclaimed": int(report.get("holds_reclaimed", 0)),
                    "custody_confirmed": self.custody_confirmed,
                    "custody_fenced": self.custody_fenced,
                }
            leases = None
            if (
                len(self.own_leases)
                or len(self.remote_leases)
                or self._fenced
                or self.leases_revoked
                or self.holds_reclaimed
            ):
                leases = {
                    "fenced": self._fenced,
                    "own": [
                        [l.lock, l.mode, l.holder, l.token, l.deadline]
                        for l in self.own_leases.leases()
                    ],
                    "remote": [
                        [l.lock, l.mode, l.holder, l.token, l.deadline]
                        for l in self.remote_leases.leases()
                    ],
                    "renewals_sent": self.lease_renewals_sent,
                    "renewals_received": self.lease_renewals_received,
                    "revoked": self.leases_revoked,
                    "reclaimed": self.holds_reclaimed,
                    "sessions": len(self.sessions),
                    "sessions_gced": self.sessions_gced,
                }
            return RecoveryHealth(
                boot=self.boot,
                suspected=tuple(sorted(self.detector.suspected)),
                live_peers=tuple(self.detector.live_peers()),
                channel_backlog=self.channel.backlog(),
                channel_retransmits=self.channel.retransmits,
                app_retransmits=self.app_retransmits,
                token_hints=tuple(
                    sorted(
                        (lock_id, holder, epoch)
                        for lock_id, (holder, epoch)
                        in self._token_hints.items()
                    )
                ),
                custody_pending=tuple(sorted(self._rejoin)),
                durability=durability,
                leases=leases,
                view_epoch=self.view_epoch,
                view_members=tuple(self.membership),
            )

    # ------------------------------------------------------------------
    # Sending.
    # ------------------------------------------------------------------

    def _raw_send(self, dest: NodeId, message: Message) -> None:
        self._transport_send(dest, message)

    def _send_protocol(self, dest: NodeId, message: Message) -> None:
        """Protocol traffic rides the reliable channel."""

        self.channel.send(dest, message)

    def _dispatch(self, envelopes: List[Envelope]) -> None:
        """Ship automaton output: protocol messages, sessioned."""

        for envelope in envelopes:
            self._send_protocol(envelope.dest, envelope.message)

    def _dispatch_replay(self, envelopes: List[Envelope]) -> None:
        """Dispatch, annotating traces as durable-rejoin replay traffic."""

        if self.tracer is not None and envelopes:
            with self.tracer.annotated(self.node_id, "replay"):
                self._dispatch(envelopes)
        else:
            self._dispatch(envelopes)

    # ------------------------------------------------------------------
    # Application API.
    # ------------------------------------------------------------------

    def request(
        self,
        lock_id: LockId,
        mode: LockMode,
        ctx: object = None,
        priority: int = 0,
    ) -> None:
        """Request *lock_id* in *mode* with retransmission armed."""

        with self._mutex:
            self._dispatch(self.lockspace.request(lock_id, mode, ctx, priority))
            if (
                self.lockspace.automaton(lock_id).pending_mode
                is not LockMode.NONE
            ):
                self._arm_retry(lock_id)

    def release(self, lock_id: LockId, mode: LockMode) -> None:
        """Release one hold of *mode* on *lock_id*.

        A no-op on a lease-fenced node: the fence already force-released
        every hold (and reported it through ``forced_release_hook``), so
        a late application release has nothing left to release.
        """

        with self._mutex:
            if self._fenced:
                return
            self._dispatch(self.lockspace.release(lock_id, mode))
            now = self._scheduler.now()
            self.sessions.note_release(lock_id, str(mode), now)
            held = self.lockspace.automaton(lock_id).snapshot().held
            if not held:
                self.own_leases.drop(lock_id, self.node_id)
            self._journal_sessions()

    def upgrade(self, lock_id: LockId, ctx: object = None) -> None:
        """Upgrade a held ``U`` on *lock_id* to ``W``."""

        with self._mutex:
            self._dispatch(self.lockspace.upgrade(lock_id, ctx))

    # ------------------------------------------------------------------
    # Leases and sessions (see repro.leases / repro.services.sessions).
    # ------------------------------------------------------------------

    @property
    def fenced(self) -> bool:
        """Whether this node lease-fenced itself (quorum-silent too long).

        A fenced node has force-released every hold, stopped granting,
        and rejects new acquires; the state is permanent for the process
        (a partitioned minority rejoins by restarting, at which point
        the journal — not the fenced incarnation — is authoritative).
        """

        return self._fenced

    def note_grant(self, lock_id: LockId, mode: LockMode) -> None:
        """Record an application-level grant: lease it, credit the session.

        Called by the hosting cluster's grant listener.  Managers whose
        cluster never calls this run leaseless and keep the pre-lease
        behaviour everywhere (immediate eviction on suspicion, no
        self-fencing, no session tracking).
        """

        with self._mutex:
            now = self._scheduler.now()
            self.mint_lease(lock_id, mode)
            self.sessions.note_grant(lock_id, str(mode), now)
            self._journal_sessions()

    def mint_lease(self, lock_id: LockId, mode: LockMode) -> int:
        """Mint (or refresh) this node's lease on *lock_id*; return token.

        Split out of :meth:`note_grant` for the durable-rejoin reclaim
        path, where the owning session already records the hold and must
        not be credited twice.
        """

        with self._mutex:
            now = self._scheduler.now()
            epoch = self.lockspace.automaton(lock_id).token_epoch
            token = mint_fencing_token(epoch)
            lease = self.own_leases.grant(
                lock_id, str(mode), self.node_id, token, now
            )
            return lease.token

    def _journal_sessions(self) -> None:
        if self.journal is not None:
            self.journal.record_sessions(self.sessions.export())

    def _quorum_horizon(self) -> float:
        """The most recent instant this node had contact with a quorum.

        Counting itself, the node needs ``⌊n/2⌋`` peers: the horizon is
        the ``⌊n/2⌋``-th most recent peer last-seen time.  While
        connected this tracks ``now`` to within a heartbeat; on the
        minority side of a partition it freezes at the cut.
        """

        peers_needed = len(self.membership) // 2 + 1 - 1
        if peers_needed <= 0:
            return self._scheduler.now()
        seen = sorted(
            (
                self.detector.last_seen(peer)
                for peer in self.membership
                if peer != self.node_id
            ),
            reverse=True,
        )
        if peers_needed > len(seen):
            return 0.0
        return seen[peers_needed - 1]

    def _lease_tick(self, now: float) -> None:
        """Periodic lease maintenance, from :meth:`_failure_tick`.

        Order matters: revocation of peers' expired leases runs first
        (their self-fence deadline — one revoke margin earlier — has
        provably passed), then this node's own self-fence check, then
        session GC.

        A fenced node never revokes: it fenced *because* its view of the
        cluster is stale, so its mirrored peer leases reflect the other
        side of a cut it cannot see across — revoking them would forcibly
        "release" holds that are perfectly healthy over there.  (The
        self-fence check runs before any minority revocation could: a
        quorum-silent node crosses the fence threshold one revoke margin
        before the earliest mirror expiry it could act on.)
        """

        for lease in [] if self._fenced else self.remote_leases.expired(now):
            if not self.detector.is_suspected(lease.holder):
                # Still heartbeating: its own advertisements refresh or
                # retire the lease; revoking a reachable holder is the
                # clock-skew trap the margin exists to avoid.
                continue
            self.remote_leases.drop(lease.lock, lease.holder)
            self.leases_revoked += 1
            self.revoke_latencies.append(max(0.0, now - lease.deadline))
            deferred = self._deferred_evictions.get(lease.holder)
            if deferred is not None:
                deferred.discard(lease.lock)
                if not deferred:
                    del self._deferred_evictions[lease.holder]
            automaton = self.lockspace.automaton(lease.lock)
            # Floor first: any in-flight traffic stamped with the
            # revoked token dies at every automaton that saw the revoke.
            automaton.raise_fence_floor(lease.token)
            self._dispatch(automaton.evict_child(lease.holder))
            if self.obs is not None:
                self.obs.fault("lease-revoke", lease.holder)
            if self.forced_release_hook is not None:
                self.forced_release_hook(lease.holder, lease.lock)
        self._maybe_self_fence(now)
        removed = self.sessions.gc(now, self.lease_config.session_ttl)
        if removed:
            self.sessions_gced += removed
            self._journal_sessions()

    def _maybe_self_fence(self, now: float) -> None:
        if self._fenced or not self._leases_in_use():
            return
        if len(self.membership) < 3:
            # With two members either node alone "loses quorum" the
            # moment the other blips; self-fencing would turn every
            # false suspicion into data loss.  Two-node clusters keep
            # the pre-lease behaviour (operator-resolved splits).
            return
        if now - self._quorum_horizon() >= self.lease_config.duration:
            self._self_fence(now)

    def _leases_in_use(self) -> bool:
        """Whether this cluster runs the lease layer at all.

        Managers whose hosting cluster never mints or advertises leases
        (plain recovery deployments) keep the pre-lease behaviour —
        no self-fencing.  Any lease traffic, own or observed, opts the
        node in: a quorum-silent member of a leased cluster must fence
        even when it holds nothing, because its *pending* requests are
        stuck forever and must be abandoned for the verdict to account
        for them.
        """

        return bool(
            len(self.own_leases)
            or len(self.remote_leases)
            or self.lease_renewals_sent
            or self.lease_renewals_received
        )

    def _self_fence(self, now: float) -> None:
        """Void this node's own leases: force-release every hold.

        Runs strictly before any peer's revocation of the same leases
        (peers wait the extra revoke margin), so at no instant do a
        revoked-and-regranted hold and this node's original hold
        coexist — the Rule-1 argument of the lease layer.
        """

        self._fenced = True
        self.fenced_at = now
        self.own_leases.clear()
        self.sessions.expire_all()
        for automaton in list(self.lockspace.automata()):
            out, released = automaton.fence_holds()
            self._dispatch(out)
            if released and self.forced_release_hook is not None:
                self.forced_release_hook(self.node_id, automaton.lock_id)
        self._journal_sessions()

    def _lease_regen_horizon(self, lock_id: LockId) -> Optional[float]:
        """Earliest safe instant to regenerate *lock_id*'s token.

        ``None`` when no suspected holder has an unexpired lease on the
        lock; otherwise the latest such lease's revocation instant
        (deadline + revoke margin) — by which the holder, if alive, has
        self-fenced.
        """

        now = self._scheduler.now()
        horizon = None
        for lease in self.remote_leases.leases():
            if lease.lock != lock_id:
                continue
            if not self.detector.is_suspected(lease.holder):
                continue
            until = lease.deadline + self.lease_config.revoke_margin
            if until > now and (horizon is None or until > horizon):
                horizon = until
        return horizon

    # ------------------------------------------------------------------
    # Inbound.
    # ------------------------------------------------------------------

    def handle(self, message: Message) -> List[Envelope]:
        """Transport sink: consume one message off the fabric.

        Fits the simulator's handler signature by always returning ``[]``
        — replies go out through :attr:`channel`/raw sends instead, so
        they too enjoy reliability and fault injection.
        """

        with self._mutex:
            if not self._running:
                return []
            if message.sender in self._departed:
                # Stale traffic from an excised node: its token (if any)
                # was handed off or regenerated and its copyset entries
                # evicted at view install; nothing it says is current.
                return []
            # A SessionAck's ``boot`` echoes the acked FRAME's boot (the
            # receiver of this ack), not the ack sender's incarnation.
            # Reading it as the sender's would make every peer acking a
            # restarted node's frames look freshly restarted itself, and
            # the resulting stop_peer would wipe a live in-stream mid
            # conversation — deadlocking the pair (the sender believes
            # its early frames are acked and never resends; the wiped
            # receiver waits for seq 0 forever).
            boot = getattr(message, "boot", None)
            if isinstance(message, SessionAck):
                boot = None
            self._note_life(message.sender, boot)
            if self.channel.handle(message):
                return []
            if isinstance(message, HeartbeatMessage):
                self._on_heartbeat(message)
                return []
            if isinstance(message, OrphanReport):
                self._on_orphan_report(message)
            elif isinstance(message, TokenProbe):
                self._on_token_probe(message)
            elif isinstance(message, TokenAck):
                self._on_token_ack(message)
            elif isinstance(message, ReparentMessage):
                self._on_reparent(message)
            elif isinstance(message, ViewProposal):
                self._on_view_proposal(message)
            elif isinstance(message, ViewAck):
                self._on_view_ack(message)
            elif isinstance(message, ViewInstall):
                self._on_view_install(message)
            elif isinstance(message, JoinRequest):
                self._on_join_request(message)
            elif isinstance(message, StateTransfer):
                self._on_state_transfer(message)
            elif isinstance(message, HandoffMessage):
                self._on_handoff(message)
            elif isinstance(message, ChildMigrate):
                self._on_child_migrate(message)
            else:
                # A raw (unsessioned) protocol message; tolerated so the
                # manager can also front a plain reliable transport.
                self._deliver(message.sender, message)
        return []

    def _deliver(self, peer: NodeId, payload: Message) -> None:
        """In-order payload from the channel: run the automaton."""

        with self._mutex:
            self._dispatch(self.lockspace.handle(payload))

    def _on_heartbeat(self, message: HeartbeatMessage) -> None:
        """A peer's heartbeat: resolve deferred evictions, renew leases.

        The advertised lease set is authoritative for the sender's
        incarnation: a deferred eviction (suspicion of a leased holder)
        is resolved by comparing against it.  A false suspicion or a
        durable reclaim advertises the hold — keep it; a blank restart
        advertises nothing — evict the ghost copyset entry now.
        """

        now = self._scheduler.now()
        deferred = self._deferred_evictions.pop(message.sender, None)
        if deferred:
            advertised = {str(row[0]) for row in message.leases}
            for lock_id in sorted(deferred):
                if lock_id in advertised:
                    continue
                self._dispatch(
                    self.lockspace.automaton(lock_id).evict_child(
                        message.sender
                    )
                )
        self.lease_renewals_received += self.remote_leases.observe(
            message.sender, message.leases, now
        )
        if message.view_epoch < self.view_epoch:
            # View anti-entropy: the sender runs a stale view (lost the
            # install, or is a joiner still on its bootstrap view).
            self._send_view_install(message.sender)

    def _note_life(self, peer: NodeId, boot: Optional[int]) -> None:
        now = self._scheduler.now()
        revived = self.detector.beat(peer, now)
        restarted = False
        if boot is not None and peer != self.node_id:
            known = self._peer_boots.get(peer, 0)
            if boot > known:
                self._peer_boots[peer] = boot
                restarted = known > 0 or boot > 0
        if revived and self.obs is not None:
            self.obs.fault("unsuspect", peer)
        if restarted:
            # The peer's channel sessions died with it.  A restart faster
            # than the suspect timeout never reaches ``_on_suspect``, so
            # without this the stale outbound stream would keep numbering
            # frames the new incarnation rejects.
            self.channel.stop_peer(peer)
            # Re-assert our subtrees toward the restarted node: a durable
            # restart holds our copyset entry only *provisionally* until
            # a live announcement confirms it, and a blank restart must
            # relearn it from scratch.
            reassert: List[Envelope] = []
            for automaton in list(self.lockspace.automata()):
                if automaton.parent == peer:
                    reassert.extend(automaton.reassert_owned())
            self._dispatch_replay(reassert)
        if restarted or revived:
            # A restarted peer rejoins blank; a revived one may sit on
            # the wrong side of a healed partition.  Replay the known
            # token placements so a stale token copy over there (a
            # resurrected token home, or a pre-partition root) demotes
            # itself immediately.
            for lock_id, (holder, epoch) in self._token_hints.items():
                self._raw_send(
                    peer,
                    ReparentMessage(
                        lock_id=lock_id,
                        sender=self.node_id,
                        parent=holder,
                        epoch=epoch,
                    ),
                )

    # ------------------------------------------------------------------
    # Durable rejoin (see repro.persist and docs/PERSISTENCE.md).
    # ------------------------------------------------------------------

    def rejoin_from_journal(
        self,
        state: Dict[LockId, Dict[str, object]],
        reclaim: Optional[Callable[[LockId, LockMode], bool]] = None,
    ) -> Dict[str, object]:
        """Adopt recovered journal *state* and reconcile with the cluster.

        *state* is the output of
        :func:`repro.persist.journal.recover_node_state`: one persisted
        payload per lock, recovered from snapshot + WAL replay.  Per lock:

        * the automaton adopts the payload verbatim under this boot;
        * the embedded monitoring snapshot is cross-checked against the
          live ``snapshot()`` (WAL and snapshot layers audit each other);
        * a restored **token holder** begins custody fencing: it queues
          instead of granting until probes and replayed placement hints
          settle whether its epoch is still current (confirmed after
          ``config.rejoin_settle``, quorum-gated; fenced immediately when
          a placement of at least its epoch surfaces elsewhere);
        * the pre-crash pending request is disowned (its waiter died with
          the old process) and restored holds are released — unless
          ``reclaim(lock, mode)`` claims one for the restarted
          application;
        * a non-token node re-asserts its owned mode to its parent, and
          its restored (provisional) copyset entries expire after the
          settle window unless children re-confirm them.

        Returns a JSON-safe report of what was restored.
        """

        import json

        report: Dict[str, object] = {
            "locks_restored": 0,
            "holds_released": 0,
            "holds_reclaimed": 0,
            "custody": [],
            "reasserted": 0,
            "snapshot_mismatches": 0,
            "reclaim_partial_fanout": 0,
        }
        with self._mutex:
            for lock_id in sorted(state):
                payload = state[lock_id]
                automaton = self.lockspace.automaton(lock_id)
                automaton.adopt_persisted(payload)
                report["locks_restored"] += 1
                live_view = json.dumps(
                    automaton.snapshot().to_payload(), sort_keys=True
                )
                saved_view = json.dumps(
                    payload.get("snapshot"), sort_keys=True
                )
                if live_view != saved_view:
                    report["snapshot_mismatches"] += 1
                    if self.obs is not None:
                        self.obs.fault("persist-mismatch", self.node_id)
                if automaton.has_token:
                    automaton.begin_custody_fence()
                    report["custody"].append(lock_id)
                    self._begin_rejoin(lock_id, automaton.token_epoch)
                self._dispatch_replay(automaton.abandon_pending())
                held = automaton.snapshot().to_payload().get("held", ())
                for mode_name, count in list(held):
                    mode = LockMode(str(mode_name))
                    for _ in range(int(count)):
                        if reclaim is not None and reclaim(lock_id, mode):
                            report["holds_reclaimed"] += 1
                            self._check_reclaim_fanout(lock_id, report)
                            continue
                        self._dispatch_replay(
                            self.lockspace.release(lock_id, mode)
                        )
                        report["holds_released"] += 1
                if not automaton.has_token:
                    out = automaton.reassert_owned()
                    report["reasserted"] += len(out)
                    self._dispatch_replay(out)
                    self._scheduler.call_later(
                        self.config.rejoin_settle,
                        lambda lock_id=lock_id: self._provisional_expiry_fire(
                            lock_id
                        ),
                    )
            self.rejoin_report = report
            self.holds_reclaimed = int(report["holds_reclaimed"])
            if report["locks_restored"]:
                self._restored = True
                if self.obs is not None:
                    self.obs.fault("rejoin", self.node_id)
        return report

    def _check_reclaim_fanout(
        self, lock_id: LockId, report: Dict[str, object]
    ) -> None:
        """Warn when a reclaimed hold's pre-crash advertisement was partial.

        Reclaim safety rests on the hold's lease having been advertised
        by broadcast heartbeat, so that peers pinned the copyset entry
        while this node was down (PROTOCOL.md §14).  The session journal
        records how many live peers each advertisement actually reached;
        if that fan-out never covered a quorum of the current view, the
        pinning assumption is unproven — surface it as a fault event
        instead of reclaiming silently.
        """

        fanout = self.sessions.advert_fanout(lock_id)
        if fanout is None:
            return  # Pre-fanout journal payload: nothing recorded.
        reached = fanout + 1  # The advertiser itself counts.
        if reached * 2 <= len(self.membership):
            report["reclaim_partial_fanout"] = (
                int(report.get("reclaim_partial_fanout", 0)) + 1
            )
            if self.obs is not None:
                self.obs.fault("reclaim-partial-fanout", self.node_id)

    def _begin_rejoin(self, lock_id: LockId, epoch: int) -> None:
        entry = self._rejoin.get(lock_id)
        if entry is None:
            entry = self._rejoin[lock_id] = {"epoch": 0, "generation": 0}
        entry["epoch"] = int(epoch)
        entry["generation"] += 1
        generation = entry["generation"]
        self._probe_rejoin(lock_id)
        self._scheduler.call_later(
            self.config.orphan_interval,
            lambda: self._rejoin_probe_fire(lock_id, generation),
        )
        self._scheduler.call_later(
            self.config.rejoin_settle,
            lambda: self._rejoin_deadline(lock_id, generation),
        )

    def _probe_rejoin(self, lock_id: LockId) -> None:
        """Ask every live peer whether a token for *lock_id* lives there."""

        message = TokenProbe(lock_id=lock_id, sender=self.node_id)
        for peer in self.membership:
            if peer != self.node_id and not self.detector.is_suspected(peer):
                self._raw_send(peer, message)

    def _rejoin_probe_fire(self, lock_id: LockId, generation: int) -> None:
        with self._mutex:
            entry = self._rejoin.get(lock_id)
            if (
                not self._running
                or entry is None
                or entry["generation"] != generation
            ):
                return
            # Probes ride the raw fabric and may be lost; keep re-asking
            # until the settle deadline resolves custody either way.
            self._probe_rejoin(lock_id)
            self._scheduler.call_later(
                self.config.orphan_interval,
                lambda: self._rejoin_probe_fire(lock_id, generation),
            )

    def _rejoin_deadline(self, lock_id: LockId, generation: int) -> None:
        with self._mutex:
            entry = self._rejoin.get(lock_id)
            if (
                not self._running
                or entry is None
                or entry["generation"] != generation
            ):
                return
            live = [
                n
                for n in self.membership
                if n == self.node_id or not self.detector.is_suspected(n)
            ]
            if len(live) * 2 <= len(self.membership):
                # No quorum: a regenerated token may be serving across
                # the cut.  Confirming custody here could fork the lock
                # space, so keep the fence up and probe again.
                entry["generation"] = generation + 1
                self._probe_rejoin(lock_id)
                self._scheduler.call_later(
                    self.config.rejoin_settle,
                    lambda: self._rejoin_deadline(lock_id, generation + 1),
                )
                return
            # Settle window elapsed with quorum visibility and no
            # contrary evidence: the restored epoch stands.
            self._resolve_rejoin(lock_id, confirmed=True)

    def _provisional_expiry_fire(self, lock_id: LockId) -> None:
        with self._mutex:
            if not self._running:
                return
            automaton = self.lockspace.automaton(lock_id)
            if automaton.custody_pending:
                return  # Custody resolution owns the expiry for this lock.
            self._dispatch_replay(automaton.expire_provisional_children())

    def _resolve_rejoin(
        self,
        lock_id: LockId,
        confirmed: bool,
        epoch: int = 0,
        holder: Optional[NodeId] = None,
    ) -> None:
        entry = self._rejoin.pop(lock_id, None)
        if entry is None:
            return
        entry["generation"] += 1  # Disarm outstanding timers.
        automaton = self.lockspace.automaton(lock_id)
        if confirmed:
            self.custody_confirmed += 1
            if self.obs is not None:
                self.obs.fault("custody-confirmed", self.node_id)
            self._dispatch_replay(automaton.confirm_custody())
            # Broadcast the settled placement so survivors re-home and
            # any stale regeneration-in-progress stands down.
            self._announce(
                lock_id, self.node_id, automaton.token_epoch, broadcast=True
            )
        else:
            self.custody_fenced += 1
            if self.obs is not None:
                self.obs.fault("custody-fenced", self.node_id)
            self._note_hint(lock_id, holder, epoch)
            self._dispatch_replay(automaton.fence_custody(epoch, holder))
            if automaton.pending_mode is not LockMode.NONE:
                # A request issued during the fence window was queued
                # locally; re-route it under the new parent.
                self._dispatch_replay(automaton.retransmit_pending())
                self._arm_retry(lock_id)

    # ------------------------------------------------------------------
    # Periodic timers.
    # ------------------------------------------------------------------

    def _heartbeat_tick(self) -> None:
        with self._mutex:
            if not self._running:
                return
            # The heartbeat IS the lease renewal: every own lease is
            # renewed locally and the full set is advertised so peers'
            # mirrors extend in lockstep.  No extra messages per lease.
            now = self._scheduler.now()
            self._sweep_departed_traces()
            if not self._fenced:
                for row in self.own_leases.export():
                    self.own_leases.renew(str(row[0]), self.node_id, now)
            leases = self.own_leases.export()
            self.lease_renewals_sent += len(leases)
            # Advertisement makes a hold reclaimable after a durable
            # restart (peers pin advertised leases until expiry), so the
            # journaled session payload must record it before the beat
            # leaves — a crash between grant and first advertisement
            # leaves the hold correctly un-reclaimable.
            peers = [n for n in self.membership if n != self.node_id]
            fanout = len(
                [p for p in peers if not self.detector.is_suspected(p)]
            )
            if leases and self.sessions.note_advertised(
                [row[0] for row in leases], fanout=fanout
            ):
                self._journal_sessions()
            beat = HeartbeatMessage(
                lock_id="",
                sender=self.node_id,
                boot=self.boot,
                leases=leases,
                restored=self._restored,
                view_epoch=self.view_epoch,
            )
            self._scheduler.call_later(
                self.config.heartbeat_interval, self._heartbeat_tick
            )
        for peer in peers:
            self._raw_send(peer, beat)

    def _sweep_departed_traces(self) -> None:
        """Evict any copyset/queue trace of a departed node (called from
        the heartbeat tick, under the mutex).

        View install already excises the departed everywhere, but a
        trace can be re-learned afterwards through an indirect path the
        departed-sender guard cannot see: a relayed request (live
        sender, departed origin) or the queue payload riding a custody
        ``TokenMessage``.  Granting such a request records the dead node
        as a child whose release can never come, wedging the queue
        behind it forever — so sweep once per beat; eviction replays the
        clean-release path and unblocks anything queued behind the
        ghost.

        The sweep also heals stale *parent* pointers at departed peers.
        View install rehomes the automata that exist at that moment, but
        an automaton instantiated later (a node's first request for a
        lock whose static token home has since left) starts with its
        configured default parent — a dead letterbox: the request would
        be sent into the void and strand forever.  Such parents go
        through the orphan probe, whose announce reattaches the node to
        the live holder and retries anything pending.
        """

        if not self._departed:
            return
        for automaton in list(self.lockspace.automata()):
            stale = set(automaton.children) & self._departed
            stale.update(
                req.origin
                for req in automaton.queued_requests
                if req.origin in self._departed
            )
            for peer in sorted(stale):
                self._dispatch(automaton.evict_child(peer))
            hint = self._token_hints.get(automaton.lock_id)
            if (
                automaton.parent in self._departed
                and not automaton.has_token
                and automaton.lock_id not in self._orphans
                and automaton.lock_id not in self._probes
                # A hint naming ourselves is our own regeneration claim
                # riding out its settle window; re-probing now would
                # supersede it with a fresh epoch every beat and the
                # token would never actually regenerate.
                and (hint is None or hint[0] != self.node_id)
            ):
                self._start_orphan(automaton.lock_id, automaton.parent)

    def _failure_tick(self) -> None:
        with self._mutex:
            if not self._running:
                return
            now = self._scheduler.now()
            fresh = self.detector.check(now)
            self._scheduler.call_later(
                self.config.heartbeat_interval, self._failure_tick
            )
            for peer in fresh:
                self._on_suspect(peer)
            self._lease_tick(now)

    # -- request retransmission -----------------------------------------

    def _arm_retry(self, lock_id: LockId) -> None:
        entry = self._retries.get(lock_id)
        if entry is None:
            entry = self._retries[lock_id] = [0, self.config.retry_base]
        entry[0] += 1
        entry[1] = self.config.retry_base
        generation = entry[0]
        self._scheduler.call_later(
            entry[1], lambda: self._retry_fire(lock_id, generation)
        )

    def _retry_fire(self, lock_id: LockId, generation: int) -> None:
        with self._mutex:
            entry = self._retries.get(lock_id)
            if (
                not self._running
                or entry is None
                or entry[0] != generation
            ):
                return
            automaton = self.lockspace.automaton(lock_id)
            if automaton.pending_mode is LockMode.NONE:
                del self._retries[lock_id]
                return  # Granted in the meantime; retries lazily cancel.
            out: List[Envelope] = []
            hint = self._token_hints.get(lock_id)
            if (
                entry[1] >= self.config.retry_cap
                and hint is not None
                and hint[0] != self.node_id
                and hint[0] != automaton.parent
                and not automaton.has_token
            ):
                # Backoff is capped: plain retransmission has failed
                # repeatedly, so the request may be circling a stale
                # subtree (fault-era reattachments can momentarily cross
                # into a parent cycle that no longer reaches the token).
                # Escape by re-homing under the last announced token
                # lineage — the hint need not name the current holder,
                # only a node whose parent chain reaches it, which every
                # past token node's does.
                out = automaton.reattach(hint[0], detach=True)
            if not out:
                out = automaton.retransmit_pending()
            self.app_retransmits += len(out)
            if self.obs is not None:
                for _ in out:
                    self.obs.fault("app-retransmit", self.node_id)
            if self.tracer is not None and out:
                # Re-sent requests join their chain as annotated hops.
                with self.tracer.annotated(self.node_id, "retransmit"):
                    self._dispatch(out)
            else:
                self._dispatch(out)
            entry[1] = min(entry[1] * 2, self.config.retry_cap)
            self._scheduler.call_later(
                entry[1], lambda: self._retry_fire(lock_id, generation)
            )

    # ------------------------------------------------------------------
    # Failure handling.
    # ------------------------------------------------------------------

    def _on_suspect(self, peer: NodeId) -> None:
        now = self._scheduler.now()
        self.suspect_log.append((now, peer))
        if self.obs is not None:
            self.obs.fault("suspect", peer)
            # The heartbeat detector declared the peer dead: surface it
            # through the same hook real transports use for lost links.
            self.obs.peer_lost(peer, "heartbeat timeout")
        self.channel.stop_peer(peer)
        for automaton in list(self.lockspace.automata()):
            lock_id = automaton.lock_id
            if self.remote_leases.holder_active(lock_id, peer, now):
                # The suspect still owns an unexpired lease on this lock:
                # its hold stays pinned until the lease runs out (it may
                # be a false suspicion, and even a real death must wait
                # for the holder's self-fence deadline before the hold is
                # broken).  The eviction resolves at the peer's next
                # heartbeat (kept, if advertised) or at lease revocation.
                self._deferred_evictions.setdefault(peer, set()).add(lock_id)
            else:
                self._dispatch(automaton.evict_child(peer))
            if automaton.parent == peer:
                self._start_orphan(lock_id, peer)

    def _regenerator(self) -> NodeId:
        """The live node that coordinates regeneration: the highest id
        among surviving members (every survivor computes the same one,
        modulo detector disagreement — the protocol tolerates several
        coordinators, see docs/FAULTS.md)."""

        live = [
            n
            for n in self.membership
            if n == self.node_id or not self.detector.is_suspected(n)
        ]
        return max(live)

    def _start_orphan(self, lock_id: LockId, suspect: NodeId) -> None:
        coordinator = self._regenerator()
        if coordinator == self.node_id:
            self._ensure_probe(lock_id, reporter=self.node_id)
            return
        entry = self._orphans.get(lock_id)
        if entry is None:
            entry = self._orphans[lock_id] = [suspect, 0]
        entry[0] = suspect
        entry[1] += 1
        self._orphan_fire(lock_id, entry[1])

    def _orphan_fire(self, lock_id: LockId, generation: int) -> None:
        with self._mutex:
            entry = self._orphans.get(lock_id)
            if not self._running or entry is None or entry[1] != generation:
                return
            coordinator = self._regenerator()
            if coordinator == self.node_id:
                # Everyone above us died; we are the coordinator now.
                del self._orphans[lock_id]
                self._ensure_probe(lock_id, reporter=self.node_id)
                return
            automaton = self.lockspace.automaton(lock_id)
            report = OrphanReport(
                lock_id=lock_id,
                sender=self.node_id,
                suspect=entry[0],
                epoch=automaton.token_epoch,
            )
            self._scheduler.call_later(
                self.config.orphan_interval,
                lambda: self._orphan_fire(lock_id, generation),
            )
        self._raw_send(coordinator, report)

    # -- coordinator side -------------------------------------------------

    def _ensure_probe(
        self, lock_id: LockId, reporter: NodeId, epoch: int = 0
    ) -> None:
        automaton = self.lockspace.automaton(lock_id)
        if automaton.has_token:
            if automaton.custody_pending:
                # Restored custody is still being confirmed; announcing
                # ourselves now could spread a stale placement.  The
                # reporter keeps re-sending until the rejoin resolves and
                # broadcasts the settled placement.
                return
            # No mystery: the token is right here.  Tell the reporter.
            self._announce(
                lock_id, self.node_id, automaton.token_epoch, {reporter}
            )
            return
        probe = self._probes.get(lock_id)
        if probe is not None:
            probe["reporters"].add(reporter)  # type: ignore[union-attr]
            probe["epoch"] = max(probe["epoch"], epoch)  # type: ignore
            return
        probe = self._probes[lock_id] = {
            "epoch": max(epoch, automaton.token_epoch),
            "reporters": {reporter},
            "generation": 0,
        }
        message = TokenProbe(lock_id=lock_id, sender=self.node_id)
        peers = [
            n
            for n in self.membership
            if n != self.node_id and not self.detector.is_suspected(n)
        ]
        for peer in peers:
            self._raw_send(peer, message)
        generation = probe["generation"]
        self._scheduler.call_later(
            self.config.probe_timeout,
            lambda: self._probe_deadline(lock_id, generation),
        )

    def _on_orphan_report(self, msg: OrphanReport) -> None:
        self._ensure_probe(msg.lock_id, reporter=msg.sender, epoch=msg.epoch)

    def _on_token_probe(self, msg: TokenProbe) -> None:
        automaton = self.lockspace.automaton(msg.lock_id)
        if automaton.has_token:
            self._raw_send(
                msg.sender,
                TokenAck(
                    lock_id=msg.lock_id,
                    sender=self.node_id,
                    epoch=automaton.token_epoch,
                ),
            )

    def _on_token_ack(self, msg: TokenAck) -> None:
        rejoin = self._rejoin.get(msg.lock_id)
        if rejoin is not None:
            if msg.sender != self.node_id and msg.epoch >= int(
                rejoin["epoch"]
            ):
                # A live token of at least our restored epoch answers
                # from elsewhere: our custody is stale.  Demote under it.
                # (``>=`` also covers a handed-off token whose transfer
                # was journalled but raced the crash.)
                self._resolve_rejoin(
                    msg.lock_id,
                    confirmed=False,
                    epoch=msg.epoch,
                    holder=msg.sender,
                )
            return
        probe = self._probes.pop(msg.lock_id, None)
        if probe is None:
            return
        probe["generation"] = -1  # Disarm the deadline.
        self._announce(
            msg.lock_id, msg.sender, msg.epoch, probe["reporters"]
        )

    def _probe_deadline(self, lock_id: LockId, generation: int) -> None:
        with self._mutex:
            probe = self._probes.get(lock_id)
            if (
                not self._running
                or probe is None
                or probe["generation"] != generation
            ):
                return
            automaton = self.lockspace.automaton(lock_id)
            if automaton.has_token:
                del self._probes[lock_id]
                self._announce(
                    lock_id, self.node_id, automaton.token_epoch,
                    probe["reporters"],
                )
                return
            live = [
                n
                for n in self.membership
                if n == self.node_id or not self.detector.is_suspected(n)
            ]
            if len(live) * 2 <= len(self.membership):
                # No quorum: we may be the minority side of a partition,
                # with a perfectly healthy token across the cut.
                # Regenerating here would fork the lock space, so keep
                # probing instead — liveness resumes when the fabric
                # heals (or enough members return).
                probe["generation"] = generation + 1
                message = TokenProbe(lock_id=lock_id, sender=self.node_id)
                for peer in live:
                    if peer != self.node_id:
                        self._raw_send(peer, message)
                self._scheduler.call_later(
                    self.config.probe_timeout,
                    lambda: self._probe_deadline(lock_id, generation + 1),
                )
                return
            del self._probes[lock_id]
            # Nobody answered and a majority is visible: the token died
            # with the crash.  Claim the next epoch (the automaton's
            # floor may have moved past the probe's snapshot, so climb
            # above both) and broadcast the claim — survivors reattach
            # under us and re-assert their owned modes.  Only after the
            # settle window do we actually serve from the regenerated
            # token: granting from an empty copyset before the
            # re-assertions land could violate Rule 1.
            epoch = max(int(probe["epoch"]), automaton.token_epoch) + 1
            self._announce(lock_id, self.node_id, epoch, broadcast=True)
            self._scheduler.call_later(
                self.config.regen_settle,
                lambda: self._regen_fire(lock_id, epoch),
            )

    def _regen_fire(self, lock_id: LockId, epoch: int) -> None:
        with self._mutex:
            if not self._running:
                return
            if self._token_hints.get(lock_id) != (self.node_id, epoch):
                return  # A higher claim (or a real token) won meanwhile.
            automaton = self.lockspace.automaton(lock_id)
            if automaton.has_token:
                return  # The token surfaced after all (e.g. adopted).
            horizon = self._lease_regen_horizon(lock_id)
            if horizon is not None:
                # A suspected holder still owns an unexpired lease on
                # this lock: regenerating now could grant over its hold.
                # Wait out the latest such lease (plus the revoke margin
                # already folded into the horizon) and try again.
                self._scheduler.call_later(
                    horizon - self._scheduler.now() + 0.1,
                    lambda: self._regen_fire(lock_id, epoch),
                )
                return
            out = automaton.regenerate_token(epoch)
            self.regenerations.append(
                {"lock": lock_id, "epoch": epoch, "node": self.node_id}
            )
            if self.tracer is not None and out:
                # Grants flowing from a regenerated token are annotated
                # so traces show which hops recovery manufactured.
                with self.tracer.annotated(self.node_id, "regen"):
                    self._dispatch(out)
            else:
                self._dispatch(out)
            # Re-broadcast: anyone who missed the claim (or joined the
            # quorum since) learns the final placement.
            self._announce(lock_id, self.node_id, epoch, broadcast=True)

    def _announce(
        self,
        lock_id: LockId,
        holder: NodeId,
        epoch: int,
        reporters: Optional[Set[NodeId]] = None,
        broadcast: bool = False,
    ) -> None:
        """Tell orphans (and, after a regeneration, everyone) where the
        token now lives."""

        self._note_hint(lock_id, holder, epoch)
        message = ReparentMessage(
            lock_id=lock_id, sender=self.node_id, parent=holder, epoch=epoch
        )
        if broadcast:
            targets = {
                n
                for n in self.membership
                if not self.detector.is_suspected(n)
            }
        else:
            targets = set(reporters or ())
        targets.discard(self.node_id)
        for target in sorted(targets):
            self._raw_send(target, message)
        # Apply locally too (the coordinator may itself be an orphan).
        self._apply_reparent(lock_id, holder, epoch)

    # -- orphan side -------------------------------------------------------

    def _note_hint(self, lock_id: LockId, holder: NodeId, epoch: int) -> None:
        """Record a token placement, keeping the most recent lineage.

        Ordered by ``(epoch, holder)`` so stale announcements replayed
        across a healed partition cannot roll a hint backwards.
        """

        known = self._token_hints.get(lock_id)
        if known is None or (epoch, holder) >= (known[1], known[0]):
            self._token_hints[lock_id] = (holder, epoch)

    def _on_reparent(self, msg: ReparentMessage) -> None:
        self._note_hint(msg.lock_id, msg.parent, msg.epoch)
        probe = self._probes.get(msg.lock_id)
        if probe is not None and msg.epoch >= int(probe["epoch"]):
            # Another coordinator resolved this lock while we probed.
            del self._probes[msg.lock_id]
        self._apply_reparent(
            msg.lock_id, msg.parent, msg.epoch, sender=msg.sender
        )

    def _apply_reparent(
        self,
        lock_id: LockId,
        holder: NodeId,
        epoch: int,
        sender: Optional[NodeId] = None,
    ) -> None:
        rejoin = self._rejoin.get(lock_id)
        if rejoin is not None:
            if holder != self.node_id and epoch >= int(rejoin["epoch"]):
                # A placement of at least our restored epoch names
                # someone else: fence immediately.
                self._resolve_rejoin(
                    lock_id, confirmed=False, epoch=epoch, holder=holder
                )
            # A hint naming *us* is a peer replaying our own pre-crash
            # placement; agreement still waits for the settle deadline —
            # a higher-epoch regeneration may be one hop behind it.
            return
        automaton = self.lockspace.automaton(lock_id)
        self._dispatch(automaton.observe_epoch(epoch, holder))
        orphaned = self._orphans.pop(lock_id, None)
        if orphaned is not None:
            orphaned[1] += 1  # Stop the report timer.
        needs_home = orphaned is not None or (
            automaton.parent is not None
            and (
                # A departed parent is as gone as a suspected one, but
                # gracefully removed peers never trip the failure
                # detector — without this, a node that coordinated its
                # own orphan probe (no _orphans entry) would keep its
                # stale hint at the leaver forever.
                self.detector.is_suspected(automaton.parent)
                or automaton.parent in self._departed
            )
        )
        if (
            not needs_home
            and sender is not None
            and sender == automaton.parent
            and holder != sender
        ):
            # A parent-directed reparent: our own (live) parent tells us
            # to attach elsewhere — the graceful-departure child
            # migration (see repro.membership).  Authoritative because
            # only the current parent may retract an attachment it
            # accounts for, and it recorded us at *holder* first.
            needs_home = True
        if needs_home and not automaton.has_token:
            self._dispatch(automaton.reattach(holder))
            if automaton.pending_mode is not LockMode.NONE:
                self._arm_retry(lock_id)

    # ------------------------------------------------------------------
    # Membership: view changes, join, graceful leave, decommission
    # (see repro.membership and docs/MEMBERSHIP.md).
    # ------------------------------------------------------------------

    @property
    def view(self) -> MembershipView:
        """The currently installed membership view."""

        return MembershipView(self.view_epoch, tuple(self.membership))

    @property
    def departing(self) -> bool:
        """True while this node is gracefully leaving the cluster."""

        return self._departing

    @property
    def has_left(self) -> bool:
        """True once this node's own removal view has been installed."""

        return self._departure is not None and self.node_id not in self.membership

    def adopt_view(self, payload: Dict[str, object]) -> None:
        """Adopt a journalled view (durable restart, before :meth:`start`).

        Restarting into the *bootstrap* member list would resurrect
        departed nodes and mis-size every quorum; the WAL records each
        installed view so a restarted node rejoins the current one.
        """

        with self._mutex:
            epoch = int(payload.get("epoch", 0))
            if epoch < self.view_epoch:
                return
            members = sorted(int(n) for n in payload.get("members", ()))
            self.view_epoch = epoch
            if members:
                self.membership = members
            self._departed = {int(n) for n in payload.get("departed", ())}
            if epoch:
                self._view_record = {
                    "epoch": epoch,
                    "members": tuple(self.membership),
                    "joined": (),
                    "removed": tuple(sorted(self._departed)),
                    "forced": False,
                }
            now = self._scheduler.now()
            tracked = set(self.detector.live_peers()) | self.detector.suspected
            for peer in self.membership:
                if peer != self.node_id:
                    self.detector.add_peer(peer, now)
            for peer in tracked:
                if peer not in self.membership:
                    self.detector.forget(peer)

    def propose_view(
        self,
        joined: Iterable[NodeId] = (),
        removed: Iterable[NodeId] = (),
        forced: bool = False,
    ) -> int:
        """Start a two-phase view change; returns the proposed epoch.

        Quorum is counted over the *current* (pre-change) view, mirroring
        the token-regeneration pattern: the proposer acks itself, collects
        :class:`ViewAck` from a majority of current members, then installs
        and broadcasts.  The proposal is re-sent on the orphan interval
        until installed or superseded by a higher-epoch install.
        """

        with self._mutex:
            joined = tuple(sorted(set(joined)))
            removed = tuple(sorted(set(removed)))
            members = tuple(
                sorted((set(self.membership) | set(joined)) - set(removed))
            )
            base_epoch = self.view_epoch
            if self._view_pending is not None:
                base_epoch = max(
                    base_epoch, int(self._view_pending["epoch"])
                )
            epoch = base_epoch + 1
            pending = self._view_pending = {
                "epoch": epoch,
                "members": members,
                "joined": joined,
                "removed": removed,
                "forced": bool(forced),
                "acks": {self.node_id},
                "base": tuple(self.membership),
                "generation": 0,
            }
            self.views_proposed += 1
            self._view_promised = max(
                self._view_promised, (epoch, self.node_id)
            )
            if self.obs is not None:
                self.obs.fault("view-propose", epoch)
            self._send_proposal(pending)
            self._maybe_install_pending()
            if self._view_pending is pending:
                self._scheduler.call_later(
                    self.config.orphan_interval,
                    lambda: self._view_propose_fire(epoch, 0),
                )
            return epoch

    def _send_proposal(self, pending: Dict[str, object]) -> None:
        message = ViewProposal(
            lock_id="",
            sender=self.node_id,
            epoch=int(pending["epoch"]),
            members=tuple(pending["members"]),
            joined=tuple(pending["joined"]),
            removed=tuple(pending["removed"]),
            forced=bool(pending["forced"]),
        )
        for peer in pending["base"]:
            if (
                peer == self.node_id
                or peer in pending["acks"]
                or peer in self._departed
                or self.detector.is_suspected(peer)
            ):
                continue
            self._raw_send(peer, message)

    def _view_propose_fire(self, epoch: int, generation: int) -> None:
        with self._mutex:
            pending = self._view_pending
            if (
                not self._running
                or pending is None
                or int(pending["epoch"]) != epoch
                or int(pending["generation"]) != generation
            ):
                return
            self._send_proposal(pending)
            self._scheduler.call_later(
                self.config.orphan_interval,
                lambda: self._view_propose_fire(epoch, generation),
            )

    def _maybe_install_pending(self) -> None:
        pending = self._view_pending
        if pending is None:
            return
        quorum = len(pending["base"]) // 2 + 1
        if len(pending["acks"]) < quorum:
            return
        self._view_pending = None
        epoch = int(pending["epoch"])
        members = tuple(pending["members"])
        joined = tuple(pending["joined"])
        removed = tuple(pending["removed"])
        forced = bool(pending["forced"])
        self._install_view(
            epoch, members, joined=joined, removed=removed, forced=forced
        )
        message = ViewInstall(
            lock_id="",
            sender=self.node_id,
            epoch=epoch,
            members=members,
            joined=joined,
            removed=removed,
            forced=forced,
        )
        for peer in sorted(set(pending["base"]) | set(members)):
            if peer != self.node_id:
                self._raw_send(peer, message)
        for peer in joined:
            if peer != self.node_id:
                self._state_transfer(peer)

    def _on_view_proposal(self, msg: ViewProposal) -> None:
        if msg.epoch <= self.view_epoch:
            # Stale proposer (it missed an install): catch it up instead.
            self._send_view_install(msg.sender)
            return
        if (msg.epoch, msg.sender) < self._view_promised:
            return
        self._view_promised = (msg.epoch, msg.sender)
        self._raw_send(
            msg.sender,
            ViewAck(lock_id="", sender=self.node_id, epoch=msg.epoch),
        )

    def _on_view_ack(self, msg: ViewAck) -> None:
        pending = self._view_pending
        if pending is None or msg.epoch != int(pending["epoch"]):
            return
        pending["acks"].add(msg.sender)
        self._maybe_install_pending()

    def _on_view_install(self, msg: ViewInstall) -> None:
        self._install_view(
            msg.epoch,
            msg.members,
            joined=msg.joined,
            removed=msg.removed,
            forced=msg.forced,
        )

    def _install_view(
        self,
        epoch: int,
        members: Iterable[NodeId],
        joined: Iterable[NodeId] = (),
        removed: Iterable[NodeId] = (),
        forced: bool = False,
    ) -> bool:
        """Install a view if *epoch* beats the current one.  Idempotent.

        Effective joins/removals are computed against the *local* member
        list (not just the install's announced delta), so a node catching
        up across several missed views still excises everyone who left.
        """

        epoch = int(epoch)
        if epoch <= self.view_epoch:
            return False
        old = set(self.membership)
        new = sorted({int(n) for n in members})
        joined_eff = sorted((set(new) - old) | set(joined))
        removed_eff = sorted((old - set(new)) | set(removed))
        self.view_epoch = epoch
        self.membership = new
        self._view_record = {
            "epoch": epoch,
            "members": tuple(new),
            "joined": tuple(joined_eff),
            "removed": tuple(removed_eff),
            "forced": bool(forced),
        }
        now = self._scheduler.now()
        self.view_installs.append(dict(self._view_record, at=now))
        if (
            self._view_pending is not None
            and int(self._view_pending["epoch"]) <= epoch
        ):
            self._view_pending = None
        for peer in joined_eff:
            if peer == self.node_id:
                continue
            self._departed.discard(peer)
            self.detector.add_peer(peer, now)
        for peer in removed_eff:
            if peer == self.node_id:
                continue  # Our own removal: the departure driver owns it.
            self._excise(peer, forced)
        if self.obs is not None:
            self.obs.fault("view-install", epoch)
        if self.journal is not None:
            self.journal.record_view(self.view_journal_payload())
        return True

    def view_journal_payload(self) -> Optional[Dict[str, object]]:
        """The installed view as a journal payload (None at bootstrap)."""

        if self.view_epoch == 0:
            return None
        return {
            "epoch": self.view_epoch,
            "members": list(self.membership),
            "departed": sorted(self._departed),
        }

    def _excise(self, peer: NodeId, forced: bool) -> None:
        """Purge every trace of a removed member.

        For a graceful leaver this is a safety net (it drained before
        proposing its removal; at most a final in-flight release is
        made redundant here).  For a forced decommission it is the
        excision itself: fence out the dead node's leases, evict its
        copyset entries and re-home anything still attached under it
        through the ordinary orphan/regeneration flow.
        """

        self._departed.add(peer)
        self.detector.forget(peer)
        self.channel.stop_peer(peer)
        self._peer_boots.pop(peer, None)
        self._deferred_evictions.pop(peer, None)
        for lock_id in [
            lock
            for lock, (holder, _epoch) in self._token_hints.items()
            if holder == peer
        ]:
            del self._token_hints[lock_id]
        if forced:
            for lease in [
                lease
                for lease in self.remote_leases.leases()
                if lease.holder == peer
            ]:
                self.remote_leases.drop(lease.lock, lease.holder)
                self.leases_revoked += 1
                self.lockspace.automaton(lease.lock).raise_fence_floor(
                    lease.token
                )
                if self.obs is not None:
                    self.obs.fault("lease-revoke", peer)
                if self.forced_release_hook is not None:
                    self.forced_release_hook(peer, lease.lock)
        for automaton in list(self.lockspace.automata()):
            self._dispatch(automaton.evict_child(peer))
            if automaton.parent == peer and not automaton.has_token:
                self._rehome_after_excision(automaton, peer, forced)

    def _rehome_after_excision(
        self, automaton, peer: NodeId, forced: bool
    ) -> None:
        # Orphan → probe → announce for both flavours of removal.  For a
        # forced decommission the dead node may have taken the token with
        # it, so the quorum-gated regeneration flow settles custody (with
        # the fence-floor bumps its announce carries).  For a graceful
        # leaver this only re-homes a routing hint — but we deliberately
        # do NOT shortcut through the local token hint or an arbitrary
        # live member: ordinary custody transfers never broadcast, so
        # hints go stale fast under load, and two excised orphans
        # guessing at each other's position can weave a mutual
        # parent-hint cycle that deadlocks both (each queues the other's
        # request while requesting through it).  The probe finds the live
        # holder, whose epoch-stamped announce is acyclic by
        # construction.
        self._start_orphan(automaton.lock_id, peer)

    def _send_view_install(self, dest: NodeId) -> None:
        record = self._view_record
        if record is None or dest in self._departed:
            return
        self._raw_send(
            dest,
            ViewInstall(
                lock_id="",
                sender=self.node_id,
                epoch=int(record["epoch"]),
                members=tuple(record["members"]),
                joined=tuple(record["joined"]),
                removed=tuple(record["removed"]),
                forced=bool(record["forced"]),
            ),
        )
        if dest in self.membership:
            self._state_transfer(dest)

    def _state_transfer(self, dest: NodeId) -> None:
        hints = tuple(
            sorted(
                (lock_id, holder, epoch)
                for lock_id, (holder, epoch) in self._token_hints.items()
                if holder not in self._departed
            )
        )
        floors = tuple(
            sorted(
                (automaton.lock_id, automaton.fence_floor)
                for automaton in self.lockspace.automata()
                if automaton.fence_floor
            )
        )
        self._raw_send(
            dest,
            StateTransfer(
                lock_id="",
                sender=self.node_id,
                view_epoch=self.view_epoch,
                members=tuple(self.membership),
                hints=hints,
                floors=floors,
            ),
        )

    def _on_state_transfer(self, msg: StateTransfer) -> None:
        self._install_view(msg.view_epoch, msg.members)
        for lock_id, holder, epoch in msg.hints:
            if holder in self._departed:
                continue
            self._note_hint(str(lock_id), int(holder), int(epoch))
        for lock_id, floor in msg.floors:
            self.lockspace.automaton(str(lock_id)).raise_fence_floor(
                int(floor)
            )

    # -- join --------------------------------------------------------------

    def request_join(self, sponsor: NodeId) -> None:
        """Joiner side: ask *sponsor* to admit us, re-sending until a view
        (which will include us) is installed here."""

        with self._mutex:
            if self._join_state is not None:
                return
            self._join_state = {"sponsor": sponsor, "generation": 0}
            self._join_fire(0)

    def _join_fire(self, generation: int) -> None:
        with self._mutex:
            state = self._join_state
            if (
                not self._running
                or state is None
                or int(state["generation"]) != generation
            ):
                return
            if self._view_record is not None:
                self._join_state = None  # Admitted (any install counts).
                return
            self._raw_send(
                int(state["sponsor"]),
                JoinRequest(lock_id="", sender=self.node_id),
            )
            self._scheduler.call_later(
                self.config.orphan_interval,
                lambda: self._join_fire(generation),
            )

    def _on_join_request(self, msg: JoinRequest) -> None:
        joiner = msg.sender
        if joiner in self.membership:
            # Already admitted; the install/state transfer may have been
            # lost on the wire — re-send both.
            self._send_view_install(joiner)
            return
        pending = self._view_pending
        if pending is not None and joiner in pending["joined"]:
            return  # Admission already in flight.
        self.propose_view(joined=(joiner,))

    # -- graceful leave ----------------------------------------------------

    def begin_leave(self, successor: Optional[NodeId] = None) -> NodeId:
        """Start draining this node out of the cluster.

        Abandons its pending requests, force-releases any residual holds,
        then (driven by the leave tick) hands off token custody to
        *successor*, migrates its copyset children, and finally proposes
        a view without itself.  Returns the chosen successor.  The caller
        should keep the node's transport running until :attr:`has_left`.
        """

        with self._mutex:
            if self._departure is not None:
                return int(self._departure["successor"])
            candidates = [
                n
                for n in self.membership
                if n != self.node_id
                and n not in self._departed
                and not self.detector.is_suspected(n)
            ]
            if successor is None:
                if not candidates:
                    raise ValueError(
                        f"node {self.node_id} has no live successor to "
                        f"drain to"
                    )
                successor = min(candidates)
            self._departing = True
            self._departure = {
                "successor": successor,
                "generation": 0,
                "started": self._scheduler.now(),
            }
            if self.obs is not None:
                self.obs.fault("leave-begin", self.node_id)
            for automaton in list(self.lockspace.automata()):
                self._dispatch(automaton.begin_departure())
                self._dispatch_replay(automaton.abandon_pending())
                snap = automaton.snapshot()
                for mode_name, count in snap.held:
                    mode = LockMode(str(mode_name))
                    for _ in range(int(count)):
                        self._dispatch(
                            self.lockspace.release(automaton.lock_id, mode)
                        )
                if snap.held and self.forced_release_hook is not None:
                    self.forced_release_hook(self.node_id, automaton.lock_id)
            self.own_leases.clear()
            self.sessions.expire_all()
            self._journal_sessions()
            self._leave_tick(0)
            return successor

    def departure_complete(self) -> bool:
        """True when nothing is left to drain: no token custody, no
        copyset children, no holds, no pending request, empty queues."""

        with self._mutex:
            for automaton in list(self.lockspace.automata()):
                snap = automaton.snapshot()
                if (
                    snap.believes_token
                    or snap.children
                    or snap.held
                    or snap.pending is not None
                    or snap.queue
                ):
                    return False
            return True

    def _leave_tick(self, generation: int) -> None:
        with self._mutex:
            dep = self._departure
            if (
                not self._running
                or dep is None
                or int(dep["generation"]) != generation
            ):
                return
            if self.node_id not in self.membership:
                # Our removal view is installed: departure complete.
                dep["generation"] = generation + 1
                if self.obs is not None:
                    self.obs.fault("departed", self.node_id)
                return
            successor = int(dep["successor"])
            if (
                successor in self._departed
                or successor not in self.membership
                or self.detector.is_suspected(successor)
            ):
                candidates = [
                    n
                    for n in self.membership
                    if n != self.node_id
                    and n not in self._departed
                    and not self.detector.is_suspected(n)
                ]
                if candidates:
                    successor = min(candidates)
                    dep["successor"] = successor
            for automaton in list(self.lockspace.automata()):
                lock_id = automaton.lock_id
                if automaton.has_token:
                    # Custody first; children migrate only after the
                    # successor's announce demotes us under it.
                    self._raw_send(
                        successor,
                        HandoffMessage(
                            lock_id=lock_id,
                            sender=self.node_id,
                            epoch=automaton.token_epoch,
                        ),
                    )
                    continue
                parent = automaton.parent
                if parent is None or parent in self._departed:
                    continue
                for child, mode in sorted(automaton.children.items()):
                    if child == parent or child in self._departed:
                        continue
                    # Adopt-then-reparent, in that order: the new parent
                    # records the child's mode before the child is told
                    # to detach from us, so the subtree is accounted for
                    # somewhere under every message ordering.
                    self._raw_send(
                        parent,
                        ChildMigrate(
                            lock_id=lock_id,
                            sender=self.node_id,
                            child=child,
                            mode=mode,
                            seq=automaton.child_attachment_seq(child),
                        ),
                    )
                    self._raw_send(
                        child,
                        ReparentMessage(
                            lock_id=lock_id,
                            sender=self.node_id,
                            parent=parent,
                            epoch=automaton.token_epoch,
                        ),
                    )
            if self.departure_complete() and self._view_pending is None:
                self.propose_view(removed=(self.node_id,))
            self._scheduler.call_later(
                self.config.orphan_interval,
                lambda: self._leave_tick(generation),
            )

    def _on_handoff(self, msg: HandoffMessage) -> None:
        if self._departing:
            return  # Leaving ourselves; cannot take custody.
        automaton = self.lockspace.automaton(msg.lock_id)
        if automaton.has_token:
            if not automaton.custody_pending:
                # Re-sent offer after we already took custody: re-announce
                # so the leaver's demotion cannot be lost.
                self._announce(
                    msg.lock_id,
                    self.node_id,
                    automaton.token_epoch,
                    broadcast=True,
                )
            return
        if msg.lock_id in self._rejoin:
            return  # Custody already being settled.
        epoch = max(int(msg.epoch), automaton.token_epoch) + 1
        self._dispatch_replay(automaton.accept_handoff(epoch))
        self.handoffs_accepted += 1
        if self.obs is not None:
            self.obs.fault("handoff-accept", msg.sender)
        # Same settle handshake as a durable custody restore: probe for
        # contrary evidence, confirm after the window, then serve.  The
        # broadcast announce is what demotes the departing holder and
        # re-homes everyone's hints meanwhile.
        self._begin_rejoin(msg.lock_id, epoch)
        self._announce(msg.lock_id, self.node_id, epoch, broadcast=True)

    def _on_child_migrate(self, msg: ChildMigrate) -> None:
        if msg.child in self._departed:
            return
        automaton = self.lockspace.automaton(msg.lock_id)
        self._dispatch(
            automaton.adopt_child(msg.child, msg.mode, int(msg.seq))
        )
        self.children_adopted += 1

    # -- decommission ------------------------------------------------------

    def decommission(self, node: NodeId) -> int:
        """Force-remove a (dead) *node* from the view; returns the epoch.

        Must be called on a live member.  The installed view fences the
        dead node's leases, evicts its copyset entries everywhere and
        routes any orphans through the ordinary regeneration flow.
        """

        with self._mutex:
            if node == self.node_id:
                raise ValueError("a node cannot decommission itself")
            if node not in self.membership:
                return self.view_epoch  # Already excised.
            if self.obs is not None:
                self.obs.fault("decommission", node)
            return self.propose_view(removed=(node,), forced=True)

"""A simulated cluster with the full recovery stack and fault injection.

:class:`ResilientSimCluster` is the chaos-capable sibling of
:class:`~repro.sim.cluster.SimHierarchicalCluster`: every node runs its
:class:`~repro.core.lockspace.LockSpace` in recovery mode behind a
:class:`~repro.faults.recovery.RecoveryManager`, the network carries a
:class:`~repro.faults.plan.FaultPlan`, and the plan's crash/restart
schedule is enacted against real node state (a crashed node's lock space
is discarded; a restarted node rejoins blank under a bumped boot
incarnation).

This lives in :mod:`repro.faults` rather than :mod:`repro.sim` on
purpose: the plain cluster — the one all reproduced figures run on —
stays byte-for-byte untouched, which is what keeps fault-free figure
runs bit-identical to the pre-fault codebase.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional

from ..core.automaton import ProtocolOptions
from ..core.lockspace import LockSpace, TokenHomeFn, default_token_home
from ..core.messages import Envelope, LockId, Message, NodeId
from ..core.modes import LockMode
from ..errors import ConfigurationError, SimulationError
from ..obs.sink import ObsSink
from ..sim.engine import SimEvent, Simulator
from ..sim.network import Network
from ..sim.rng import Distribution, Exponential
from ..verification.invariants import Monitor
from .plan import FaultPlan
from .recovery import RecoveryConfig, RecoveryManager
from .scheduler import SimScheduler

#: Protocol options every resilient node runs with.
RESILIENT_OPTIONS = ProtocolOptions(recovery=True)


@dataclasses.dataclass
class _GrantCtx:
    """Listener context carried through the automaton to the waiter."""

    event: SimEvent


class ResilientClient:
    """Per-node client: like ``HierClient`` but requests through the
    recovery manager so retransmission timers are armed."""

    def __init__(self, cluster: "ResilientSimCluster", node_id: NodeId) -> None:
        self._cluster = cluster
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        """This client's node."""

        return self._node_id

    def acquire(self, lock_id: LockId, mode: LockMode) -> SimEvent:
        """Request *lock_id* in *mode*; yield the returned event to wait."""

        cluster = self._cluster
        if cluster.is_crashed(self._node_id):
            raise SimulationError(f"node {self._node_id} is crashed")
        if (
            self._node_id in cluster._departed_nodes
            or cluster.managers[self._node_id].departing
        ):
            raise SimulationError(
                f"node {self._node_id} is leaving the cluster"
            )
        if cluster.managers[self._node_id].fenced:
            raise SimulationError(f"node {self._node_id} is lease-fenced")
        cluster._record_request(self._node_id, lock_id, mode)
        event = SimEvent(cluster.sim)
        cluster.managers[self._node_id].request(
            lock_id, mode, _GrantCtx(event=event)
        )
        return event

    def release(self, lock_id: LockId, mode: LockMode) -> None:
        """Release one hold of *mode* on *lock_id*."""

        cluster = self._cluster
        if cluster.is_crashed(self._node_id):
            raise SimulationError(f"node {self._node_id} is crashed")
        if (
            self._node_id in cluster._departed_nodes
            or cluster.managers[self._node_id].departing
        ):
            # ``begin_leave`` already force-released every residual hold
            # (through the forced-release hook); a late application
            # release would double-count it, like the fenced case below.
            return
        if cluster.managers[self._node_id].fenced:
            # The fence already force-released this hold and told the
            # monitor via the forced-release hook; recording a second,
            # application-driven release would double-count it.
            return
        cluster._record_release(self._node_id, lock_id, mode)
        cluster.managers[self._node_id].release(lock_id, mode)


class ResilientSimCluster:
    """N simulated nodes with recovery managers under a fault plan."""

    def __init__(
        self,
        num_nodes: int,
        plan: Optional[FaultPlan] = None,
        sim: Optional[Simulator] = None,
        latency: Optional[Distribution] = None,
        seed: int = 0,
        token_home: TokenHomeFn = default_token_home,
        monitor: Optional[Monitor] = None,
        config: RecoveryConfig = RecoveryConfig(),
        obs: Optional[ObsSink] = None,
        persistence=None,
        reclaim: bool = False,
        flight=None,
    ) -> None:
        if num_nodes < 2:
            raise ConfigurationError(
                "a resilient cluster needs at least two nodes (someone "
                "must survive to regenerate the token)"
            )
        self.num_nodes = num_nodes
        self.plan = plan
        self.sim = sim if sim is not None else Simulator()
        self.monitor = monitor
        self.config = config
        self.obs = obs
        if obs is not None:
            self.sim.tick_hook = obs.engine_tick
        self._latency = latency if latency is not None else Exponential(0.150)
        self._token_home = token_home
        observer = None
        if obs is not None:
            def observer(sender, dest, message):
                obs.message(sender, dest, type(message).__name__)
        self.network = Network(
            self.sim,
            latency=self._latency,
            rng=random.Random(seed ^ 0x5EED),
            observer=observer,
            faults=plan,
            tracer=getattr(obs, "tracer", None) if obs is not None else None,
        )
        self._scheduler = SimScheduler(self.sim)
        self.lockspaces: Dict[NodeId, LockSpace] = {}
        self.managers: Dict[NodeId, RecoveryManager] = {}
        #: Per-node durability backend (see :mod:`repro.persist`);
        #: ``None`` keeps the cluster volatile and the code path
        #: byte-identical to the pre-durability behaviour.
        self.persistence = persistence
        #: Whether a durable restart re-asserts the surviving sessions'
        #: holds (lease reclaim) instead of disowning them.
        self.reclaim = reclaim
        self.journals: Dict[NodeId, object] = {}
        #: Per-node flight recorders (see :mod:`repro.obs.flightrec`):
        #: pass a dict to share recorders with the harness, ``True`` to
        #: create one per node, ``None`` (default) to record nothing.
        self.flight = None
        if flight is not None:
            from ..obs.flightrec import FlightRecorder

            self.flight = flight if isinstance(flight, dict) else {}
            for node_id in range(num_nodes):
                self.flight.setdefault(
                    node_id,
                    FlightRecorder(
                        node_id,
                        protocol="hierarchical",
                        clock=lambda: self.sim.now,
                    ),
                )
        #: One rejoin report per durable restart, in restart order.
        self.durability_log: List[Dict[str, object]] = []
        self._crashed: set = set()
        self.crash_log: List[Dict[str, object]] = []
        #: Current member node ids (the god-view mirror of the installed
        #: membership view): grows on :meth:`join_node`, shrinks when a
        #: drain or decommission completes.
        self.members: List[NodeId] = list(range(num_nodes))
        #: Nodes that have left for good (drained or decommissioned).
        self._departed_nodes: set = set()
        #: One entry per membership event (join / drain / decommission).
        self.membership_log: List[Dict[str, object]] = []
        for node_id in range(num_nodes):
            self._boot_node(node_id, boot=0, fresh=True)
        # Only now: the first heartbeat needs every peer registered.
        for manager in self.managers.values():
            manager.start()
        self.clients = [ResilientClient(self, n) for n in range(num_nodes)]
        if plan is not None:
            for crash in plan.crashes:
                self.sim.schedule(
                    max(crash.at - self.sim.now, 0.0),
                    lambda node=crash.node: self.crash(node),
                )
                if crash.restart_at is not None:
                    self.sim.schedule(
                        max(crash.restart_at - self.sim.now, 0.0),
                        lambda node=crash.node: self.restart(node),
                    )

    # -- node lifecycle ----------------------------------------------------

    def _boot_node(
        self,
        node_id: NodeId,
        boot: int,
        fresh: bool,
        membership: Optional[List[NodeId]] = None,
    ) -> None:
        lockspace = LockSpace(
            node_id=node_id,
            token_home=self._token_home,
            listener=self._make_listener(node_id),
            options=RESILIENT_OPTIONS,
        )
        lockspace.obs = self.obs
        if self.flight is not None:
            from ..obs.flightrec import FlightRecorder

            recorder = self.flight.setdefault(
                node_id,
                FlightRecorder(
                    node_id,
                    protocol="hierarchical",
                    clock=lambda: self.sim.now,
                ),
            )
            if not fresh:
                recorder.record_restart()
            recorder.attach(lockspace)
        manager = RecoveryManager(
            node_id=node_id,
            lockspace=lockspace,
            membership=(
                membership if membership is not None else list(self.members)
            ),
            scheduler=self._scheduler,
            transport_send=self._make_sender(node_id),
            config=self.config,
            obs=self.obs,
            boot=boot,
        )
        manager.forced_release_hook = self._forced_release
        self.lockspaces[node_id] = lockspace
        self.managers[node_id] = manager
        if self.persistence is not None:
            from ..persist import NodeJournal

            journal = NodeJournal(
                self.persistence.store_for(node_id),
                node_id,
                boot=boot,
                obs=self.obs,
            )
            journal.attach(lockspace)
            journal.session_source = manager.sessions.export
            journal.view_source = manager.view_journal_payload
            self.journals[node_id] = journal
            manager.journal = journal
        if fresh:
            self.network.register(node_id, manager.handle)

    def _make_sender(self, node_id: NodeId):
        def send(dest: NodeId, message: Message) -> None:
            self.network.send(node_id, [Envelope(dest, message)])

        return send

    def _make_listener(self, node_id: NodeId):
        def listener(lock_id: LockId, mode: LockMode, ctx: object) -> None:
            self._record_grant(node_id, lock_id, mode)
            # Every grant is leased: looked up at call time so the
            # current incarnation's manager leases its own grants.
            self.managers[node_id].note_grant(lock_id, mode)
            if isinstance(ctx, _GrantCtx):
                ctx.event.trigger(mode)

        return listener

    def _forced_release(self, holder: NodeId, lock_id: LockId) -> None:
        """Lease layer revoked *holder*'s holds on *lock_id*."""

        if self.monitor is not None:
            self.monitor.on_forced_release(self.sim.now, holder, lock_id)

    def crash(self, node_id: NodeId) -> None:
        """Kill *node_id*: volatile state gone, fabric silenced."""

        if node_id in self._crashed:
            return
        self._crashed.add(node_id)
        if self.flight is not None:
            self.flight[node_id].record_crash()
        self.crash_log.append({"at": self.sim.now, "node": node_id})
        self.network.crash(node_id)
        self.managers[node_id].stop()
        journal = self.journals.pop(node_id, None)
        if journal is not None:
            # The store survives (it is the durable medium); only the
            # in-process journal handle dies with the node.
            journal.close()
        if self.monitor is not None:
            self.monitor.on_crash(self.sim.now, node_id)
        if self.obs is not None:
            self.obs.fault("crash", node_id)

    def restart(self, node_id: NodeId) -> None:
        """Bring *node_id* back under a bumped boot incarnation.

        Without persistence the node rejoins blank; with it, the node
        replays its snapshot + WAL and rejoins with its pre-crash locks
        (token custody fenced until the epoch handshake settles — see
        :meth:`~repro.faults.recovery.RecoveryManager.rejoin_from_journal`).
        """

        if node_id not in self._crashed:
            return
        if node_id in self._departed_nodes:
            return  # Decommissioned while down: it no longer exists.
        self._crashed.discard(node_id)
        boot = self.managers[node_id].boot + 1
        self._boot_node(node_id, boot=boot, fresh=False)
        manager = self.managers[node_id]
        # Fabric first: rejoin replay dispatches messages immediately.
        self.network.restart(node_id, manager.handle)
        if self.persistence is not None:
            from ..persist import VIEW_JOURNAL_KEY, recover_node_state
            from ..services.sessions import SESSIONS_JOURNAL_KEY

            state, recover_report = recover_node_state(
                self.persistence.store_for(node_id)
            )
            # The journalled view first: quorum sizes and the departed
            # set of everything below derive from it.
            view_payload = state.pop(VIEW_JOURNAL_KEY, None)
            if view_payload is not None:
                manager.adopt_view(view_payload)
            # Sessions ride the same WAL under a reserved key; they are
            # not a lock and must never reach the per-lock rejoin.
            sessions_payload = state.pop(SESSIONS_JOURNAL_KEY, None)
            if sessions_payload is not None:
                manager.sessions.restore(sessions_payload)
            reclaim_cb = None
            reclaimed: List = []
            if self.reclaim and sessions_payload is not None:
                base, survivors = manager.sessions.reclaimer(
                    self.sim.now, manager.lease_config.session_ttl
                )

                def reclaim_cb(lock_id, mode):
                    if not base(lock_id, str(mode)):
                        return False
                    # Fresh lease under the restored epoch; the session
                    # already carries the hold count, so no note_grant.
                    manager.mint_lease(lock_id, mode)
                    self._record_grant(node_id, lock_id, mode)
                    reclaimed.append((lock_id, mode))
                    return True

            rejoin_report = manager.rejoin_from_journal(
                state, reclaim=reclaim_cb
            )
            self.durability_log.append(
                {
                    "at": round(self.sim.now, 6),
                    "node": node_id,
                    "boot": boot,
                    "recovered": recover_report,
                    "rejoin": rejoin_report,
                }
            )
            # Re-seed the snapshot under the new boot so the next crash
            # replays from here instead of the whole pre-crash log.
            self.journals[node_id].compact()
        manager.start()
        if self.persistence is not None and reclaimed:
            # The restarted workload won't re-release holds it never
            # knowingly re-acquired: hand each reclaimed hold back after
            # a short grace so waiters eventually progress.
            for i, (lock_id, mode) in enumerate(reclaimed):
                self.sim.schedule(
                    0.5 + 0.25 * i,
                    lambda n=node_id, l=lock_id, m=mode: (
                        self._release_reclaimed(n, l, m)
                    ),
                )
        if self.obs is not None:
            self.obs.fault("restart", node_id)

    def _release_reclaimed(
        self, node_id: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        if node_id in self._crashed or self.managers[node_id].fenced:
            return
        self._record_release(node_id, lock_id, mode)
        self.managers[node_id].release(lock_id, mode)

    def is_crashed(self, node_id: NodeId) -> bool:
        """Whether *node_id* is currently down."""

        return node_id in self._crashed

    def client(self, node_id: NodeId) -> ResilientClient:
        """Return the client object of *node_id*."""

        return self.clients[node_id]

    def live_nodes(self) -> List[NodeId]:
        """Current members that are up, ascending."""

        return [n for n in self.members if n not in self._crashed]

    # -- dynamic membership (see repro.membership / docs/MEMBERSHIP.md) ----

    def join_node(self) -> NodeId:
        """Admit a brand-new node into the running cluster.

        Allocates the next node id, boots it with the full recovery
        stack, and has it ask the lowest live member for admission; the
        sponsor drives the quorum-gated view change and sends the state
        transfer.  The returned id's client is usable immediately (its
        first requests simply route while the view converges).
        """

        live = self.live_nodes()
        if not live:
            raise SimulationError("no live member can sponsor a join")
        sponsor = min(live)
        node_id = self.num_nodes
        self.num_nodes += 1
        # The joiner boots believing the view is (sponsor's view | self):
        # an over-approximation, so every quorum it counts before the
        # real install arrives is at least as large as the true one.
        bootstrap = sorted(
            set(self.managers[sponsor].membership) | {node_id}
        )
        self.members.append(node_id)
        self._boot_node(node_id, boot=0, fresh=True, membership=bootstrap)
        manager = self.managers[node_id]
        manager.start()
        manager.request_join(sponsor)
        self.clients.append(ResilientClient(self, node_id))
        self.membership_log.append(
            {
                "at": round(self.sim.now, 6),
                "event": "join",
                "node": node_id,
                "sponsor": sponsor,
            }
        )
        if self.obs is not None:
            self.obs.fault("join", node_id)
        return node_id

    def drain_node(
        self, node_id: NodeId, successor: Optional[NodeId] = None
    ) -> NodeId:
        """Gracefully remove *node_id*: drain its holds, hand off any
        token custody to *successor* (lowest live member by default),
        migrate its copyset children, then install a view without it.

        Returns the successor.  Finalization is asynchronous: the
        cluster polls the manager and silences the node's fabric once
        its removal view is installed (see :attr:`membership_log`).
        """

        if node_id in self._crashed:
            raise SimulationError(
                f"node {node_id} is crashed; decommission it instead"
            )
        if (
            node_id in self._departed_nodes
            or self.managers[node_id].departing
        ):
            raise SimulationError(f"node {node_id} is already leaving")
        chosen = self.managers[node_id].begin_leave(successor)
        self.membership_log.append(
            {
                "at": round(self.sim.now, 6),
                "event": "drain-begin",
                "node": node_id,
                "successor": chosen,
            }
        )
        self._drain_poll(node_id)
        return chosen

    def _drain_poll(self, node_id: NodeId) -> None:
        if node_id in self._crashed or node_id in self._departed_nodes:
            return  # Crashed mid-drain (decommission it) or done.
        if not self.managers[node_id].has_left:
            self.sim.schedule(
                self.config.heartbeat_interval,
                lambda: self._drain_poll(node_id),
            )
            return
        self._finalize_departure(node_id, "drained")

    def decommission_node(self, node_id: NodeId) -> NodeId:
        """Force-remove a crashed *node_id* from the view for good.

        The lowest live member coordinates the view change; the install
        fences the dead node's leases and evicts its copyset entries
        everywhere.  Returns the coordinator.  A decommissioned node can
        never :meth:`restart`.
        """

        if node_id not in self._crashed:
            raise SimulationError(
                f"node {node_id} is alive; drain it instead"
            )
        if node_id in self._departed_nodes:
            raise SimulationError(f"node {node_id} already decommissioned")
        live = self.live_nodes()
        if not live:
            raise SimulationError("no live member can coordinate")
        coordinator = min(live)
        self.managers[coordinator].decommission(node_id)
        self.membership_log.append(
            {
                "at": round(self.sim.now, 6),
                "event": "decommission-begin",
                "node": node_id,
                "coordinator": coordinator,
            }
        )
        self._decommission_poll(node_id)
        return coordinator

    def _decommission_poll(self, node_id: NodeId) -> None:
        if node_id in self._departed_nodes:
            return
        if any(
            node_id in self.managers[n].membership
            for n in self.live_nodes()
        ):
            self.sim.schedule(
                self.config.heartbeat_interval,
                lambda: self._decommission_poll(node_id),
            )
            return
        self._finalize_departure(node_id, "decommissioned")

    def _finalize_departure(self, node_id: NodeId, event: str) -> None:
        if node_id in self._departed_nodes:
            return
        self._departed_nodes.add(node_id)
        if node_id in self.members:
            self.members.remove(node_id)
        if node_id not in self._crashed:
            # A drained node: silence its fabric and stop its timers now
            # that its removal view is installed cluster-wide enough for
            # anti-entropy to finish the spread without it.
            self.network.crash(node_id)
            self.managers[node_id].stop()
            journal = self.journals.pop(node_id, None)
            if journal is not None:
                journal.close()
        self.membership_log.append(
            {"at": round(self.sim.now, 6), "event": event, "node": node_id}
        )
        if self.obs is not None:
            self.obs.fault(event, node_id)

    # -- monitor plumbing --------------------------------------------------

    def _record_request(
        self, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        if self.monitor is not None:
            self.monitor.on_request(self.sim.now, node, lock_id, mode)

    def _record_grant(
        self, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        if self.monitor is not None:
            self.monitor.on_grant(self.sim.now, node, lock_id, mode)

    def _record_release(
        self, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        if self.monitor is not None:
            self.monitor.on_release(self.sim.now, node, lock_id, mode)

    # -- aggregates --------------------------------------------------------

    def cluster_view(self):
        """Capture a :class:`repro.obs.live.ClusterView` of all nodes.

        Crashed nodes appear as dead snapshots with no lock state (their
        volatile state is genuinely gone); live nodes carry their
        recovery manager's :class:`~repro.obs.live.RecoveryHealth`.
        """

        from ..obs.live import ClusterView, NodeSnapshot, snapshot_node

        nodes = []
        for node_id in sorted(self.members):
            if node_id in self._crashed:
                nodes.append(NodeSnapshot(node=node_id, alive=False))
                continue
            nodes.append(
                snapshot_node(
                    node_id,
                    self.lockspaces[node_id],
                    recovery=self.managers[node_id].health_snapshot(),
                )
            )
        return ClusterView(
            protocol="hierarchical",
            captured_at=self.sim.now,
            nodes=tuple(nodes),
        )

    def recovery_stats(self) -> Dict[str, object]:
        """Aggregate recovery counters across live managers."""

        suspects = sorted(
            {
                (round(t, 6), peer)
                for manager in self.managers.values()
                for (t, peer) in manager.suspect_log
            }
        )
        regenerations = [
            regen
            for manager in self.managers.values()
            for regen in manager.regenerations
        ]
        return {
            "suspect_events": len(suspects),
            "suspected_nodes": sorted({peer for _, peer in suspects}),
            "regenerations": regenerations,
            "app_retransmits": sum(
                m.app_retransmits for m in self.managers.values()
            ),
            "channel_retransmits": sum(
                m.channel.retransmits for m in self.managers.values()
            ),
            "duplicates_dropped": sum(
                m.channel.duplicates_dropped for m in self.managers.values()
            ),
            "leases_revoked": sum(
                m.leases_revoked for m in self.managers.values()
            ),
            "fenced_nodes": sorted(
                n for n, m in self.managers.items() if m.fenced
            ),
        }

"""Per-pair reliable FIFO sessions over a lossy, duplicating fabric.

The hierarchical protocol (like the paper's MPI deployment) assumes
reliable FIFO channels.  :class:`ReliableChannel` restores that
assumption on top of a fabric that may drop, duplicate, delay or reorder:
every protocol message travelling from node *A* to node *B* is wrapped in
a :class:`~repro.faults.messages.SessionMessage` carrying a per-ordered-
pair sequence number.  The receiver delivers strictly in order (buffering
out-of-order arrivals, dropping duplicates) and acknowledges cumulatively;
the sender retransmits every unacknowledged frame on a capped exponential
backoff timer.

Restarts are handled with ``boot`` incarnation numbers: a restarted node
opens streams under a higher boot, which tells peers to reset their
receive state instead of discarding the fresh stream's frames as replays
of the previous life.

The channel is deliberately oblivious to message *meaning* — recovery
coordination traffic (heartbeats, probes) bypasses it, because those
messages are idempotent, periodically re-sent anyway, and must keep
flowing to/from peers whose streams are being torn down.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional

from ..core.messages import Message, NodeId
from .messages import SessionAck, SessionMessage

#: ``send(dest, message)`` — put one raw message on the fabric.
SendFn = Callable[[NodeId, Message], None]
#: ``deliver(peer, message)`` — hand one in-order payload up the stack.
DeliverFn = Callable[[NodeId, Message], None]


class _OutStream:
    """Sender-side state of one ordered pair."""

    __slots__ = ("next_seq", "unacked", "interval", "timer_gen")

    def __init__(self, base_interval: float) -> None:
        self.next_seq = 0
        self.unacked: "OrderedDict[int, SessionMessage]" = OrderedDict()
        self.interval = base_interval
        self.timer_gen = 0


class _InStream:
    """Receiver-side state of one ordered pair."""

    __slots__ = ("expected", "buffer", "boot")

    def __init__(self) -> None:
        self.expected = 0
        self.buffer: Dict[int, Message] = {}
        self.boot = 0


class ReliableChannel:
    """Reliable in-order delivery for one node's protocol traffic.

    Parameters
    ----------
    node_id:
        The hosting node.
    scheduler:
        ``now()`` / ``call_later(delay, fn)`` time source (see
        :mod:`repro.faults.scheduler`).
    send:
        Raw fabric send used for frames, acks and retransmissions.
    deliver:
        Upcall for each payload, invoked exactly once per frame and in
        per-sender order.
    retry_base / retry_cap:
        Retransmission backoff: first retry after ``retry_base`` seconds,
        doubling per silent retry up to ``retry_cap``; any ack progress
        resets the interval.
    boot:
        This node's incarnation number (bumped on restart).
    mutex:
        Lock guarding all channel state.  The recovery manager passes its
        own re-entrant lock so timer callbacks, transport upcalls and
        application sends serialize against each other without lock-order
        cycles.
    """

    def __init__(
        self,
        node_id: NodeId,
        scheduler,
        send: SendFn,
        deliver: DeliverFn,
        retry_base: float = 0.25,
        retry_cap: float = 2.0,
        boot: int = 0,
        mutex: Optional["threading.RLock"] = None,
    ) -> None:
        self._node_id = node_id
        self._scheduler = scheduler
        self._send = send
        self._deliver = deliver
        self._retry_base = retry_base
        self._retry_cap = retry_cap
        self.boot = boot
        self._mutex = mutex if mutex is not None else threading.RLock()
        self._out: Dict[NodeId, _OutStream] = {}
        self._in: Dict[NodeId, _InStream] = {}
        #: Frames re-sent by the backoff timer (verdict/test counter).
        self.retransmits = 0
        #: Frames dropped as duplicates or stale-incarnation traffic.
        self.duplicates_dropped = 0
        #: Optional causal tracer (set by the recovery manager).  Frames
        #: are stamped *before* entering ``unacked`` so a retransmission
        #: re-sends the stamped object and the tracer recognizes it as an
        #: annotated retransmit hop rather than a fresh message.
        self.tracer = None
        #: Optional observability sink; timer retransmissions are
        #: reported as ``fault("channel-retransmit", node)`` events.
        self.obs = None

    # -- sending -----------------------------------------------------------

    def send(self, dest: NodeId, payload: Message) -> None:
        """Send *payload* reliably and in order to *dest*."""

        with self._mutex:
            stream = self._out.get(dest)
            if stream is None:
                stream = self._out[dest] = _OutStream(self._retry_base)
            frame = SessionMessage(
                lock_id=payload.lock_id,
                sender=self._node_id,
                seq=stream.next_seq,
                payload=payload,
                boot=self.boot,
            )
            if self.tracer is not None:
                frame = self.tracer.stamp_frame(self._node_id, dest, frame)
            stream.next_seq += 1
            was_idle = not stream.unacked
            stream.unacked[frame.seq] = frame
            if was_idle:
                stream.interval = self._retry_base
                self._arm_timer(dest, stream)
        self._send(dest, frame)

    def _arm_timer(self, dest: NodeId, stream: _OutStream) -> None:
        stream.timer_gen += 1
        generation = stream.timer_gen
        self._scheduler.call_later(
            stream.interval, lambda: self._on_timer(dest, generation)
        )

    def _on_timer(self, dest: NodeId, generation: int) -> None:
        with self._mutex:
            stream = self._out.get(dest)
            if (
                stream is None
                or stream.timer_gen != generation
                or not stream.unacked
            ):
                return
            frames = list(stream.unacked.values())
            self.retransmits += len(frames)
            stream.interval = min(stream.interval * 2, self._retry_cap)
            self._arm_timer(dest, stream)
        if self.obs is not None:
            for _ in frames:
                self.obs.fault("channel-retransmit", self._node_id)
        for frame in frames:
            self._send(dest, frame)

    # -- receiving ---------------------------------------------------------

    def handle(self, message: Message) -> bool:
        """Process one frame or ack off the fabric.

        Returns ``True`` iff the message belonged to this channel
        (callers route everything else to the recovery dispatcher).
        """

        if isinstance(message, SessionMessage):
            self._handle_frame(message)
            return True
        if isinstance(message, SessionAck):
            self._handle_ack(message)
            return True
        return False

    def _handle_frame(self, frame: SessionMessage) -> None:
        peer = frame.sender
        deliverable = []
        with self._mutex:
            stream = self._in.get(peer)
            if stream is None:
                stream = self._in[peer] = _InStream()
                stream.boot = frame.boot
            if frame.boot > stream.boot:
                # The peer restarted: its new incarnation starts a fresh
                # stream at seq 0.  Anything buffered from the old life
                # is gone for good (and so is the old peer's state).
                stream.boot = frame.boot
                stream.expected = 0
                stream.buffer.clear()
            elif frame.boot < stream.boot:
                self.duplicates_dropped += 1
                return  # A ghost from a dead incarnation.
            if frame.seq == stream.expected:
                stream.expected += 1
                deliverable.append(frame.payload)
                while stream.expected in stream.buffer:
                    deliverable.append(stream.buffer.pop(stream.expected))
                    stream.expected += 1
            elif frame.seq > stream.expected:
                stream.buffer[frame.seq] = frame.payload
            else:
                self.duplicates_dropped += 1
            ack = SessionAck(
                lock_id="",
                sender=self._node_id,
                ack=stream.expected - 1,
                boot=frame.boot,
            )
        self._send(peer, ack)
        for payload in deliverable:
            self._deliver(peer, payload)

    def _handle_ack(self, ack: SessionAck) -> None:
        with self._mutex:
            if ack.boot != self.boot:
                return  # Acknowledges a previous incarnation's stream.
            stream = self._out.get(ack.sender)
            if stream is None:
                return
            progressed = False
            while stream.unacked and next(iter(stream.unacked)) <= ack.ack:
                stream.unacked.popitem(last=False)
                progressed = True
            if progressed:
                stream.interval = self._retry_base
                if stream.unacked:
                    self._arm_timer(dest=ack.sender, stream=stream)
                else:
                    stream.timer_gen += 1  # Cancel: nothing left to retry.

    # -- lifecycle ---------------------------------------------------------

    def stop_peer(self, peer: NodeId) -> None:
        """Tear down both streams with *peer* (it is presumed dead).

        Unacknowledged frames are abandoned: retransmitting into a dead
        node is pure noise, and the recovery layer re-issues whatever
        still matters (pending requests, subtree announcements) when the
        peer — or its replacement parent — comes back.
        """

        with self._mutex:
            stream = self._out.pop(peer, None)
            if stream is not None:
                stream.timer_gen += 1
            self._in.pop(peer, None)

    def idle(self) -> bool:
        """True iff no frame is awaiting acknowledgement."""

        with self._mutex:
            return all(not s.unacked for s in self._out.values())

    def backlog(self) -> int:
        """Total frames sent but not yet acknowledged, across all peers."""

        with self._mutex:
            return sum(len(s.unacked) for s in self._out.values())

"""Wire messages of the recovery layer.

These ride the same transports as the protocol messages but are consumed
by the :class:`~repro.faults.recovery.RecoveryManager`, never by the lock
automata.  Two groups:

* **Session framing** — :class:`SessionMessage` / :class:`SessionAck`
  implement per-ordered-pair reliable FIFO streams over a lossy fabric
  (sequence numbers, cumulative acks; see :mod:`repro.faults.channel`).
  ``boot`` is the sender's incarnation number so a restarted node's
  fresh stream is not mistaken for a replay of its previous life.
* **Failure coordination** — heartbeats, orphan reports, token probes /
  acks and reparent notices.  These are deliberately *not* sessioned:
  they are idempotent, periodically re-sent by their originators, and
  must keep flowing while streams to a dead peer are torn down.

Messages subclass the core :class:`~repro.core.messages.Message` so every
transport and observer handles them uniformly; node-scoped ones (e.g.
heartbeats) carry the empty lock id.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..core.messages import MESSAGE_TYPE_LABELS, Message, NodeId


@dataclasses.dataclass(frozen=True)
class SessionMessage(Message):
    """Frame ``seq`` of the sender's stream to the receiver.

    ``payload`` is the protocol message being carried; ``lock_id`` echoes
    the payload's for observability.  Streams are per ordered node pair;
    ``boot`` identifies the sender incarnation that opened the stream.
    """

    seq: int
    payload: Message
    boot: int = 0


@dataclasses.dataclass(frozen=True)
class SessionAck(Message):
    """Cumulative ack: every frame up to ``ack`` arrived in order.

    ``boot`` echoes the *sender incarnation of the acked stream* so a
    stale ack cannot trim frames of a newer stream.
    """

    ack: int
    boot: int = 0


@dataclasses.dataclass(frozen=True)
class HeartbeatMessage(Message):
    """Liveness beacon, sent every heartbeat interval to every peer.

    ``boot`` lets peers notice a silent crash + restart (the incarnation
    jumps) even when no heartbeat was ever missed.  ``leases`` piggybacks
    the sender's active lease table — each entry is a 4-tuple
    ``(lock, mode, holder, fencing_token)`` (see :mod:`repro.leases`); a
    heartbeat therefore *is* the lease renewal, so a holder that keeps
    beating keeps its holds.  ``restored`` marks a durable rejoin: the
    new incarnation re-owns its journalled holds, so peers cancel any
    lease-deferred evictions instead of firing them.  ``view_epoch`` is
    the sender's installed membership view (see :mod:`repro.membership`);
    a peer seeing a lower epoch than its own re-sends the current
    ``ViewInstall``, which is the view anti-entropy path.
    """

    boot: int = 0
    leases: Tuple = ()
    restored: bool = False
    view_epoch: int = 0


@dataclasses.dataclass(frozen=True)
class OrphanReport(Message):
    """An orphan (its parent is suspected dead) asking for a new parent.

    Sent — and periodically re-sent until a ``ReparentMessage`` arrives —
    to the current regeneration coordinator.  ``lock_id`` names the
    orphaned lock, ``suspect`` the dead parent, ``epoch`` the highest
    token epoch the orphan has observed for the lock.
    """

    suspect: NodeId
    epoch: int = 0


@dataclasses.dataclass(frozen=True)
class TokenProbe(Message):
    """The coordinator asking: does anyone hold ``lock_id``'s token?"""


@dataclasses.dataclass(frozen=True)
class TokenAck(Message):
    """A live token holder answering a probe with its current epoch."""

    epoch: int = 0


@dataclasses.dataclass(frozen=True)
class ReparentMessage(Message):
    """Directive/announcement: ``lock_id``'s token lives at ``parent``.

    Sent by the coordinator to orphans (who re-attach under ``parent``)
    and broadcast to all live peers after a regeneration so everyone
    raises its epoch floor — the mechanism that discards stale-epoch
    tokens still in flight from before the crash.
    """

    parent: NodeId
    epoch: int = 0


#: Labels for metrics/observability (extends the Figure-7 table; these
#: types only ever appear when the recovery layer is in use).
MESSAGE_TYPE_LABELS.update(
    {
        SessionMessage: "session",
        SessionAck: "session-ack",
        HeartbeatMessage: "heartbeat",
        OrphanReport: "orphan-report",
        TokenProbe: "token-probe",
        TokenAck: "token-ack",
        ReparentMessage: "reparent",
    }
)

from ..membership.messages import MEMBERSHIP_TYPES  # noqa: E402

#: Message types the recovery manager consumes itself (everything else
#: is a raw protocol message bound for the lock space).  Includes the
#: membership (view-change) messages, which the manager also handles.
RECOVERY_TYPES: Tuple[type, ...] = (
    SessionMessage,
    SessionAck,
    HeartbeatMessage,
    OrphanReport,
    TokenProbe,
    TokenAck,
    ReparentMessage,
) + MEMBERSHIP_TYPES

"""Time sources and timer scheduling for the recovery layer.

The recovery machinery (retransmission, heartbeats, probes) is written
against a two-method surface — ``now()`` and ``call_later(delay, fn)`` —
so the very same :class:`~repro.faults.recovery.RecoveryManager` runs
deterministically inside the discrete-event simulator and in real time
over the threaded/TCP transports.

Scheduled callbacks are never cancelled; owners guard them with
generation counters instead (a fired callback first checks whether it is
still the current one).  This keeps both implementations trivial and the
simulated variant allocation-free beyond the engine's own heap.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, List, Tuple

from ..sim.engine import Simulator


class SimScheduler:
    """Adapter: the simulator's clock and event heap."""

    __slots__ = ("_sim",)

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def now(self) -> float:
        """Current virtual time."""

        return self._sim.now

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* after *delay* virtual seconds."""

        self._sim.schedule(delay, fn)


class WallScheduler:
    """A single-threaded timer wheel over the monotonic wall clock.

    One daemon worker drains a heap of ``(deadline, seq, fn)`` entries;
    ``stop()`` wakes it and joins.  Callbacks run on the worker thread,
    so recovery managers take their own node mutex inside.
    """

    def __init__(self) -> None:
        self._start = time.monotonic()
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run, name="repro-faults-timer", daemon=True
        )
        self._thread.start()

    def now(self) -> float:
        """Seconds since this scheduler was created."""

        return time.monotonic() - self._start

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* on the worker thread after *delay* wall seconds."""

        with self._cond:
            if self._stopped:
                return
            heapq.heappush(
                self._heap, (self.now() + max(delay, 0.0), next(self._seq), fn)
            )
            self._cond.notify()

    def stop(self) -> None:
        """Discard pending timers and join the worker."""

        with self._cond:
            self._stopped = True
            self._heap.clear()
            self._cond.notify()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._stopped and (
                    not self._heap or self._heap[0][0] > self.now()
                ):
                    timeout = (
                        self._heap[0][0] - self.now() if self._heap else None
                    )
                    self._cond.wait(timeout)
                if self._stopped:
                    return
                _deadline, _seq, fn = heapq.heappop(self._heap)
            try:
                fn()
            except Exception:  # pragma: no cover - defensive: timers must
                # never kill the wheel; recovery callbacks log via obs.
                pass

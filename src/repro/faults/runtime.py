"""Fault injection and recovery over the threaded/TCP transports.

:class:`FaultyTransport` wraps any object with the
``register/start/stop/send`` transport surface
(:class:`~repro.runtime.transport.ThreadedTransport`,
:class:`~repro.runtime.tcp.TcpTransport`) and applies a
:class:`~repro.faults.plan.FaultPlan` to every crossing message, plus
crash/restart gating: a crashed node neither sends nor receives, and a
restarted node's handler can be swapped in without re-registering (which
the underlying transports forbid after start).

:class:`ResilientThreadedCluster` is the real-thread sibling of
:class:`~repro.faults.simcluster.ResilientSimCluster`: every node runs
its lock space in recovery mode behind a
:class:`~repro.faults.recovery.RecoveryManager` ticking on a
:class:`~repro.faults.scheduler.WallScheduler`, with blocking clients.
Wall-clock runs are not bit-reproducible — thread interleaving is real —
but the *injected fault stream* still follows the plan's private RNG, so
a plan that drops the third grant drops the third grant every run.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set

from ..core.lockspace import LockSpace, TokenHomeFn, default_token_home
from ..core.messages import Envelope, LockId, Message, NodeId
from ..core.modes import LockMode
from ..errors import ConfigurationError, SimulationError
from ..obs.sink import ObsSink
from ..runtime.transport import MessageHandler, ThreadedTransport
from ..verification.invariants import Monitor
from .plan import FaultInjector, FaultPlan
from .recovery import RecoveryConfig, RecoveryManager
from .scheduler import WallScheduler
from .simcluster import RESILIENT_OPTIONS

#: Recovery timings an order of magnitude tighter than the simulator
#: defaults — loopback queues deliver in microseconds, so tests converge
#: in well under a second of wall time.
FAST_RECOVERY = RecoveryConfig(
    heartbeat_interval=0.05,
    suspect_timeout=0.4,
    retry_base=0.08,
    retry_cap=0.5,
    channel_retry_base=0.04,
    channel_retry_cap=0.2,
    probe_timeout=0.15,
    orphan_interval=0.05,
    regen_settle=0.2,
)

#: How long (seconds) a reordered frame is held back waiting for later
#: traffic on its (sender, dest) pair to overtake it.  If nothing else
#: crosses the pair within the window the frame is force-flushed — a
#: reorder against silence is indistinguishable from a delay.  Short
#: enough not to trip channel retransmission under ``FAST_RECOVERY``.
_REORDER_HOLD = 0.05


class FaultyTransport:
    """Plan-driven fault injection around a threaded/TCP transport."""

    def __init__(self, inner, plan: Optional[FaultPlan] = None) -> None:
        import time

        self.inner = inner
        self._time = time
        self._epoch = time.monotonic()
        self._injector: Optional[FaultInjector] = (
            FaultInjector(plan) if plan is not None and not plan.is_empty()
            else None
        )
        self._handlers: Dict[NodeId, MessageHandler] = {}
        self._crashed: Set[NodeId] = set()
        self._state_lock = threading.Lock()
        self._timers: List[threading.Timer] = []
        #: Reordered frames held back per (sender, dest) pair, waiting
        #: for a later frame on the pair to overtake them (see ``send``).
        self._held: Dict[tuple, List[Envelope]] = {}
        self._stopping = False
        self.messages_dropped = 0
        self.messages_reordered = 0

    @property
    def injector(self) -> Optional[FaultInjector]:
        """The live decision engine (``None`` for an empty plan)."""

        return self._injector

    def _now(self) -> float:
        return self._time.monotonic() - self._epoch

    # -- transport surface -------------------------------------------------

    def register(self, node_id: NodeId, handler: MessageHandler) -> None:
        """Register *node_id* on the inner transport, via a swap-able,
        crash-gated handler indirection."""

        with self._state_lock:
            self._handlers[node_id] = handler

        def gated(message, node_id=node_id):
            with self._state_lock:
                if node_id in self._crashed:
                    self.messages_dropped += 1
                    return []
                current = self._handlers[node_id]
            return current(message)

        self.inner.register(node_id, gated)

    def swap_handler(self, node_id: NodeId, handler: MessageHandler) -> None:
        """Replace the delivery target of *node_id* (node restart)."""

        with self._state_lock:
            if node_id not in self._handlers:
                raise SimulationError(f"node {node_id} was never registered")
            self._handlers[node_id] = handler

    def start(self) -> None:
        """Start the inner transport."""

        self.inner.start()

    def stop(self) -> None:
        """Cancel in-flight delayed deliveries, then stop the inner."""

        with self._state_lock:
            self._stopping = True
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        self.inner.stop()

    def send(self, sender: NodeId, envelopes: List[Envelope]) -> None:
        """Apply the plan to each envelope, then ship the survivors.

        Reordered frames are scrambled at frame level, mirroring the
        simulator's skip-the-FIFO-floor semantics: the frame is *held
        back* and the next frame sent on the same (sender, dest) pair
        overtakes it — the pair genuinely delivers out of order, rather
        than approximating reorder with a small delay.  A hold timer
        bounds the wait when the pair goes quiet.
        """

        for envelope in envelopes:
            with self._state_lock:
                if sender in self._crashed or envelope.dest in self._crashed:
                    self.messages_dropped += 1
                    continue
                injector = self._injector
                if injector is None:
                    decision = None
                else:
                    decision = injector.decide(
                        self._now(), sender, envelope.dest, envelope.message
                    )
            if decision is None:
                self.inner.send(sender, [envelope])
                self._flush_held((sender, envelope.dest))
                continue
            if decision.drop:
                with self._state_lock:
                    self.messages_dropped += 1
                continue
            if decision.reorder:
                for _copy in range(decision.copies):
                    self._hold_reordered(sender, envelope)
                continue
            delay = decision.extra_delay
            for _copy in range(decision.copies):
                if delay > 0.0:
                    self._send_later(sender, envelope, delay)
                else:
                    self.inner.send(sender, [envelope])
                    self._flush_held((sender, envelope.dest))

    def _hold_reordered(self, sender: NodeId, envelope: Envelope) -> None:
        """Stash a frame so the pair's next frame overtakes it."""

        key = (sender, envelope.dest)
        with self._state_lock:
            if self._stopping:
                return
            self._held.setdefault(key, []).append(envelope)
            self.messages_reordered += 1
            timer = threading.Timer(
                _REORDER_HOLD, lambda: self._flush_held(key)
            )
            timer.daemon = True
            self._timers.append(timer)
            if len(self._timers) > 64:  # Drop completed timers.
                self._timers = [t for t in self._timers if t.is_alive()]
        timer.start()

    def _flush_held(self, key: tuple) -> None:
        """Release held frames on *key*, after their overtaker shipped."""

        with self._state_lock:
            held = self._held.pop(key, None)
            if not held:
                return
            if (
                self._stopping
                or key[0] in self._crashed
                or key[1] in self._crashed
            ):
                self.messages_dropped += len(held)
                return
        for envelope in held:
            try:
                self.inner.send(key[0], [envelope])
            except SimulationError:
                pass  # Destination died while the frame was held.

    def _send_later(
        self, sender: NodeId, envelope: Envelope, delay: float
    ) -> None:
        def fire() -> None:
            with self._state_lock:
                if (
                    self._stopping
                    or sender in self._crashed
                    or envelope.dest in self._crashed
                ):
                    self.messages_dropped += 1
                    return
            try:
                self.inner.send(sender, [envelope])
            except SimulationError:
                pass  # Destination died while the message was in flight.

        with self._state_lock:
            if self._stopping:
                return
            timer = threading.Timer(delay, fire)
            timer.daemon = True
            self._timers.append(timer)
            if len(self._timers) > 64:  # Drop completed timers.
                self._timers = [t for t in self._timers if t.is_alive()]
        timer.start()

    # -- crash gating ------------------------------------------------------

    def crash(self, node_id: NodeId) -> None:
        """Silence *node_id*: its sends and deliveries are dropped."""

        with self._state_lock:
            self._crashed.add(node_id)
            # Held reordered frames to/from the dead node die with it.
            for key in [k for k in self._held if node_id in k]:
                self.messages_dropped += len(self._held.pop(key))

    def restart(self, node_id: NodeId) -> None:
        """Reconnect *node_id* to the fabric."""

        with self._state_lock:
            self._crashed.discard(node_id)

    def is_crashed(self, node_id: NodeId) -> bool:
        """Whether *node_id* is currently severed."""

        with self._state_lock:
            return node_id in self._crashed

    def __getattr__(self, name: str):
        # Everything else (messages_sent, drain, address_of, obs, ...)
        # passes through to the wrapped transport.
        return getattr(self.inner, name)


class _Waiter:
    """Grant context used by the blocking resilient client."""

    __slots__ = ("event", "mode")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.mode: Optional[LockMode] = None


class ResilientBlockingClient:
    """Blocking per-node client routed through the recovery manager."""

    def __init__(
        self, cluster: "ResilientThreadedCluster", node_id: NodeId
    ) -> None:
        self._cluster = cluster
        self._node_id = node_id

    @property
    def node_id(self) -> NodeId:
        """This client's node."""

        return self._node_id

    def acquire(
        self, lock_id: LockId, mode: LockMode, timeout: Optional[float] = None
    ) -> None:
        """Acquire *lock_id* in *mode*, blocking until granted."""

        cluster = self._cluster
        if cluster.is_crashed(self._node_id):
            raise SimulationError(f"node {self._node_id} is crashed")
        if (
            self._node_id in cluster._departed_nodes
            or cluster.managers[self._node_id].departing
        ):
            raise SimulationError(
                f"node {self._node_id} is leaving the cluster"
            )
        cluster._record_request(self._node_id, lock_id, mode)
        waiter = _Waiter()
        cluster.managers[self._node_id].request(lock_id, mode, waiter)
        if not waiter.event.wait(timeout):
            raise TimeoutError(
                f"node {self._node_id}: {mode} on {lock_id!r} not granted "
                f"within {timeout}s"
            )

    def release(self, lock_id: LockId, mode: LockMode) -> None:
        """Release one hold of *mode* on *lock_id*."""

        cluster = self._cluster
        if cluster.is_crashed(self._node_id):
            raise SimulationError(f"node {self._node_id} is crashed")
        if (
            self._node_id in cluster._departed_nodes
            or cluster.managers[self._node_id].departing
        ):
            # ``begin_leave`` already force-released every residual hold.
            return
        cluster._record_release(self._node_id, lock_id, mode)
        cluster.managers[self._node_id].release(lock_id, mode)


class ResilientThreadedCluster:
    """N real-thread nodes with recovery managers under a fault plan."""

    def __init__(
        self,
        num_nodes: int,
        plan: Optional[FaultPlan] = None,
        transport=None,
        config: RecoveryConfig = FAST_RECOVERY,
        token_home: TokenHomeFn = default_token_home,
        monitor: Optional[Monitor] = None,
        obs: Optional[ObsSink] = None,
        seed: int = 0,
        persistence=None,
        flight=None,
    ) -> None:
        if num_nodes < 2:
            raise ConfigurationError(
                "a resilient cluster needs at least two nodes (someone "
                "must survive to regenerate the token)"
            )
        self.num_nodes = num_nodes
        self.plan = plan
        self.config = config
        self.monitor = monitor
        self._monitor_lock = threading.Lock()
        self.obs = obs
        self._token_home = token_home
        inner = transport if transport is not None else ThreadedTransport(
            seed=seed, obs=obs
        )
        self.transport = FaultyTransport(inner, plan)
        self.scheduler = WallScheduler()
        self.lockspaces: Dict[NodeId, LockSpace] = {}
        self.managers: Dict[NodeId, RecoveryManager] = {}
        #: Per-node durability backend (see :mod:`repro.persist`);
        #: ``None`` keeps the cluster volatile.
        self.persistence = persistence
        self.journals: Dict[NodeId, object] = {}
        #: One rejoin report per durable restart, in restart order.
        self.durability_log: List[Dict[str, object]] = []
        self._crashed: Set[NodeId] = set()
        self.crash_log: List[Dict[str, object]] = []
        #: Current member node ids (mirrors the installed view; see
        #: :mod:`repro.membership`).
        self.members: List[NodeId] = list(range(num_nodes))
        #: Nodes that have left for good (drained or decommissioned).
        self._departed_nodes: Set[NodeId] = set()
        #: One entry per membership event (join / drain / decommission).
        self.membership_log: List[Dict[str, object]] = []
        #: Per-node flight recorders (see :mod:`repro.obs.flightrec`);
        #: ``None`` disables black-box recording.
        self.flight = None
        if flight is not None:
            from ..obs.flightrec import FlightRecorder

            self.flight = flight if isinstance(flight, dict) else {}
            for node_id in range(num_nodes):
                self.flight.setdefault(
                    node_id,
                    FlightRecorder(
                        node_id,
                        protocol="hierarchical",
                        clock=self.scheduler.now,
                    ),
                )
        for node_id in range(num_nodes):
            self._boot_node(node_id, boot=0, fresh=True)
        self.clients = [
            ResilientBlockingClient(self, n) for n in range(num_nodes)
        ]
        self.transport.start()
        # Only now: heartbeats need every peer registered before the
        # first one goes out.
        for manager in self.managers.values():
            manager.start()

    # -- node lifecycle ----------------------------------------------------

    def _boot_node(
        self,
        node_id: NodeId,
        boot: int,
        fresh: bool,
        membership: Optional[List[NodeId]] = None,
    ) -> None:
        lockspace = LockSpace(
            node_id=node_id,
            token_home=self._token_home,
            listener=self._make_listener(node_id),
            options=RESILIENT_OPTIONS,
        )
        lockspace.obs = self.obs
        if self.flight is not None:
            from ..obs.flightrec import FlightRecorder

            recorder = self.flight.setdefault(
                node_id,
                FlightRecorder(
                    node_id,
                    protocol="hierarchical",
                    clock=self.scheduler.now,
                ),
            )
            if not fresh:
                recorder.record_restart()
            recorder.attach(lockspace)
        manager = RecoveryManager(
            node_id=node_id,
            lockspace=lockspace,
            membership=(
                membership if membership is not None else list(self.members)
            ),
            scheduler=self.scheduler,
            transport_send=self._make_sender(node_id),
            config=self.config,
            obs=self.obs,
            boot=boot,
        )
        self.lockspaces[node_id] = lockspace
        self.managers[node_id] = manager
        if self.persistence is not None:
            from ..persist import NodeJournal

            journal = NodeJournal(
                self.persistence.store_for(node_id),
                node_id,
                boot=boot,
                obs=self.obs,
            )
            journal.attach(lockspace)
            journal.view_source = manager.view_journal_payload
            self.journals[node_id] = journal
            manager.journal = journal
        if fresh:
            self.transport.register(node_id, manager.handle)
        else:
            self.transport.swap_handler(node_id, manager.handle)

    def _make_sender(self, node_id: NodeId):
        def send(dest: NodeId, message: Message) -> None:
            self.transport.send(node_id, [Envelope(dest, message)])

        return send

    def _make_listener(self, node_id: NodeId):
        def listener(lock_id: LockId, mode: LockMode, ctx: object) -> None:
            self._record_grant(node_id, lock_id, mode)
            if isinstance(ctx, _Waiter):
                ctx.mode = mode
                ctx.event.set()

        return listener

    def crash(self, node_id: NodeId) -> None:
        """Kill *node_id*: volatile state gone, fabric silenced."""

        if node_id in self._crashed:
            return
        self._crashed.add(node_id)
        if self.flight is not None:
            self.flight[node_id].record_crash()
        self.crash_log.append(
            {"at": self.scheduler.now(), "node": node_id}
        )
        self.transport.crash(node_id)
        self.managers[node_id].stop()
        journal = self.journals.pop(node_id, None)
        if journal is not None:
            # The store survives (it is the durable medium); only the
            # in-process journal handle dies with the node.
            journal.close()
        if self.monitor is not None:
            with self._monitor_lock:
                self.monitor.on_crash(self.scheduler.now(), node_id)
        if self.obs is not None:
            self.obs.fault("crash", node_id)

    def restart(self, node_id: NodeId) -> None:
        """Bring *node_id* back under a bumped boot incarnation.

        Without persistence the node rejoins blank; with it, the node
        replays its snapshot + WAL and rejoins with its pre-crash locks
        (token custody fenced until the epoch handshake settles — see
        :meth:`~repro.faults.recovery.RecoveryManager.rejoin_from_journal`).
        """

        if node_id not in self._crashed:
            return
        if node_id in self._departed_nodes:
            return  # Decommissioned while down: it no longer exists.
        self._crashed.discard(node_id)
        boot = self.managers[node_id].boot + 1
        self._boot_node(node_id, boot=boot, fresh=False)
        manager = self.managers[node_id]
        # Fabric first: rejoin replay dispatches messages immediately.
        self.transport.restart(node_id)
        if self.persistence is not None:
            from ..persist import VIEW_JOURNAL_KEY, recover_node_state

            state, recover_report = recover_node_state(
                self.persistence.store_for(node_id)
            )
            # The journalled view first: quorum sizes and the departed
            # set of everything below derive from it.
            view_payload = state.pop(VIEW_JOURNAL_KEY, None)
            if view_payload is not None:
                manager.adopt_view(view_payload)
            rejoin_report = manager.rejoin_from_journal(state)
            self.durability_log.append(
                {
                    "at": round(self.scheduler.now(), 6),
                    "node": node_id,
                    "boot": boot,
                    "recovered": recover_report,
                    "rejoin": rejoin_report,
                }
            )
            # Re-seed the snapshot under the new boot so the next crash
            # replays from here instead of the whole pre-crash log.
            self.journals[node_id].compact()
        manager.start()
        if self.obs is not None:
            self.obs.fault("restart", node_id)

    def is_crashed(self, node_id: NodeId) -> bool:
        """Whether *node_id* is currently down."""

        return node_id in self._crashed

    def client(self, node_id: NodeId) -> ResilientBlockingClient:
        """Return the blocking client of *node_id*."""

        return self.clients[node_id]

    def live_nodes(self) -> List[NodeId]:
        """Current members that are up, ascending."""

        return [n for n in self.members if n not in self._crashed]

    # -- dynamic membership (see repro.membership / docs/MEMBERSHIP.md) ----

    def join_node(self) -> NodeId:
        """Admit a brand-new node into the running cluster.

        The transport registers the node's dispatcher on the fly; the
        lowest live member sponsors the quorum-gated view change.
        """

        live = self.live_nodes()
        if not live:
            raise SimulationError("no live member can sponsor a join")
        sponsor = min(live)
        node_id = self.num_nodes
        self.num_nodes += 1
        bootstrap = sorted(
            set(self.managers[sponsor].membership) | {node_id}
        )
        self.members.append(node_id)
        self._boot_node(node_id, boot=0, fresh=True, membership=bootstrap)
        manager = self.managers[node_id]
        manager.start()
        manager.request_join(sponsor)
        self.clients.append(ResilientBlockingClient(self, node_id))
        self.membership_log.append(
            {
                "at": round(self.scheduler.now(), 6),
                "event": "join",
                "node": node_id,
                "sponsor": sponsor,
            }
        )
        if self.obs is not None:
            self.obs.fault("join", node_id)
        return node_id

    def drain_node(
        self,
        node_id: NodeId,
        successor: Optional[NodeId] = None,
        timeout: float = 30.0,
    ) -> NodeId:
        """Gracefully remove *node_id*, blocking until its removal view
        is installed (wall-clock *timeout*).  Returns the successor."""

        import time

        if node_id in self._crashed:
            raise SimulationError(
                f"node {node_id} is crashed; decommission it instead"
            )
        if (
            node_id in self._departed_nodes
            or self.managers[node_id].departing
        ):
            raise SimulationError(f"node {node_id} is already leaving")
        chosen = self.managers[node_id].begin_leave(successor)
        self.membership_log.append(
            {
                "at": round(self.scheduler.now(), 6),
                "event": "drain-begin",
                "node": node_id,
                "successor": chosen,
            }
        )
        deadline = time.monotonic() + timeout
        while not self.managers[node_id].has_left:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"node {node_id} did not finish draining within "
                    f"{timeout}s"
                )
            time.sleep(self.config.heartbeat_interval)
        self._finalize_departure(node_id, "drained")
        return chosen

    def decommission_node(
        self, node_id: NodeId, timeout: float = 30.0
    ) -> NodeId:
        """Force-remove a crashed *node_id* from the view for good,
        blocking until every live member has installed the removal.
        Returns the coordinating node."""

        import time

        if node_id not in self._crashed:
            raise SimulationError(
                f"node {node_id} is alive; drain it instead"
            )
        if node_id in self._departed_nodes:
            raise SimulationError(f"node {node_id} already decommissioned")
        live = self.live_nodes()
        if not live:
            raise SimulationError("no live member can coordinate")
        coordinator = min(live)
        self.managers[coordinator].decommission(node_id)
        self.membership_log.append(
            {
                "at": round(self.scheduler.now(), 6),
                "event": "decommission-begin",
                "node": node_id,
                "coordinator": coordinator,
            }
        )
        deadline = time.monotonic() + timeout
        while any(
            node_id in self.managers[n].membership
            for n in self.live_nodes()
        ):
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"decommission of node {node_id} did not converge "
                    f"within {timeout}s"
                )
            time.sleep(self.config.heartbeat_interval)
        self._finalize_departure(node_id, "decommissioned")
        return coordinator

    def _finalize_departure(self, node_id: NodeId, event: str) -> None:
        if node_id in self._departed_nodes:
            return
        self._departed_nodes.add(node_id)
        if node_id in self.members:
            self.members.remove(node_id)
        if node_id not in self._crashed:
            self.transport.crash(node_id)
            self.managers[node_id].stop()
            journal = self.journals.pop(node_id, None)
            if journal is not None:
                journal.close()
        self.membership_log.append(
            {
                "at": round(self.scheduler.now(), 6),
                "event": event,
                "node": node_id,
            }
        )
        if self.obs is not None:
            self.obs.fault(event, node_id)

    def shutdown(self) -> None:
        """Stop timers, managers and transport threads."""

        for manager in self.managers.values():
            manager.stop()
        self.scheduler.stop()
        self.transport.stop()
        for journal in self.journals.values():
            journal.close()
        self.journals.clear()

    def __enter__(self) -> "ResilientThreadedCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- monitor plumbing --------------------------------------------------

    def _record_request(
        self, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        if self.monitor is not None:
            with self._monitor_lock:
                self.monitor.on_request(
                    self.scheduler.now(), node, lock_id, mode
                )

    def _record_grant(
        self, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        if self.monitor is not None:
            with self._monitor_lock:
                self.monitor.on_grant(
                    self.scheduler.now(), node, lock_id, mode
                )

    def _record_release(
        self, node: NodeId, lock_id: LockId, mode: LockMode
    ) -> None:
        if self.monitor is not None:
            with self._monitor_lock:
                self.monitor.on_release(
                    self.scheduler.now(), node, lock_id, mode
                )

    # -- aggregates --------------------------------------------------------

    def cluster_view(self):
        """Capture a :class:`repro.obs.live.ClusterView` of all nodes.

        Each live node is snapshotted under its recovery manager's mutex
        (the lock every automaton access already takes), so per-node
        state is internally consistent; crashed nodes appear dead with
        no lock state.
        """

        from ..obs.live import ClusterView, NodeSnapshot, snapshot_node

        nodes = []
        for node_id in sorted(self.members):
            if node_id in self._crashed:
                nodes.append(NodeSnapshot(node=node_id, alive=False))
                continue
            manager = self.managers[node_id]
            with manager._mutex:
                nodes.append(
                    snapshot_node(
                        node_id,
                        self.lockspaces[node_id],
                        recovery=manager.health_snapshot(),
                    )
                )
        return ClusterView(
            protocol="hierarchical",
            captured_at=self.scheduler.now(),
            nodes=tuple(nodes),
        )

    def recovery_stats(self) -> Dict[str, object]:
        """Aggregate recovery counters across managers."""

        suspects = sorted(
            {
                (round(t, 6), peer)
                for manager in self.managers.values()
                for (t, peer) in manager.suspect_log
            }
        )
        return {
            "suspect_events": len(suspects),
            "suspected_nodes": sorted({peer for _, peer in suspects}),
            "regenerations": [
                regen
                for manager in self.managers.values()
                for regen in manager.regenerations
            ],
            "app_retransmits": sum(
                m.app_retransmits for m in self.managers.values()
            ),
            "channel_retransmits": sum(
                m.channel.retransmits for m in self.managers.values()
            ),
            "duplicates_dropped": sum(
                m.channel.duplicates_dropped for m in self.managers.values()
            ),
        }
